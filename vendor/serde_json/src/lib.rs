//! Offline stand-in for `serde_json`, backed by the vendor `serde` crate's
//! JSON-only traits. Provides the three entry points this workspace uses.

pub use serde::json::{Error, Value};

/// Serialise `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.write_json(&mut out);
    Ok(out)
}

/// Serialise `value` to pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let parsed = serde::json::parse(&compact)?;
    Ok(serde::json::pretty(&parsed))
}

/// Parse a JSON string into `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::json::parse(s)?;
    T::from_value(&v)
}

#[cfg(test)]
mod tests {
    #[test]
    fn roundtrip_via_public_api() {
        let xs: Vec<u64> = vec![1, 2, 3];
        let s = super::to_string(&xs).unwrap();
        assert_eq!(s, "[1,2,3]");
        let back: Vec<u64> = super::from_str(&s).unwrap();
        assert_eq!(back, xs);
        let pretty = super::to_string_pretty(&xs).unwrap();
        let back2: Vec<u64> = super::from_str(&pretty).unwrap();
        assert_eq!(back2, xs);
    }
}
