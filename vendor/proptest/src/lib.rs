//! Offline stand-in for `proptest`.
//!
//! The workspace builds without network access, so the real proptest is
//! unavailable. This crate reimplements the subset its tests use as a
//! deterministic generate-and-check harness: every strategy is a pure
//! generator (no shrinking), and each `proptest!` test derives its RNG seed
//! from the test's path, so failures reproduce exactly across runs.
//!
//! Supported surface: range / range-inclusive strategies over primitive
//! numbers, regex-lite `&str` strategies, `any::<T>()`, `prop_map`, tuple
//! strategies, `prop_oneof!`, `proptest::collection::vec`,
//! `proptest::array::uniform4`, `proptest::bool::ANY`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`, and `#![proptest_config(...)]`.

use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------------- rng

/// Deterministic generator RNG (xorshift* core, splitmix seeding).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG; two instances with equal seeds yield equal streams.
    pub fn new(seed: u64) -> TestRng {
        // Splitmix64 scramble so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        TestRng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`; `lo < hi` required.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        let span = hi - lo;
        lo + self.next_u64() % span
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn range_u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform usize in `[0, n)`; `n > 0` required.
    pub fn index(&mut self, n: usize) -> usize {
        self.range_u64(0, n as u64) as usize
    }
}

// -------------------------------------------------------------- strategy

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy is just a seeded function from RNG state to value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng| self.generate(rng)))
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Choice over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.index(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

// -------------------------------------------------------------- any::<T>

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = (rng.unit() * 600.0) - 300.0;
        let x = 10f64.powf(mag / 10.0);
        if rng.bool() {
            x
        } else {
            -x
        }
    }
}

/// Strategy produced by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod bool {
    //! Boolean strategies.

    /// The uniform boolean strategy.
    pub struct Any;

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;

    impl crate::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::TestRng) -> bool {
            rng.bool()
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// `Vec<T>` strategy with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Vectors of `elem` values with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start >= self.size.end {
                self.size.start
            } else {
                rng.range_u64(self.size.start as u64, self.size.end as u64) as usize
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use super::{Strategy, TestRng};

    /// `[T; 4]` strategy.
    pub struct Uniform4<S>(S);

    /// Four independent draws from `elem`.
    pub fn uniform4<S: Strategy>(elem: S) -> Uniform4<S> {
        Uniform4(elem)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 4] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

// ---------------------------------------------------------------- string

mod regex_lite {
    //! A tiny regex *generator* (not matcher): parses the subset of regex
    //! syntax the workspace's string strategies use and produces matching
    //! strings. Supported: literals, `\x` escapes, `.`, character classes
    //! with ranges (`[A-Za-z0-9_-]`), groups with alternation
    //! (`(com|org|net)`), and the quantifiers `{n}`, `{m,n}`, `?`, `*`,
    //! `+` (the unbounded ones capped at 8 repetitions).

    use super::TestRng;

    #[derive(Debug, Clone)]
    pub enum Node {
        Literal(char),
        AnyChar,
        Class(Vec<(char, char)>),
        Group(Vec<Vec<Node>>),
        Repeat(Box<Node>, usize, usize),
    }

    pub fn parse(pattern: &str) -> Vec<Node> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let alts = parse_alternation(&chars, &mut pos);
        assert!(
            pos == chars.len(),
            "regex-lite: trailing input in pattern `{pattern}`"
        );
        if alts.len() == 1 {
            alts.into_iter().next().unwrap()
        } else {
            vec![Node::Group(alts)]
        }
    }

    fn parse_alternation(chars: &[char], pos: &mut usize) -> Vec<Vec<Node>> {
        let mut alts = vec![parse_concat(chars, pos)];
        while *pos < chars.len() && chars[*pos] == '|' {
            *pos += 1;
            alts.push(parse_concat(chars, pos));
        }
        alts
    }

    fn parse_concat(chars: &[char], pos: &mut usize) -> Vec<Node> {
        let mut nodes = Vec::new();
        while *pos < chars.len() {
            let c = chars[*pos];
            if c == '|' || c == ')' {
                break;
            }
            let atom = parse_atom(chars, pos);
            let node = parse_quantifier(chars, pos, atom);
            nodes.push(node);
        }
        nodes
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
        let c = chars[*pos];
        match c {
            '.' => {
                *pos += 1;
                Node::AnyChar
            }
            '\\' => {
                *pos += 1;
                let escaped = chars[*pos];
                *pos += 1;
                Node::Literal(escaped)
            }
            '[' => {
                *pos += 1;
                assert!(
                    chars[*pos] != '^',
                    "regex-lite: negated classes unsupported"
                );
                let mut ranges = Vec::new();
                while chars[*pos] != ']' {
                    let lo = if chars[*pos] == '\\' {
                        *pos += 1;
                        let c = chars[*pos];
                        *pos += 1;
                        c
                    } else {
                        let c = chars[*pos];
                        *pos += 1;
                        c
                    };
                    if chars[*pos] == '-' && chars[*pos + 1] != ']' {
                        *pos += 1;
                        let hi = chars[*pos];
                        *pos += 1;
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                *pos += 1; // ']'
                Node::Class(ranges)
            }
            '(' => {
                *pos += 1;
                let alts = parse_alternation(chars, pos);
                assert!(chars[*pos] == ')', "regex-lite: unclosed group");
                *pos += 1;
                Node::Group(alts)
            }
            other => {
                *pos += 1;
                Node::Literal(other)
            }
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Node {
        if *pos >= chars.len() {
            return atom;
        }
        match chars[*pos] {
            '?' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, 1)
            }
            '*' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, 8)
            }
            '+' => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 1, 8)
            }
            '{' => {
                *pos += 1;
                let mut lo = String::new();
                while chars[*pos].is_ascii_digit() {
                    lo.push(chars[*pos]);
                    *pos += 1;
                }
                let lo: usize = lo.parse().expect("regex-lite: bad {m}");
                let hi = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut hi = String::new();
                    while chars[*pos].is_ascii_digit() {
                        hi.push(chars[*pos]);
                        *pos += 1;
                    }
                    hi.parse().expect("regex-lite: bad {m,n}")
                } else {
                    lo
                };
                assert!(chars[*pos] == '}', "regex-lite: unclosed quantifier");
                *pos += 1;
                Node::Repeat(Box::new(atom), lo, hi)
            }
            _ => atom,
        }
    }

    pub fn generate(nodes: &[Node], rng: &mut TestRng, out: &mut String) {
        for node in nodes {
            generate_one(node, rng, out);
        }
    }

    fn generate_one(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::AnyChar => {
                // Mostly printable ASCII, occasionally multibyte, so URL
                // parsers etc. see non-trivial input without drowning in
                // unicode noise.
                if rng.index(16) == 0 {
                    const EXOTIC: [char; 8] =
                        ['é', '中', 'Ω', '😀', '\u{200b}', 'ß', 'я', '\u{7f}'];
                    out.push(EXOTIC[rng.index(EXOTIC.len())]);
                } else {
                    out.push((0x20 + rng.index(0x5f) as u8) as char);
                }
            }
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                    .sum();
                let mut k = rng.range_u64(0, total);
                for (lo, hi) in ranges {
                    let span = (*hi as u64) - (*lo as u64) + 1;
                    if k < span {
                        out.push(char::from_u32(*lo as u32 + k as u32).unwrap());
                        return;
                    }
                    k -= span;
                }
                unreachable!()
            }
            Node::Group(alts) => {
                let pick = rng.index(alts.len());
                generate(&alts[pick], rng, out);
            }
            Node::Repeat(inner, lo, hi) => {
                let n = if lo >= hi {
                    *lo
                } else {
                    rng.range_u64(*lo as u64, *hi as u64 + 1) as usize
                };
                for _ in 0..n {
                    generate_one(inner, rng, out);
                }
            }
        }
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let nodes = regex_lite::parse(self);
        let mut out = String::new();
        regex_lite::generate(&nodes, rng, &mut out);
        out
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        self.as_str().generate(rng)
    }
}

// ------------------------------------------------------------ the runner

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps this workspace's heavier
        // simulation-valued properties fast while still exploring widely.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — the case is discarded, not a failure.
    Reject,
    /// `prop_assert!`/`prop_assert_eq!` failed.
    Fail(String),
}

/// FNV-1a, for deriving stable per-test seeds from the test path.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude::*`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$a, &$b);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l, __r, format!($($fmt)+)
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __seed = $crate::fnv1a(
                concat!(module_path!(), "::", stringify!($name)).as_bytes(),
            );
            let mut __rejected: u32 = 0;
            let mut __case: u32 = 0;
            while __case < __config.cases {
                let __case_seed = __seed ^ ((__case as u64 + __rejected as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut __rng = $crate::TestRng::new(__case_seed);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match __result {
                    Ok(()) => { __case += 1; }
                    Err($crate::TestCaseError::Reject) => {
                        __rejected += 1;
                        if __rejected > __config.cases * 16 {
                            panic!(
                                "proptest: too many prop_assume! rejections in {}",
                                stringify!($name)
                            );
                        }
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed (seed {:#x}): {}",
                            __case, stringify!($name), __case_seed, msg
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let x = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&x));
            let y = (0u8..=255).generate(&mut rng);
            let _ = y;
            let f = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn regex_domain_shape() {
        let mut rng = TestRng::new(7);
        let strat = "[a-z][a-z0-9-]{0,15}\\.(com|org|net)";
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(
                s.ends_with(".com") || s.ends_with(".org") || s.ends_with(".net"),
                "bad domain {s}"
            );
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn regex_grouped_repeat() {
        let mut rng = TestRng::new(9);
        let strat = "[A-Za-z][A-Za-z0-9-]{0,20}(\\.[A-Za-z]{2,6}){1,2}";
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(s.contains('.'), "no dot in {s}");
        }
    }

    proptest! {
        #[test]
        fn vec_lengths_respected(xs in crate::collection::vec(0u32..100, 3..7)) {
            prop_assert!((3..7).contains(&xs.len()));
            prop_assert!(xs.iter().all(|x| *x < 100));
        }

        #[test]
        fn oneof_and_map_work(v in prop_oneof![
            (0u32..10).prop_map(|x| x as u64),
            (100u32..110).prop_map(|x| x as u64),
        ]) {
            prop_assert!(v < 10 || (100..110).contains(&v));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
