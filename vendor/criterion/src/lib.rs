//! Offline stand-in for `criterion`.
//!
//! The workspace builds without network access, so the real criterion is
//! unavailable. This crate keeps the same API surface the benches use
//! (`Criterion`, `black_box`, `criterion_group!`, `criterion_main!`,
//! benchmark groups, `BenchmarkId`) and measures with a plain
//! warmup-then-sample wall-clock loop, reporting mean ns/iter on stdout.
//! No statistics, plots, or baselines — just honest timings.

use std::time::{Duration, Instant};

/// Opaque to the optimiser.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for a parameterised benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{name}/{param}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: param.to_string(),
        }
    }
}

/// The benchmark harness.
pub struct Criterion {
    warmup: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Overridable for quick CI smoke runs.
        let scale: f64 = std::env::var("CRITERION_TIME_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        Criterion {
            warmup: Duration::from_millis((150.0 * scale) as u64),
            measurement: Duration::from_millis((400.0 * scale) as u64),
        }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warmup: self.warmup,
            measurement: self.measurement,
            result: None,
        };
        f(&mut b);
        report(name, b.result);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<GroupBenchId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        self.criterion.bench_function(&full, |b| f(b, input));
        self
    }

    /// Shrink sample counts (accepted for API compatibility; the harness
    /// is time-budgeted, so this is a no-op).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Accepts both `&str` and [`BenchmarkId`] as group benchmark names.
pub struct GroupBenchId(String);

impl From<&str> for GroupBenchId {
    fn from(s: &str) -> Self {
        GroupBenchId(s.to_string())
    }
}

impl From<BenchmarkId> for GroupBenchId {
    fn from(id: BenchmarkId) -> Self {
        GroupBenchId(id.label)
    }
}

/// Measures one closure.
pub struct Bencher {
    warmup: Duration,
    measurement: Duration,
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Time `f`, called repeatedly for the configured budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warmup: establish caches and estimate per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warmup || warm_iters < 3 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        // Measure.
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < self.measurement || iters < 3 {
            black_box(f());
            iters += 1;
            if iters >= 10_000_000 {
                break;
            }
        }
        let elapsed = start.elapsed();
        let ns_per_iter = elapsed.as_nanos() as f64 / iters as f64;
        self.result = Some((ns_per_iter, iters));
    }
}

fn report(name: &str, result: Option<(f64, u64)>) {
    match result {
        Some((ns, iters)) => {
            let (value, unit) = if ns >= 1e9 {
                (ns / 1e9, "s")
            } else if ns >= 1e6 {
                (ns / 1e6, "ms")
            } else if ns >= 1e3 {
                (ns / 1e3, "µs")
            } else {
                (ns, "ns")
            };
            println!("{name:<48} time: {value:>10.3} {unit}/iter ({iters} iterations)");
        }
        None => println!("{name:<48} (no measurement recorded)"),
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        std::env::set_var("CRITERION_TIME_SCALE", "0.01");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }
}
