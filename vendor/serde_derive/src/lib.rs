//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds without network access, so the real serde cannot be
//! fetched. This proc-macro crate derives the `Serialize` / `Deserialize`
//! traits defined by the sibling `vendor/serde` crate — both their JSON
//! codec and the positional binary codec (`write_bin` / `read_bin`:
//! fields in declaration order, enum variants as a declaration-order
//! varint index; `skip` fields are omitted and restored via `Default`,
//! while `default` / `skip_serializing_if` only shape the JSON form,
//! since binary fields are always present positionally). It supports
//! exactly the shapes this workspace uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]`,
//!   `#[serde(default)]` / `#[serde(default = "path")]`, and
//!   `#[serde(skip_serializing_if = "path")]`),
//! * tuple structs (newtype = transparent, n-tuple = JSON array),
//! * enums with unit, tuple, and struct variants (externally tagged, as
//!   real serde would emit them).
//!
//! `default` makes a field optional on the wire (absent → the default),
//! and `skip_serializing_if` suppresses it on output when the named
//! predicate holds — together they let a struct grow fields without
//! changing the bytes of documents that never set them, which is how the
//! golden-file byte-identity contract survives schema growth.
//!
//! Generics are intentionally unsupported — no derived type in this
//! workspace is generic, and keeping the parser simple keeps it auditable.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

struct Field {
    name: String,
    skip: bool,
    /// `Some(None)` = `#[serde(default)]` (use `Default::default()`),
    /// `Some(Some(path))` = `#[serde(default = "path")]` (call `path()`).
    default: Option<Option<String>>,
    /// Predicate path from `#[serde(skip_serializing_if = "path")]`.
    skip_serializing_if: Option<String>,
}

enum Shape {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// The field-level serde options this shim understands.
#[derive(Default)]
struct SerdeAttrs {
    skip: bool,
    default: Option<Option<String>>,
    skip_serializing_if: Option<String>,
}

/// Strip the surrounding quotes from a string-literal token.
fn lit_str(lit: &proc_macro::Literal) -> String {
    let s = lit.to_string();
    s.trim_matches('"').to_string()
}

/// Merge any recognised options from one `#[serde(...)]` attribute group
/// (the `[...]` part) into `attrs`. Non-serde attributes and unknown
/// options are ignored, as before.
fn collect_serde_attrs(group: &proc_macro::Group, attrs: &mut SerdeAttrs) {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(inner)) = tokens.next() else {
        return;
    };
    let mut it = inner.stream().into_iter().peekable();
    while let Some(tt) = it.next() {
        let TokenTree::Ident(i) = tt else { continue };
        let key = i.to_string();
        // Consume an optional `= "literal"` payload.
        let mut value = None;
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            let _ = it.next();
            if let Some(TokenTree::Literal(lit)) = it.next() {
                value = Some(lit_str(&lit));
            }
        }
        match key.as_str() {
            "skip" => attrs.skip = true,
            "default" => attrs.default = Some(value),
            "skip_serializing_if" => attrs.skip_serializing_if = value,
            _ => {}
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;
    let mut name = String::new();

    // Walk past attributes and visibility to the item keyword and name.
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next(); // the [...] group
            }
            TokenTree::Ident(i) => {
                let s = i.to_string();
                if s == "pub" {
                    if let Some(TokenTree::Group(_)) = iter.peek() {
                        let _ = iter.next(); // pub(crate) etc.
                    }
                } else if s == "struct" || s == "enum" {
                    kind = Some(if s == "struct" { "struct" } else { "enum" });
                    match iter.next() {
                        Some(TokenTree::Ident(n)) => name = n.to_string(),
                        other => panic!("expected item name, got {other:?}"),
                    }
                    break;
                }
            }
            _ => {}
        }
    }
    let kind = kind.expect("derive input must be a struct or enum");

    // Reject generics; find the body.
    let mut body: Option<proc_macro::Group> = None;
    let mut is_tuple = false;
    for tt in iter {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                panic!("vendor serde_derive does not support generic types ({name})")
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                body = Some(g);
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                body = Some(g);
                is_tuple = true;
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => {}
        }
    }

    if kind == "struct" {
        let shape = match body {
            None => Shape::Unit,
            Some(g) if is_tuple => Shape::Tuple(count_tuple_fields(g.stream())),
            Some(g) => Shape::Named(parse_named_fields(g.stream())),
        };
        Item::Struct { name, shape }
    } else {
        let g = body.expect("enum must have a body");
        Item::Enum {
            name,
            variants: parse_variants(g.stream()),
        }
    }
}

/// Split a token stream at top-level commas (angle-bracket depth aware).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_any = false;
    for tt in stream {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => fields += 1,
            _ => saw_any = true,
        }
    }
    if saw_any {
        fields + 1
    } else {
        0
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    let mut pending = SerdeAttrs::default();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = iter.next() {
                    collect_serde_attrs(&g, &mut pending);
                }
            }
            TokenTree::Ident(i) if i.to_string() == "pub" => {
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    let _ = iter.next();
                }
            }
            TokenTree::Ident(i) => {
                // Field name; expect `:` then skip the type to the comma.
                fields.push(Field {
                    name: i.to_string(),
                    skip: pending.skip,
                    default: pending.default.take(),
                    skip_serializing_if: pending.skip_serializing_if.take(),
                });
                pending = SerdeAttrs::default();
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected ':' after field name, got {other:?}"),
                }
                let mut depth = 0i32;
                for tt in iter.by_ref() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                        _ => {}
                    }
                }
            }
            _ => {}
        }
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let _ = iter.next(); // attribute body
            }
            TokenTree::Ident(i) => {
                let name = i.to_string();
                let shape = match iter.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let g = g.stream();
                        let _ = iter.next();
                        Shape::Named(parse_named_fields(g))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let g = g.stream();
                        let _ = iter.next();
                        Shape::Tuple(count_tuple_fields(g))
                    }
                    _ => Shape::Unit,
                };
                // Skip a possible discriminant up to the separating comma.
                while let Some(tt) = iter.peek() {
                    match tt {
                        TokenTree::Punct(p) if p.as_char() == ',' => {
                            let _ = iter.next();
                            break;
                        }
                        _ => {
                            let _ = iter.next();
                        }
                    }
                }
                variants.push(Variant { name, shape });
            }
            _ => {}
        }
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "__out.push_str(\"null\");".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::write_json(&self.0, __out);".to_string(),
                Shape::Tuple(n) => {
                    let mut s = String::from("__out.push('[');");
                    for i in 0..*n {
                        if i > 0 {
                            s.push_str("__out.push(',');");
                        }
                        s.push_str(&format!(
                            "::serde::Serialize::write_json(&self.{i}, __out);"
                        ));
                    }
                    s.push_str("__out.push(']');");
                    s
                }
                Shape::Named(fields) => ser_named_body(fields, "self.", ""),
            };
            let bin_body = match shape {
                Shape::Unit => String::new(),
                Shape::Tuple(n) => (0..*n)
                    .map(|i| format!("::serde::Serialize::write_bin(&self.{i}, __out);"))
                    .collect(),
                Shape::Named(fields) => ser_bin_named_body(fields, "self."),
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn write_json(&self, __out: &mut ::std::string::String) {{ {body} }}\n\
                 fn write_bin(&self, __out: &mut ::std::vec::Vec<u8>) {{ let _ = &__out; {bin_body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::json::push_string(__out, \"{vn}\"),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binders.join(", ");
                        let mut body = String::from("__out.push('{');");
                        body.push_str(&format!("::serde::json::push_key(__out, \"{vn}\");"));
                        if *n == 1 {
                            body.push_str("::serde::Serialize::write_json(__f0, __out);");
                        } else {
                            body.push_str("__out.push('[');");
                            for (i, b) in binders.iter().enumerate() {
                                if i > 0 {
                                    body.push_str("__out.push(',');");
                                }
                                body.push_str(&format!(
                                    "::serde::Serialize::write_json({b}, __out);"
                                ));
                            }
                            body.push_str("__out.push(']');");
                        }
                        body.push_str("__out.push('}');");
                        arms.push_str(&format!("{name}::{vn}({pat}) => {{ {body} }}\n"));
                    }
                    Shape::Named(fields) => {
                        let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pat = pat.join(", ");
                        let mut body = String::from("__out.push('{');");
                        body.push_str(&format!("::serde::json::push_key(__out, \"{vn}\");"));
                        body.push_str(&ser_named_body(fields, "", ""));
                        body.push_str("__out.push('}');");
                        arms.push_str(&format!("{name}::{vn} {{ {pat} }} => {{ {body} }}\n"));
                    }
                }
            }
            let mut bin_arms = String::new();
            for (index, v) in variants.iter().enumerate() {
                let vn = &v.name;
                let tag = format!("::serde::bin::put_uvarint(__out, {index});");
                match &v.shape {
                    Shape::Unit => {
                        bin_arms.push_str(&format!("{name}::{vn} => {{ {tag} }}\n"));
                    }
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binders.join(", ");
                        let writes: String = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::write_bin({b}, __out);"))
                            .collect();
                        bin_arms
                            .push_str(&format!("{name}::{vn}({pat}) => {{ {tag} {writes} }}\n"));
                    }
                    Shape::Named(fields) => {
                        let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pat = pat.join(", ");
                        let writes = ser_bin_named_body(fields, "");
                        bin_arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{ {tag} {writes} }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn write_json(&self, __out: &mut ::std::string::String) {{\n\
                 match self {{ {arms} }}\n\
                 }}\n\
                 fn write_bin(&self, __out: &mut ::std::vec::Vec<u8>) {{\n\
                 match self {{ {bin_arms} }}\n\
                 }}\n}}"
            )
        }
    }
}

/// Binary body writing named fields positionally (declaration order).
/// `skip` fields are omitted; `skip_serializing_if` is deliberately
/// ignored — the binary format is positional, so presence can never be
/// conditional.
fn ser_bin_named_body(fields: &[Field], prefix: &str) -> String {
    fields
        .iter()
        .filter(|f| !f.skip)
        .map(|f| {
            let access = if prefix.is_empty() {
                f.name.clone()
            } else {
                format!("&{prefix}{}", f.name)
            };
            format!("::serde::Serialize::write_bin({access}, __out);")
        })
        .collect()
}

/// Body serialising named fields as a JSON object. `prefix` is `self.` for
/// structs and empty for enum struct-variants (whose fields are bound by
/// name), `amp` lets struct fields take a reference.
fn ser_named_body(fields: &[Field], prefix: &str, _amp: &str) -> String {
    let mut s = String::from("__out.push('{');");
    let conditional = fields
        .iter()
        .any(|f| !f.skip && f.skip_serializing_if.is_some());
    if conditional {
        // Some fields may be suppressed at runtime, so the comma between
        // entries must be decided at runtime too.
        s.push_str("let mut __first = true;");
    }
    let mut first = true;
    for f in fields.iter().filter(|f| !f.skip) {
        let fname = &f.name;
        let access = if prefix.is_empty() {
            fname.clone()
        } else {
            format!("&{prefix}{fname}")
        };
        let mut entry = String::new();
        if conditional {
            entry.push_str("if !__first { __out.push(','); } __first = false;");
        } else if !first {
            entry.push_str("__out.push(',');");
        }
        first = false;
        entry.push_str(&format!(
            "::serde::json::push_key(__out, \"{fname}\");\
             ::serde::Serialize::write_json({access}, __out);"
        ));
        if let Some(pred) = &f.skip_serializing_if {
            s.push_str(&format!("if !({pred})({access}) {{ {entry} }}"));
        } else {
            s.push_str(&entry);
        }
    }
    s.push_str("__out.push('}');");
    s
}

/// One `name: <expr>,` initialiser for a named field being deserialised
/// from the object bound to `__obj`.
fn de_named_field(f: &Field) -> String {
    let fname = &f.name;
    if f.skip {
        return format!("{fname}: ::std::default::Default::default(),");
    }
    match &f.default {
        None => format!("{fname}: ::serde::json::field(__obj, \"{fname}\")?,"),
        Some(path) => {
            let fallback = match path {
                None => "::std::default::Default::default()".to_string(),
                Some(p) => format!("{p}()"),
            };
            format!(
                "{fname}: match ::serde::json::opt_field(__obj, \"{fname}\")? {{\
                 ::std::option::Option::Some(__f) => __f,\
                 ::std::option::Option::None => {fallback},\
                 }},"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("Ok({name})"),
                Shape::Tuple(1) => {
                    format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
                }
                Shape::Tuple(n) => {
                    let mut s = format!(
                        "let __arr = __v.as_array().ok_or_else(|| \
                         ::serde::json::Error::new(\"expected array for {name}\"))?;\
                         if __arr.len() != {n} {{ return Err(::serde::json::Error::new(\
                         \"wrong tuple arity for {name}\")); }}\
                         Ok({name}("
                    );
                    for i in 0..*n {
                        s.push_str(&format!("::serde::Deserialize::from_value(&__arr[{i}])?,"));
                    }
                    s.push_str("))");
                    s
                }
                Shape::Named(fields) => {
                    let mut s = format!(
                        "let __obj = __v.as_object().ok_or_else(|| \
                         ::serde::json::Error::new(\"expected object for {name}\"))?;\
                         Ok({name} {{"
                    );
                    for f in fields {
                        s.push_str(&de_named_field(f));
                    }
                    s.push_str("})");
                    s
                }
            };
            let bin_body = match shape {
                Shape::Unit => format!("Ok({name})"),
                Shape::Tuple(n) => {
                    let mut s = String::new();
                    for i in 0..*n {
                        s.push_str(&format!(
                            "let __f{i} = ::serde::Deserialize::read_bin(__input)?;"
                        ));
                    }
                    let args: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                    format!("{s} Ok({name}({}))", args.join(", "))
                }
                Shape::Named(fields) => {
                    let mut s = String::new();
                    let mut inits = String::new();
                    for f in fields {
                        let fname = &f.name;
                        if f.skip {
                            inits
                                .push_str(&format!("{fname}: ::std::default::Default::default(),"));
                        } else {
                            s.push_str(&format!(
                                "let __b_{fname} = ::serde::Deserialize::read_bin(__input)?;"
                            ));
                            inits.push_str(&format!("{fname}: __b_{fname},"));
                        }
                    }
                    format!("{s} Ok({name} {{ {inits} }})")
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::json::Value) -> \
                 ::std::result::Result<Self, ::serde::json::Error> {{ {body} }}\n\
                 fn read_bin(__input: &mut ::serde::bin::Reader<'_>) -> \
                 ::std::result::Result<Self, ::serde::json::Error> {{ let _ = &__input; {bin_body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => return Ok({name}::{vn}),\n"))
                    }
                    Shape::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let mut arm = format!(
                            "\"{vn}\" => {{ let __arr = __inner.as_array()\
                             .ok_or_else(|| ::serde::json::Error::new(\
                             \"expected array for {name}::{vn}\"))?;\
                             if __arr.len() != {n} {{ return Err(\
                             ::serde::json::Error::new(\"wrong arity for {name}::{vn}\")); }}\
                             return Ok({name}::{vn}("
                        );
                        for i in 0..*n {
                            arm.push_str(&format!(
                                "::serde::Deserialize::from_value(&__arr[{i}])?,"
                            ));
                        }
                        arm.push_str(")); }\n");
                        tagged_arms.push_str(&arm);
                    }
                    Shape::Named(fields) => {
                        let mut arm = format!(
                            "\"{vn}\" => {{ let __obj = __inner.as_object()\
                             .ok_or_else(|| ::serde::json::Error::new(\
                             \"expected object for {name}::{vn}\"))?;\
                             return Ok({name}::{vn} {{"
                        );
                        for f in fields {
                            arm.push_str(&de_named_field(f));
                        }
                        arm.push_str("}); }\n");
                        tagged_arms.push_str(&arm);
                    }
                }
            }
            let mut bin_arms = String::new();
            for (index, v) in variants.iter().enumerate() {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        bin_arms.push_str(&format!("{index} => Ok({name}::{vn}),\n"));
                    }
                    Shape::Tuple(n) => {
                        let mut reads = String::new();
                        for i in 0..*n {
                            reads.push_str(&format!(
                                "let __f{i} = ::serde::Deserialize::read_bin(__input)?;"
                            ));
                        }
                        let args: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        bin_arms.push_str(&format!(
                            "{index} => {{ {reads} Ok({name}::{vn}({})) }}\n",
                            args.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let mut reads = String::new();
                        let mut inits = String::new();
                        for f in fields {
                            let fname = &f.name;
                            if f.skip {
                                inits.push_str(&format!(
                                    "{fname}: ::std::default::Default::default(),"
                                ));
                            } else {
                                reads.push_str(&format!(
                                    "let __b_{fname} = ::serde::Deserialize::read_bin(__input)?;"
                                ));
                                inits.push_str(&format!("{fname}: __b_{fname},"));
                            }
                        }
                        bin_arms.push_str(&format!(
                            "{index} => {{ {reads} Ok({name}::{vn} {{ {inits} }}) }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(__v: &::serde::json::Value) -> \
                 ::std::result::Result<Self, ::serde::json::Error> {{\n\
                 if let Some(__s) = __v.as_str() {{\
                 match __s {{ {unit_arms} _ => {{}} }} }}\n\
                 if let Some((__tag, __inner)) = __v.as_tagged() {{\
                 match __tag {{ {tagged_arms} _ => {{}} }} }}\n\
                 Err(::serde::json::Error::new(\"no matching variant of {name}\"))\n\
                 }}\n\
                 fn read_bin(__input: &mut ::serde::bin::Reader<'_>) -> \
                 ::std::result::Result<Self, ::serde::json::Error> {{\n\
                 match __input.uvarint()? {{ {bin_arms} __other => \
                 Err(::serde::json::Error::new(format!(\
                 \"bad variant index {{__other}} for {name}\")))\n\
                 }}\n}}\n}}"
            )
        }
    }
}
