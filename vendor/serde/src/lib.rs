//! Offline stand-in for `serde`, specialised to JSON plus a compact
//! binary row format.
//!
//! This workspace must build without network access, so the real serde is
//! unavailable. The codebase only ever serialises to / deserialises from
//! JSON (via `serde_json::{to_string, to_string_pretty, from_str}`), so the
//! generic `Serializer`/`Deserializer` machinery is replaced by two small
//! traits: [`Serialize`] writes compact JSON into a `String`, and
//! [`Deserialize`] reads from a parsed [`json::Value`] tree. The derive
//! macros (see `vendor/serde_derive`) emit serde-compatible shapes:
//! structs as objects, newtypes transparently, enums externally tagged.
//!
//! Both traits additionally carry a **positional binary codec**
//! ([`Serialize::write_bin`] / [`Deserialize::read_bin`], see [`bin`])
//! for hot inter-process payloads where JSON's repeated field names and
//! text numbers are too slow. Derived impls emit fields positionally;
//! hand-written impls inherit a default that tunnels the JSON encoding
//! as one length-prefixed string, so every type is automatically
//! self-consistent on the wire — the binary form is an internal transport
//! encoding, never a stored artifact, and carries no cross-version
//! compatibility promise (frames are versioned at the protocol layer).

pub use serde_derive::{Deserialize, Serialize};

/// Serialise `self` as compact JSON appended to `out`.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);

    /// Append this value's binary encoding to `out`.
    ///
    /// The default tunnels the JSON encoding as a length-prefixed
    /// string, which [`Deserialize::read_bin`]'s default reverses —
    /// hand-written JSON-only impls stay wire-consistent for free.
    fn write_bin(&self, out: &mut Vec<u8>) {
        let mut s = String::new();
        self.write_json(&mut s);
        bin::put_bytes(out, s.as_bytes());
    }
}

/// Reconstruct `Self` from a parsed JSON value.
pub trait Deserialize: Sized {
    /// Build `Self` from `v`, or explain why it has the wrong shape.
    fn from_value(v: &json::Value) -> Result<Self, json::Error>;

    /// Read `Self` from the binary encoding.
    ///
    /// The default reverses [`Serialize::write_bin`]'s default: read one
    /// length-prefixed JSON string and parse it.
    fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
        let bytes = input.take_len_prefixed()?;
        let s = std::str::from_utf8(bytes)
            .map_err(|_| json::Error::new("invalid utf8 in tunneled json"))?;
        Self::from_value(&json::parse(s)?)
    }
}

pub mod json {
    //! The JSON data model, parser, and printer behind the two traits.

    use std::fmt;

    /// A parse or shape error.
    #[derive(Debug, Clone)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// An error carrying `msg`.
        pub fn new(msg: impl Into<String>) -> Error {
            Error { msg: msg.into() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "json error: {}", self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// A parsed JSON document. Numbers keep their raw token so integer
    /// precision is never lost through an f64 round-trip.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A number, as its original token text.
        Num(String),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object (insertion-ordered).
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a JSON string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The boolean payload, if any.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The array payload, if any.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The object payload, if any.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }

        /// A single-key object viewed as `(tag, inner)` — the externally
        /// tagged enum encoding.
        pub fn as_tagged(&self) -> Option<(&str, &Value)> {
            match self {
                Value::Obj(o) if o.len() == 1 => Some((o[0].0.as_str(), &o[0].1)),
                _ => None,
            }
        }

        /// The raw number token, if this is a number.
        pub fn num_token(&self) -> Option<&str> {
            match self {
                Value::Num(t) => Some(t),
                _ => None,
            }
        }
    }

    /// Look up `name` in an object and deserialise it.
    pub fn field<T: crate::Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => Err(Error::new(format!("missing field `{name}`"))),
        }
    }

    /// Like [`field`], but an absent key is `Ok(None)` instead of an
    /// error — the lookup behind `#[serde(default)]` fields.
    pub fn opt_field<T: crate::Deserialize>(
        obj: &[(String, Value)],
        name: &str,
    ) -> Result<Option<T>, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v).map(Some),
            None => Ok(None),
        }
    }

    /// Append a JSON string literal (with escaping).
    pub fn push_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Append an object key and its separating colon.
    pub fn push_key(out: &mut String, key: &str) {
        push_string(out, key);
        out.push(':');
    }

    // ------------------------------------------------------------- parser

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::new(format!(
                    "expected '{}' at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn parse_value(&mut self) -> Result<Value, Error> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.parse_object(),
                Some(b'[') => self.parse_array(),
                Some(b'"') => Ok(Value::Str(self.parse_string()?)),
                Some(b't') => self.parse_lit("true", Value::Bool(true)),
                Some(b'f') => self.parse_lit("false", Value::Bool(false)),
                Some(b'n') => self.parse_lit("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.parse_number(),
                other => Err(Error::new(format!(
                    "unexpected input {other:?} at byte {}",
                    self.pos
                ))),
            }
        }

        fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(Error::new(format!("bad literal at byte {}", self.pos)))
            }
        }

        fn parse_number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            while let Some(b) = self.peek() {
                match b {
                    b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                    _ => break,
                }
            }
            let tok = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::new("invalid utf8 in number"))?;
            // Validate it parses as a float at minimum.
            tok.parse::<f64>()
                .map_err(|_| Error::new(format!("bad number token `{tok}`")))?;
            Ok(Value::Num(tok.to_string()))
        }

        fn parse_string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut s = String::new();
            // Scan raw bytes for the next `"` or `\` and copy whole
            // unescaped segments at once, validating UTF-8 per segment.
            // Both delimiters are ASCII, so they can never appear inside
            // a multi-byte UTF-8 sequence (continuation bytes are
            // >= 0x80) — byte-wise scanning is exact.
            let mut seg_start = self.pos;
            loop {
                match self.bytes.get(self.pos) {
                    None => return Err(Error::new("unterminated string")),
                    Some(b'"') => {
                        let seg = std::str::from_utf8(&self.bytes[seg_start..self.pos])
                            .map_err(|_| Error::new("invalid utf8 in string"))?;
                        s.push_str(seg);
                        self.pos += 1;
                        return Ok(s);
                    }
                    Some(b'\\') => {
                        let seg = std::str::from_utf8(&self.bytes[seg_start..self.pos])
                            .map_err(|_| Error::new("invalid utf8 in string"))?;
                        s.push_str(seg);
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| Error::new("short \\u escape"))?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| Error::new("bad \\u escape"))?;
                                // Surrogate pairs are not produced by our
                                // printer; reject them on input.
                                let c = char::from_u32(cp)
                                    .ok_or_else(|| Error::new("bad \\u codepoint"))?;
                                s.push(c);
                                self.pos += 4;
                            }
                            other => return Err(Error::new(format!("bad escape {other:?}"))),
                        }
                        self.pos += 1;
                        seg_start = self.pos;
                    }
                    Some(_) => self.pos += 1,
                }
            }
        }

        fn parse_array(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.parse_value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(Error::new(format!("expected ',' or ']', got {other:?}"))),
                }
            }
        }

        fn parse_object(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                self.skip_ws();
                let key = self.parse_string()?;
                self.skip_ws();
                self.expect(b':')?;
                let value = self.parse_value()?;
                entries.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(entries));
                    }
                    other => {
                        return Err(Error::new(format!("expected ',' or '}}', got {other:?}")))
                    }
                }
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new("trailing garbage after JSON value"));
        }
        Ok(v)
    }

    /// Pretty-print a parsed value with two-space indentation.
    pub fn pretty(v: &Value) -> String {
        let mut out = String::new();
        pretty_into(v, 0, &mut out);
        out
    }

    fn pretty_into(v: &Value, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(t) => out.push_str(t),
            Value::Str(s) => push_string(out, s),
            Value::Arr(items) if items.is_empty() => out.push_str("[]"),
            Value::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    pretty_into(item, indent + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(entries) if entries.is_empty() => out.push_str("{}"),
            Value::Obj(entries) => {
                out.push_str("{\n");
                for (i, (k, val)) in entries.iter().enumerate() {
                    out.push_str(&pad_in);
                    push_string(out, k);
                    out.push_str(": ");
                    pretty_into(val, indent + 1, out);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

pub mod bin {
    //! The positional binary row format behind [`crate::Serialize::write_bin`].
    //!
    //! Primitives: unsigned integers are LEB128 varints, signed integers
    //! zigzag first, floats are fixed-width little-endian IEEE bits,
    //! `bool` one byte. Strings and byte blobs are varint-length-prefixed.
    //! Containers carry a varint element count; struct fields and tuple
    //! elements are positional (no names, no tags); enum variants are a
    //! varint declaration-order index. Errors reuse [`crate::json::Error`]
    //! so both codecs surface through one error type.

    use super::json::Error;

    /// Append `v` as a LEB128 varint.
    #[inline]
    pub fn put_uvarint(out: &mut Vec<u8>, mut v: u128) {
        // Single-byte fast path: most wire integers (field counts,
        // enum indexes, small counters) fit in 7 bits.
        if v < 0x80 {
            out.push(v as u8);
            return;
        }
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return;
            }
            out.push(byte | 0x80);
        }
    }

    /// Append a varint-length-prefixed byte blob.
    pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
        put_uvarint(out, bytes.len() as u128);
        out.extend_from_slice(bytes);
    }

    /// A bounds-checked cursor over a binary payload.
    pub struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// A reader over `bytes`, positioned at the start.
        pub fn new(bytes: &'a [u8]) -> Reader<'a> {
            Reader { bytes, pos: 0 }
        }

        /// Bytes not yet consumed.
        pub fn remaining(&self) -> usize {
            self.bytes.len() - self.pos
        }

        /// Take the next `n` bytes, or fail without over-reading.
        #[inline]
        pub fn take(&mut self, n: usize) -> Result<&'a [u8], Error> {
            match self.bytes.get(self.pos..self.pos + n) {
                Some(slice) => {
                    self.pos += n;
                    Ok(slice)
                }
                None => Err(Error::new(format!(
                    "binary payload truncated: wanted {n} byte(s), {} left",
                    self.remaining()
                ))),
            }
        }

        /// Take one byte.
        #[inline]
        pub fn byte(&mut self) -> Result<u8, Error> {
            Ok(self.take(1)?[0])
        }

        /// Read a LEB128 varint.
        #[inline]
        pub fn uvarint(&mut self) -> Result<u128, Error> {
            // Single-byte fast path, mirroring `put_uvarint`.
            let first = self.byte()?;
            if first & 0x80 == 0 {
                return Ok(u128::from(first));
            }
            let mut v = u128::from(first & 0x7f);
            let mut shift = 7u32;
            loop {
                let byte = self.byte()?;
                if shift >= 128 {
                    return Err(Error::new("varint longer than 128 bits"));
                }
                v |= u128::from(byte & 0x7f)
                    .checked_shl(shift)
                    .ok_or_else(|| Error::new("varint overflows 128 bits"))?;
                if byte & 0x80 == 0 {
                    return Ok(v);
                }
                shift += 7;
            }
        }

        /// Read an element count and sanity-check it against the bytes
        /// actually left (every element costs at least one byte), so a
        /// corrupt length can never drive a huge allocation.
        pub fn count(&mut self) -> Result<usize, Error> {
            let n = self.uvarint()?;
            let n = usize::try_from(n).map_err(|_| Error::new("count overflows usize"))?;
            if n > self.remaining() {
                return Err(Error::new(format!(
                    "count {n} exceeds {} remaining payload byte(s)",
                    self.remaining()
                )));
            }
            Ok(n)
        }

        /// Read a varint-length-prefixed byte blob.
        pub fn take_len_prefixed(&mut self) -> Result<&'a [u8], Error> {
            let n = self.count()?;
            self.take(n)
        }

        /// Read a length-prefixed UTF-8 string slice.
        pub fn str_slice(&mut self) -> Result<&'a str, Error> {
            std::str::from_utf8(self.take_len_prefixed()?)
                .map_err(|_| Error::new("invalid utf8 in binary string"))
        }

        /// Fail unless every byte was consumed.
        pub fn finish(&self) -> Result<(), Error> {
            if self.remaining() == 0 {
                Ok(())
            } else {
                Err(Error::new(format!(
                    "{} trailing byte(s) after binary value",
                    self.remaining()
                )))
            }
        }
    }

    /// Encode `value` to a fresh buffer.
    pub fn to_vec<T: crate::Serialize + ?Sized>(value: &T) -> Vec<u8> {
        let mut out = Vec::new();
        value.write_bin(&mut out);
        out
    }

    /// Decode a `T` from `bytes`, requiring the value to span them exactly.
    pub fn from_slice<T: crate::Deserialize>(bytes: &[u8]) -> Result<T, Error> {
        let mut reader = Reader::new(bytes);
        let value = T::read_bin(&mut reader)?;
        reader.finish()?;
        Ok(value)
    }
}

// ------------------------------------------------------ primitive impls

macro_rules! int_json_impls {
    ($t:ty) => {
        fn write_json(&self, out: &mut String) {
            out.push_str(&self.to_string());
        }
    };
}

macro_rules! int_json_de {
    ($t:ty) => {
        fn from_value(v: &json::Value) -> Result<Self, json::Error> {
            let tok = v
                .num_token()
                .ok_or_else(|| json::Error::new(concat!("expected number for ", stringify!($t))))?;
            tok.parse::<$t>().map_err(|_| {
                json::Error::new(format!(
                    "number `{tok}` out of range for {}",
                    stringify!($t)
                ))
            })
        }
    };
}

macro_rules! uint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            int_json_impls!($t);
            fn write_bin(&self, out: &mut Vec<u8>) {
                bin::put_uvarint(out, *self as u128);
            }
        }
        impl Deserialize for $t {
            int_json_de!($t);
            fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
                <$t>::try_from(input.uvarint()?).map_err(|_| {
                    json::Error::new(concat!("varint out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! sint_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            int_json_impls!($t);
            fn write_bin(&self, out: &mut Vec<u8>) {
                // Zigzag so small magnitudes stay short.
                let v = *self as i128;
                bin::put_uvarint(out, ((v << 1) ^ (v >> 127)) as u128);
            }
        }
        impl Deserialize for $t {
            int_json_de!($t);
            fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
                let raw = input.uvarint()?;
                let v = ((raw >> 1) as i128) ^ -((raw & 1) as i128);
                <$t>::try_from(v).map_err(|_| {
                    json::Error::new(concat!("varint out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

uint_impls!(u8, u16, u32, u64, u128, usize);
sint_impls!(i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    let s = self.to_string();
                    out.push_str(&s);
                    // Keep the token a valid JSON number and round-trippable
                    // as a float.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            // Binary floats are exact IEEE bits — unlike JSON, non-finite
            // values round-trip.
            fn write_bin(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_bits().to_le_bytes());
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                if matches!(v, json::Value::Null) {
                    return Ok(<$t>::NAN);
                }
                let tok = v.num_token().ok_or_else(|| {
                    json::Error::new(concat!("expected number for ", stringify!($t)))
                })?;
                tok.parse::<$t>()
                    .map_err(|_| json::Error::new(format!("bad float `{tok}`")))
            }
            fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
                const WIDTH: usize = std::mem::size_of::<$t>();
                let bytes: [u8; WIDTH] = input
                    .take(WIDTH)?
                    .try_into()
                    .expect("take() returned the exact width");
                Ok(<$t>::from_le_bytes(bytes))
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
}

impl Deserialize for bool {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_bool().ok_or_else(|| json::Error::new("expected bool"))
    }
    fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
        match input.byte()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(json::Error::new(format!("bad bool byte {other}"))),
        }
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        json::push_string(out, self);
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        bin::put_bytes(out, self.as_bytes());
    }
}

impl Deserialize for String {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| json::Error::new("expected string"))
    }
    fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
        Ok(input.str_slice()?.to_string())
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        json::push_string(out, self);
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        bin::put_bytes(out, self.as_bytes());
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn write_json(&self, out: &mut String) {
        json::push_string(out, self);
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        bin::put_bytes(out, self.as_bytes());
    }
}

impl Deserialize for std::borrow::Cow<'_, str> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_str()
            .map(|s| std::borrow::Cow::Owned(s.to_string()))
            .ok_or_else(|| json::Error::new("expected string"))
    }
    fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
        Ok(std::borrow::Cow::Owned(input.str_slice()?.to_string()))
    }
}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        json::push_string(out, &self.to_string());
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        bin::put_uvarint(out, *self as u128);
    }
}

impl Deserialize for char {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| json::Error::new("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(json::Error::new("expected single-char string")),
        }
    }
    fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
        let cp = u32::try_from(input.uvarint()?)
            .map_err(|_| json::Error::new("char codepoint overflows u32"))?;
        char::from_u32(cp).ok_or_else(|| json::Error::new(format!("bad char codepoint {cp}")))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        (**self).write_bin(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.write_json(out),
        }
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.write_bin(out);
            }
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
    fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
        match input.byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::read_bin(input)?)),
            other => Err(json::Error::new(format!("bad option tag {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        self.as_slice().write_bin(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        bin::put_uvarint(out, self.len() as u128);
        for item in self {
            item.write_bin(out);
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| json::Error::new("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
    fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
        let n = input.count()?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(T::read_bin(input)?);
        }
        Ok(items)
    }
}

macro_rules! tuple_impls {
    ($( ($len:literal: $($t:ident . $idx:tt),+) )*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
            fn write_bin(&self, out: &mut Vec<u8>) {
                $( self.$idx.write_bin(out); )+
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| json::Error::new("expected array"))?;
                if arr.len() != $len {
                    return Err(json::Error::new(concat!(
                        "expected ", $len, "-element array"
                    )));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
            fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
                Ok(($($t::read_bin(input)?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (2: A.0, B.1)
    (3: A.0, B.1, C.2)
    (4: A.0, B.1, C.2, D.3)
    (5: A.0, B.1, C.2, D.3, E.4)
    (6: A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        match self {
            Ok(v) => {
                json::push_key(out, "Ok");
                v.write_json(out);
            }
            Err(e) => {
                json::push_key(out, "Err");
                e.write_json(out);
            }
        }
        out.push('}');
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        match self {
            Ok(v) => {
                out.push(0);
                v.write_bin(out);
            }
            Err(e) => {
                out.push(1);
                e.write_bin(out);
            }
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v.as_tagged() {
            Some(("Ok", inner)) => Ok(Ok(T::from_value(inner)?)),
            Some(("Err", inner)) => Ok(Err(E::from_value(inner)?)),
            _ => Err(json::Error::new("expected {\"Ok\": ..} or {\"Err\": ..}")),
        }
    }
    fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
        match input.byte()? {
            0 => Ok(Ok(T::read_bin(input)?)),
            1 => Ok(Err(E::read_bin(input)?)),
            other => Err(json::Error::new(format!("bad result tag {other}"))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        self.as_slice().write_bin(out);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| json::Error::new(format!("expected array of length {N}")))
    }
    fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
        let items: Vec<T> = Vec::read_bin(input)?;
        items
            .try_into()
            .map_err(|_| json::Error::new(format!("expected array of length {N}")))
    }
}

/// A type usable as a JSON object key. JSON keys are always strings, so
/// map keys need a string codec independent of their value encoding.
pub trait JsonKey: Sized {
    /// Render as an object key.
    fn to_json_key(&self) -> String;
    /// Parse back from an object key.
    fn from_json_key(s: &str) -> Result<Self, json::Error>;
}

impl JsonKey for String {
    fn to_json_key(&self) -> String {
        self.clone()
    }
    fn from_json_key(s: &str) -> Result<Self, json::Error> {
        Ok(s.to_string())
    }
}

macro_rules! int_keys {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_json_key(&self) -> String {
                self.to_string()
            }
            fn from_json_key(s: &str) -> Result<Self, json::Error> {
                s.parse().map_err(|_| {
                    json::Error::new(format!("bad integer key `{s}`"))
                })
            }
        }
    )*};
}

int_keys!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(out, &k.to_json_key());
            v.write_json(out);
        }
        out.push('}');
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        bin::put_uvarint(out, self.len() as u128);
        for (k, v) in self {
            bin::put_bytes(out, k.to_json_key().as_bytes());
            v.write_bin(out);
        }
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| json::Error::new("expected object"))?;
        obj.iter()
            .map(|(k, val)| Ok((K::from_json_key(k)?, V::from_value(val)?)))
            .collect()
    }
    fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
        let n = input.count()?;
        let mut map = std::collections::BTreeMap::new();
        for _ in 0..n {
            let k = K::from_json_key(input.str_slice()?)?;
            let v = V::read_bin(input)?;
            map.insert(k, v);
        }
        Ok(map)
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn write_json(&self, out: &mut String) {
        json::push_string(out, &self.to_string());
    }
    fn write_bin(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.octets());
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| json::Error::new("expected ip string"))?;
        s.parse()
            .map_err(|_| json::Error::new(format!("bad ipv4 address `{s}`")))
    }
    fn read_bin(input: &mut bin::Reader<'_>) -> Result<Self, json::Error> {
        let octets: [u8; 4] = input
            .take(4)?
            .try_into()
            .expect("take() returned exactly 4 bytes");
        Ok(std::net::Ipv4Addr::from(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut out = String::new();
        42u64.write_json(&mut out);
        assert_eq!(out, "42");
        let v = json::parse("42").unwrap();
        assert_eq!(u64::from_value(&v).unwrap(), 42);
    }

    #[test]
    fn string_escaping_roundtrips() {
        let s = "he said \"hi\\\"\n\tok".to_string();
        let mut out = String::new();
        s.write_json(&mut out);
        let v = json::parse(&out).unwrap();
        assert_eq!(String::from_value(&v).unwrap(), s);
    }

    #[test]
    fn u64_max_precision_preserved() {
        let x = u64::MAX;
        let mut out = String::new();
        x.write_json(&mut out);
        let v = json::parse(&out).unwrap();
        assert_eq!(u64::from_value(&v).unwrap(), x);
    }

    #[test]
    fn nested_containers() {
        let x: Vec<Option<(u32, String)>> = vec![None, Some((7, "x".into()))];
        let mut out = String::new();
        x.write_json(&mut out);
        let v = json::parse(&out).unwrap();
        let back: Vec<Option<(u32, String)>> = Vec::from_value(&v).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn pretty_printer_is_valid_json() {
        let v = json::parse("{\"a\":[1,2],\"b\":{\"c\":null}}").unwrap();
        let p = json::pretty(&v);
        assert_eq!(json::parse(&p).unwrap(), v);
    }

    /// Round-trip `value` through the binary codec and assert equality.
    fn bin_roundtrip<T: Serialize + Deserialize + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = bin::to_vec(&value);
        let back: T = bin::from_slice(&bytes).unwrap_or_else(|e| {
            panic!("decoding {value:?} from {bytes:02x?}: {e:?}");
        });
        assert_eq!(back, value, "through {bytes:02x?}");
    }

    #[test]
    fn bin_integer_extremes_roundtrip() {
        bin_roundtrip(0u8);
        bin_roundtrip(u8::MAX);
        bin_roundtrip(u16::MAX);
        bin_roundtrip(u32::MAX);
        bin_roundtrip(u64::MAX);
        bin_roundtrip(u128::MAX);
        bin_roundtrip(usize::MAX);
        bin_roundtrip(i8::MIN);
        bin_roundtrip(i8::MAX);
        bin_roundtrip(i64::MIN);
        bin_roundtrip(i64::MAX);
        bin_roundtrip(i128::MIN);
        bin_roundtrip(i128::MAX);
        bin_roundtrip(-1isize);
        bin_roundtrip(0i64);
    }

    #[test]
    fn bin_zigzag_keeps_small_magnitudes_small() {
        // Signed values near zero must stay one byte — the point of
        // zigzag over sign-extension.
        for v in [-64i64, -1, 0, 1, 63] {
            assert_eq!(bin::to_vec(&v).len(), 1, "{v}");
        }
    }

    #[test]
    fn bin_floats_roundtrip_bit_exact() {
        bin_roundtrip(0.0f64);
        bin_roundtrip(-0.0f64);
        bin_roundtrip(std::f64::consts::PI);
        bin_roundtrip(f64::MIN_POSITIVE);
        bin_roundtrip(f64::INFINITY);
        bin_roundtrip(f64::NEG_INFINITY);
        bin_roundtrip(f32::INFINITY);
        bin_roundtrip(1.5e-40f32); // subnormal
                                   // NaN != NaN, so compare bit patterns directly.
        let bytes = bin::to_vec(&f64::NAN);
        let back: f64 = bin::from_slice(&bytes).unwrap();
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn bin_strings_and_chars_roundtrip() {
        bin_roundtrip(String::new());
        bin_roundtrip("plain ascii".to_string());
        bin_roundtrip("ünïcódé — \u{1F980} \"quoted\\escaped\"\n".to_string());
        bin_roundtrip('a');
        bin_roundtrip('\u{1F980}');
        bin_roundtrip('\0');
    }

    #[test]
    fn bin_containers_roundtrip() {
        bin_roundtrip(Option::<u32>::None);
        bin_roundtrip(Some(7u32));
        bin_roundtrip(Vec::<u64>::new());
        bin_roundtrip(vec![1u64, u64::MAX, 0]);
        bin_roundtrip((true, -9i32, "t".to_string()));
        bin_roundtrip(Result::<u32, String>::Ok(5));
        bin_roundtrip(Result::<u32, String>::Err("boom".into()));
        bin_roundtrip([3u16, 1, 4]);
        let map: std::collections::BTreeMap<String, Vec<i64>> = [
            ("a".to_string(), vec![-1, 2]),
            ("b".to_string(), Vec::new()),
        ]
        .into_iter()
        .collect();
        bin_roundtrip(map);
        bin_roundtrip("10.20.30.40".parse::<std::net::Ipv4Addr>().unwrap());
        bin_roundtrip(vec![None, Some((u32::MAX, "nested".to_string()))]);
    }

    #[test]
    fn bin_truncation_is_a_typed_error() {
        // Every prefix of a valid encoding must decode to Err, never
        // panic or succeed (positional codecs have no delimiters to
        // resynchronise on).
        let full = bin::to_vec(&vec![(u64::MAX, "hello".to_string()), (0, String::new())]);
        for len in 0..full.len() {
            let r: Result<Vec<(u64, String)>, _> = bin::from_slice(&full[..len]);
            assert!(r.is_err(), "prefix of {len} bytes decoded");
        }
    }

    #[test]
    fn bin_trailing_bytes_rejected() {
        let mut bytes = bin::to_vec(&42u64);
        bytes.push(0);
        let r: Result<u64, _> = bin::from_slice(&bytes);
        assert!(r.is_err(), "trailing byte accepted");
    }

    #[test]
    fn bin_corrupt_lengths_never_overallocate() {
        // A length prefix claiming more elements than bytes remain must
        // fail before allocating, not abort on OOM.
        let mut bytes = Vec::new();
        bin::put_uvarint(&mut bytes, u64::MAX as u128);
        let r: Result<Vec<u8>, _> = bin::from_slice(&bytes);
        assert!(r.is_err());
        let r: Result<String, _> = bin::from_slice(&bytes);
        assert!(r.is_err());
    }

    #[test]
    fn bin_bool_rejects_non_boolean_bytes() {
        assert!(!bin::from_slice::<bool>(&[0]).unwrap());
        assert!(bin::from_slice::<bool>(&[1]).unwrap());
        assert!(bin::from_slice::<bool>(&[2]).is_err());
    }

    #[test]
    fn bin_uvarint_overflow_rejected() {
        // 19 continuation bytes exceeds the 128-bit accumulator.
        let bytes = [0xffu8; 19];
        let mut r = bin::Reader::new(&bytes);
        assert!(r.uvarint().is_err());
    }

    #[test]
    fn bin_default_methods_tunnel_json() {
        // A type relying on the default write_bin/read_bin (JSON
        // tunnelled as one length-prefixed string) must round-trip
        // through the same entry points as native binary impls.
        struct JsonOnly(u64);
        impl Serialize for JsonOnly {
            fn write_json(&self, out: &mut String) {
                self.0.write_json(out);
            }
        }
        impl Deserialize for JsonOnly {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                Ok(JsonOnly(u64::from_value(v)?))
            }
        }
        let bytes = bin::to_vec(&JsonOnly(u64::MAX));
        let back: JsonOnly = bin::from_slice(&bytes).unwrap();
        assert_eq!(back.0, u64::MAX);
    }
}
