//! Offline stand-in for `serde`, specialised to JSON.
//!
//! This workspace must build without network access, so the real serde is
//! unavailable. The codebase only ever serialises to / deserialises from
//! JSON (via `serde_json::{to_string, to_string_pretty, from_str}`), so the
//! generic `Serializer`/`Deserializer` machinery is replaced by two small
//! traits: [`Serialize`] writes compact JSON into a `String`, and
//! [`Deserialize`] reads from a parsed [`json::Value`] tree. The derive
//! macros (see `vendor/serde_derive`) emit serde-compatible shapes:
//! structs as objects, newtypes transparently, enums externally tagged.

pub use serde_derive::{Deserialize, Serialize};

/// Serialise `self` as compact JSON appended to `out`.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);
}

/// Reconstruct `Self` from a parsed JSON value.
pub trait Deserialize: Sized {
    /// Build `Self` from `v`, or explain why it has the wrong shape.
    fn from_value(v: &json::Value) -> Result<Self, json::Error>;
}

pub mod json {
    //! The JSON data model, parser, and printer behind the two traits.

    use std::fmt;

    /// A parse or shape error.
    #[derive(Debug, Clone)]
    pub struct Error {
        msg: String,
    }

    impl Error {
        /// An error carrying `msg`.
        pub fn new(msg: impl Into<String>) -> Error {
            Error { msg: msg.into() }
        }
    }

    impl fmt::Display for Error {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "json error: {}", self.msg)
        }
    }

    impl std::error::Error for Error {}

    /// A parsed JSON document. Numbers keep their raw token so integer
    /// precision is never lost through an f64 round-trip.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// A number, as its original token text.
        Num(String),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object (insertion-ordered).
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// The string payload, if this is a JSON string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The boolean payload, if any.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        /// The array payload, if any.
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// The object payload, if any.
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(o) => Some(o),
                _ => None,
            }
        }

        /// A single-key object viewed as `(tag, inner)` — the externally
        /// tagged enum encoding.
        pub fn as_tagged(&self) -> Option<(&str, &Value)> {
            match self {
                Value::Obj(o) if o.len() == 1 => Some((o[0].0.as_str(), &o[0].1)),
                _ => None,
            }
        }

        /// The raw number token, if this is a number.
        pub fn num_token(&self) -> Option<&str> {
            match self {
                Value::Num(t) => Some(t),
                _ => None,
            }
        }
    }

    /// Look up `name` in an object and deserialise it.
    pub fn field<T: crate::Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v),
            None => Err(Error::new(format!("missing field `{name}`"))),
        }
    }

    /// Like [`field`], but an absent key is `Ok(None)` instead of an
    /// error — the lookup behind `#[serde(default)]` fields.
    pub fn opt_field<T: crate::Deserialize>(
        obj: &[(String, Value)],
        name: &str,
    ) -> Result<Option<T>, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v).map(Some),
            None => Ok(None),
        }
    }

    /// Append a JSON string literal (with escaping).
    pub fn push_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Append an object key and its separating colon.
    pub fn push_key(out: &mut String, key: &str) {
        push_string(out, key);
        out.push(':');
    }

    // ------------------------------------------------------------- parser

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn skip_ws(&mut self) {
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), Error> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error::new(format!(
                    "expected '{}' at byte {}",
                    b as char, self.pos
                )))
            }
        }

        fn parse_value(&mut self) -> Result<Value, Error> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.parse_object(),
                Some(b'[') => self.parse_array(),
                Some(b'"') => Ok(Value::Str(self.parse_string()?)),
                Some(b't') => self.parse_lit("true", Value::Bool(true)),
                Some(b'f') => self.parse_lit("false", Value::Bool(false)),
                Some(b'n') => self.parse_lit("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.parse_number(),
                other => Err(Error::new(format!(
                    "unexpected input {other:?} at byte {}",
                    self.pos
                ))),
            }
        }

        fn parse_lit(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(Error::new(format!("bad literal at byte {}", self.pos)))
            }
        }

        fn parse_number(&mut self) -> Result<Value, Error> {
            let start = self.pos;
            while let Some(b) = self.peek() {
                match b {
                    b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                    _ => break,
                }
            }
            let tok = std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|_| Error::new("invalid utf8 in number"))?;
            // Validate it parses as a float at minimum.
            tok.parse::<f64>()
                .map_err(|_| Error::new(format!("bad number token `{tok}`")))?;
            Ok(Value::Num(tok.to_string()))
        }

        fn parse_string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut s = String::new();
            loop {
                let rest = &self.bytes[self.pos..];
                let text =
                    std::str::from_utf8(rest).map_err(|_| Error::new("invalid utf8 in string"))?;
                let mut chars = text.char_indices();
                match chars.next() {
                    None => return Err(Error::new("unterminated string")),
                    Some((_, '"')) => {
                        self.pos += 1;
                        return Ok(s);
                    }
                    Some((_, '\\')) => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'/') => s.push('/'),
                            Some(b'n') => s.push('\n'),
                            Some(b'r') => s.push('\r'),
                            Some(b't') => s.push('\t'),
                            Some(b'b') => s.push('\u{8}'),
                            Some(b'f') => s.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .ok_or_else(|| Error::new("short \\u escape"))?;
                                let hex = std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?;
                                let cp = u32::from_str_radix(hex, 16)
                                    .map_err(|_| Error::new("bad \\u escape"))?;
                                // Surrogate pairs are not produced by our
                                // printer; reject them on input.
                                let c = char::from_u32(cp)
                                    .ok_or_else(|| Error::new("bad \\u codepoint"))?;
                                s.push(c);
                                self.pos += 4;
                            }
                            other => return Err(Error::new(format!("bad escape {other:?}"))),
                        }
                        self.pos += 1;
                    }
                    Some((i, c)) => {
                        s.push(c);
                        self.pos += c.len_utf8() + i;
                    }
                }
            }
        }

        fn parse_array(&mut self) -> Result<Value, Error> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                items.push(self.parse_value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    other => return Err(Error::new(format!("expected ',' or ']', got {other:?}"))),
                }
            }
        }

        fn parse_object(&mut self) -> Result<Value, Error> {
            self.expect(b'{')?;
            let mut entries = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(entries));
            }
            loop {
                self.skip_ws();
                let key = self.parse_string()?;
                self.skip_ws();
                self.expect(b':')?;
                let value = self.parse_value()?;
                entries.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(entries));
                    }
                    other => {
                        return Err(Error::new(format!("expected ',' or '}}', got {other:?}")))
                    }
                }
            }
        }
    }

    /// Parse a JSON document.
    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.parse_value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new("trailing garbage after JSON value"));
        }
        Ok(v)
    }

    /// Pretty-print a parsed value with two-space indentation.
    pub fn pretty(v: &Value) -> String {
        let mut out = String::new();
        pretty_into(v, 0, &mut out);
        out
    }

    fn pretty_into(v: &Value, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let pad_in = "  ".repeat(indent + 1);
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(t) => out.push_str(t),
            Value::Str(s) => push_string(out, s),
            Value::Arr(items) if items.is_empty() => out.push_str("[]"),
            Value::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_in);
                    pretty_into(item, indent + 1, out);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Value::Obj(entries) if entries.is_empty() => out.push_str("{}"),
            Value::Obj(entries) => {
                out.push_str("{\n");
                for (i, (k, val)) in entries.iter().enumerate() {
                    out.push_str(&pad_in);
                    push_string(out, k);
                    out.push_str(": ");
                    pretty_into(val, indent + 1, out);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

// ------------------------------------------------------ primitive impls

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                let tok = v.num_token().ok_or_else(|| {
                    json::Error::new(concat!("expected number for ", stringify!($t)))
                })?;
                tok.parse::<$t>().map_err(|_| {
                    json::Error::new(format!(
                        "number `{tok}` out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    let s = self.to_string();
                    out.push_str(&s);
                    // Keep the token a valid JSON number and round-trippable
                    // as a float.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                if matches!(v, json::Value::Null) {
                    return Ok(<$t>::NAN);
                }
                let tok = v.num_token().ok_or_else(|| {
                    json::Error::new(concat!("expected number for ", stringify!($t)))
                })?;
                tok.parse::<$t>()
                    .map_err(|_| json::Error::new(format!("bad float `{tok}`")))
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

impl Deserialize for bool {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_bool().ok_or_else(|| json::Error::new("expected bool"))
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        json::push_string(out, self);
    }
}

impl Deserialize for String {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| json::Error::new("expected string"))
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        json::push_string(out, self);
    }
}

impl Serialize for std::borrow::Cow<'_, str> {
    fn write_json(&self, out: &mut String) {
        json::push_string(out, self);
    }
}

impl Deserialize for std::borrow::Cow<'_, str> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        v.as_str()
            .map(|s| std::borrow::Cow::Owned(s.to_string()))
            .ok_or_else(|| json::Error::new("expected string"))
    }
}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        json::push_string(out, &self.to_string());
    }
}

impl Deserialize for char {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| json::Error::new("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(json::Error::new("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.write_json(out),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v {
            json::Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, item) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            item.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let arr = v
            .as_array()
            .ok_or_else(|| json::Error::new("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

macro_rules! tuple_impls {
    ($( ($len:literal: $($t:ident . $idx:tt),+) )*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &json::Value) -> Result<Self, json::Error> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| json::Error::new("expected array"))?;
                if arr.len() != $len {
                    return Err(json::Error::new(concat!(
                        "expected ", $len, "-element array"
                    )));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (2: A.0, B.1)
    (3: A.0, B.1, C.2)
    (4: A.0, B.1, C.2, D.3)
    (5: A.0, B.1, C.2, D.3, E.4)
    (6: A.0, B.1, C.2, D.3, E.4, F.5)
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        match self {
            Ok(v) => {
                json::push_key(out, "Ok");
                v.write_json(out);
            }
            Err(e) => {
                json::push_key(out, "Err");
                e.write_json(out);
            }
        }
        out.push('}');
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        match v.as_tagged() {
            Some(("Ok", inner)) => Ok(Ok(T::from_value(inner)?)),
            Some(("Err", inner)) => Ok(Err(E::from_value(inner)?)),
            _ => Err(json::Error::new("expected {\"Ok\": ..} or {\"Err\": ..}")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| json::Error::new(format!("expected array of length {N}")))
    }
}

/// A type usable as a JSON object key. JSON keys are always strings, so
/// map keys need a string codec independent of their value encoding.
pub trait JsonKey: Sized {
    /// Render as an object key.
    fn to_json_key(&self) -> String;
    /// Parse back from an object key.
    fn from_json_key(s: &str) -> Result<Self, json::Error>;
}

impl JsonKey for String {
    fn to_json_key(&self) -> String {
        self.clone()
    }
    fn from_json_key(s: &str) -> Result<Self, json::Error> {
        Ok(s.to_string())
    }
}

macro_rules! int_keys {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_json_key(&self) -> String {
                self.to_string()
            }
            fn from_json_key(s: &str) -> Result<Self, json::Error> {
                s.parse().map_err(|_| {
                    json::Error::new(format!("bad integer key `{s}`"))
                })
            }
        }
    )*};
}

int_keys!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_key(out, &k.to_json_key());
            v.write_json(out);
        }
        out.push('}');
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| json::Error::new("expected object"))?;
        obj.iter()
            .map(|(k, val)| Ok((K::from_json_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl Serialize for std::net::Ipv4Addr {
    fn write_json(&self, out: &mut String) {
        json::push_string(out, &self.to_string());
    }
}

impl Deserialize for std::net::Ipv4Addr {
    fn from_value(v: &json::Value) -> Result<Self, json::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| json::Error::new("expected ip string"))?;
        s.parse()
            .map_err(|_| json::Error::new(format!("bad ipv4 address `{s}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut out = String::new();
        42u64.write_json(&mut out);
        assert_eq!(out, "42");
        let v = json::parse("42").unwrap();
        assert_eq!(u64::from_value(&v).unwrap(), 42);
    }

    #[test]
    fn string_escaping_roundtrips() {
        let s = "he said \"hi\\\"\n\tok".to_string();
        let mut out = String::new();
        s.write_json(&mut out);
        let v = json::parse(&out).unwrap();
        assert_eq!(String::from_value(&v).unwrap(), s);
    }

    #[test]
    fn u64_max_precision_preserved() {
        let x = u64::MAX;
        let mut out = String::new();
        x.write_json(&mut out);
        let v = json::parse(&out).unwrap();
        assert_eq!(u64::from_value(&v).unwrap(), x);
    }

    #[test]
    fn nested_containers() {
        let x: Vec<Option<(u32, String)>> = vec![None, Some((7, "x".into()))];
        let mut out = String::new();
        x.write_json(&mut out);
        let v = json::parse(&out).unwrap();
        let back: Vec<Option<(u32, String)>> = Vec::from_value(&v).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn pretty_printer_is_valid_json() {
        let v = json::parse("{\"a\":[1,2],\"b\":{\"c\":null}}").unwrap();
        let p = json::pretty(&v);
        assert_eq!(json::parse(&p).unwrap(), v);
    }
}
