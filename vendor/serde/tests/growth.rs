//! Schema-growth attributes: `#[serde(default)]` / `#[serde(default =
//! "path")]` make a field optional on the wire, and
//! `#[serde(skip_serializing_if = "path")]` suppresses it on output when
//! the predicate holds. Together they let a struct grow fields without
//! changing the bytes of documents that never set them — the contract the
//! workspace's golden files rely on.
//!
//! These live in an integration test (not the crate's unit tests) because
//! the derive expands to `::serde::...` paths, which only resolve where
//! `serde` is an external crate.

use serde::json;
use serde::{Deserialize, Serialize};

fn yes() -> bool {
    true
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct Grown {
    id: u32,
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    flag: bool,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    extra: Option<u32>,
    #[serde(default = "yes")]
    enabled: bool,
}

#[test]
fn default_fields_are_optional_on_the_wire() {
    // An old document that predates every grown field still parses, with
    // `default = "path"` calling the named fn for the missing value.
    let v = json::parse("{\"id\":7}").unwrap();
    let g = Grown::from_value(&v).unwrap();
    assert_eq!(
        g,
        Grown {
            id: 7,
            flag: false,
            extra: None,
            enabled: true
        }
    );
}

#[test]
fn skip_serializing_if_preserves_old_bytes() {
    // Unset grown fields vanish from output, so pre-growth documents keep
    // their exact bytes; set fields appear and round-trip.
    let quiet = Grown {
        id: 7,
        flag: false,
        extra: None,
        enabled: true,
    };
    let mut out = String::new();
    quiet.write_json(&mut out);
    assert_eq!(out, "{\"id\":7,\"enabled\":true}");

    let loud = Grown {
        id: 7,
        flag: true,
        extra: Some(9),
        enabled: false,
    };
    out.clear();
    loud.write_json(&mut out);
    assert_eq!(
        out,
        "{\"id\":7,\"flag\":true,\"extra\":9,\"enabled\":false}"
    );
    let back = Grown::from_value(&json::parse(&out).unwrap()).unwrap();
    assert_eq!(back, loud);
}
