//! The coordination server: task scheduling (paper §5.3).
//!
//! "After generating measurement tasks, the coordination server must
//! decide which task to schedule on each client. Task scheduling serves
//! two purposes. First, it enables clients to run measurements that meet
//! their restrictions … Second, intelligent task scheduling enables
//! Encore to … draw conclusions by comparing measurements between
//! clients, countries, and ISPs."
//!
//! Three strategies are provided:
//!
//! * [`SchedulingStrategy::Random`] — uniform over compatible tasks.
//! * [`SchedulingStrategy::RoundRobin`] — cycles the pool for even
//!   coverage.
//! * [`SchedulingStrategy::CoordinatedBursts`] — the §5.3 example: "if
//!   100 clients measure the same URL within 60 seconds of each other",
//!   regional failures stand out sharply; all clients in one time window
//!   receive the same task.

use crate::tasks::{MeasurementId, MeasurementTask, TaskSpec};
use browser::Engine;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng, SimTime};

/// What the coordination server knows about a requesting client (from
/// its User-Agent and connection).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientProfile {
    /// Browser engine (drives the Chrome-only script-task constraint).
    pub engine: Engine,
}

/// Task-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SchedulingStrategy {
    /// Uniform random over compatible tasks.
    Random,
    /// Cycle through the pool.
    RoundRobin,
    /// Everyone measures the same target within each window.
    CoordinatedBursts {
        /// Window length (paper example: 60 seconds).
        window: SimDuration,
    },
}

/// The coordination server.
pub struct CoordinationServer {
    /// Task templates (each assignment stamps a fresh measurement ID).
    pool: Vec<TaskSpec>,
    strategy: SchedulingStrategy,
    next_assignment_id: u64,
    rr_cursor: usize,
    /// Per-template assignment counts (same order as the pool).
    assignments: Vec<u64>,
    /// Reused scratch for the per-pick compatible-index list, so
    /// steady-state task assignment performs no heap allocation.
    compat_scratch: Vec<usize>,
}

impl CoordinationServer {
    /// Server over a pool of generated tasks.
    pub fn new(tasks: Vec<MeasurementTask>, strategy: SchedulingStrategy) -> CoordinationServer {
        let pool: Vec<TaskSpec> = tasks.into_iter().map(|t| t.spec).collect();
        let assignments = vec![0; pool.len()];
        CoordinationServer {
            pool,
            strategy,
            next_assignment_id: 1,
            rr_cursor: 0,
            assignments,
            compat_scratch: Vec::new(),
        }
    }

    /// Replace the task pool (e.g. after a daily pipeline run, §5.2:
    /// "this procedure happens prior to interaction with clients (e.g.,
    /// once per day)").
    pub fn set_pool(&mut self, tasks: Vec<MeasurementTask>) {
        self.pool = tasks.into_iter().map(|t| t.spec).collect();
        self.assignments = vec![0; self.pool.len()];
        self.rr_cursor = 0;
    }

    /// Pool size.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// The strategy currently in force.
    pub fn strategy(&self) -> SchedulingStrategy {
        self.strategy
    }

    /// Swap the scheduling strategy mid-run — the re-prioritisation hook
    /// the world engine fires as a scheduled event (e.g. switching to
    /// [`SchedulingStrategy::CoordinatedBursts`] the moment a suspected
    /// block appears, so the next window's clients all probe the same
    /// target). Assignment counters and the round-robin cursor are
    /// preserved: re-prioritisation changes *future* picks only.
    pub fn set_strategy(&mut self, strategy: SchedulingStrategy) {
        self.strategy = strategy;
    }

    /// Assignment counts per pool entry.
    pub fn assignment_counts(&self) -> &[u64] {
        &self.assignments
    }

    /// Pick the next task for a client, or `None` when nothing in the
    /// pool is compatible. Each call mints a fresh measurement ID — the
    /// server "generates a measurement task specific to the client
    /// on-the-fly" (§5.4).
    pub fn next_task(
        &mut self,
        profile: ClientProfile,
        now: SimTime,
        rng: &mut SimRng,
    ) -> Option<MeasurementTask> {
        if self.pool.is_empty() {
            return None;
        }
        let mut compatible = std::mem::take(&mut self.compat_scratch);
        compatible.clear();
        compatible
            .extend((0..self.pool.len()).filter(|&i| self.pool[i].compatible_with(profile.engine)));
        if compatible.is_empty() {
            self.compat_scratch = compatible;
            return None;
        }
        let chosen = match self.strategy {
            SchedulingStrategy::Random => compatible[rng.index(compatible.len())],
            SchedulingStrategy::RoundRobin => {
                // Advance the cursor to the next compatible entry.
                let mut pick = None;
                for step in 0..self.pool.len() {
                    let idx = (self.rr_cursor + step) % self.pool.len();
                    if compatible.contains(&idx) {
                        pick = Some(idx);
                        self.rr_cursor = idx + 1;
                        break;
                    }
                }
                pick.expect("compatible is non-empty")
            }
            SchedulingStrategy::CoordinatedBursts { window } => {
                // Deterministic function of the window index: everyone in
                // the same window measures the same (compatible) target.
                let w = if window.as_micros() == 0 {
                    0
                } else {
                    now.as_micros() / window.as_micros()
                };
                compatible[(w % compatible.len() as u64) as usize]
            }
        };
        self.compat_scratch = compatible;
        self.assignments[chosen] += 1;
        let id = MeasurementId(self.next_assignment_id);
        self.next_assignment_id += 1;
        Some(MeasurementTask {
            id,
            spec: self.pool[chosen].clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::IFRAME_CACHE_THRESHOLD;

    fn pool() -> Vec<MeasurementTask> {
        let mk = |i: u64, spec: TaskSpec| MeasurementTask {
            id: MeasurementId(i),
            spec,
        };
        vec![
            mk(
                0,
                TaskSpec::Image {
                    url: "http://a.com/favicon.ico".into(),
                },
            ),
            mk(
                1,
                TaskSpec::Script {
                    url: "http://b.com/lib.js".into(),
                },
            ),
            mk(
                2,
                TaskSpec::Iframe {
                    page_url: "http://c.com/p".into(),
                    probe_image_url: "http://c.com/i.png".into(),
                    threshold: IFRAME_CACHE_THRESHOLD,
                },
            ),
        ]
    }

    fn chrome() -> ClientProfile {
        ClientProfile {
            engine: Engine::Chrome,
        }
    }

    fn firefox() -> ClientProfile {
        ClientProfile {
            engine: Engine::Firefox,
        }
    }

    #[test]
    fn fresh_ids_per_assignment() {
        let mut s = CoordinationServer::new(pool(), SchedulingStrategy::RoundRobin);
        let mut rng = SimRng::new(1);
        let a = s.next_task(chrome(), SimTime::ZERO, &mut rng).unwrap();
        let b = s.next_task(chrome(), SimTime::ZERO, &mut rng).unwrap();
        assert_ne!(a.id, b.id);
    }

    #[test]
    fn script_tasks_never_go_to_non_chrome() {
        let mut s = CoordinationServer::new(pool(), SchedulingStrategy::Random);
        let mut rng = SimRng::new(2);
        for _ in 0..200 {
            let t = s.next_task(firefox(), SimTime::ZERO, &mut rng).unwrap();
            assert!(t.spec.compatible_with(Engine::Firefox));
        }
    }

    #[test]
    fn round_robin_cycles_evenly_for_chrome() {
        let mut s = CoordinationServer::new(pool(), SchedulingStrategy::RoundRobin);
        let mut rng = SimRng::new(3);
        for _ in 0..30 {
            s.next_task(chrome(), SimTime::ZERO, &mut rng);
        }
        assert_eq!(s.assignment_counts(), &[10, 10, 10]);
    }

    #[test]
    fn round_robin_skips_incompatible() {
        let mut s = CoordinationServer::new(pool(), SchedulingStrategy::RoundRobin);
        let mut rng = SimRng::new(3);
        for _ in 0..20 {
            s.next_task(firefox(), SimTime::ZERO, &mut rng);
        }
        // Script slot (index 1) untouched; the other two split evenly.
        assert_eq!(s.assignment_counts()[1], 0);
        assert_eq!(s.assignment_counts()[0], 10);
        assert_eq!(s.assignment_counts()[2], 10);
    }

    #[test]
    fn coordinated_bursts_same_task_within_window() {
        let mut s = CoordinationServer::new(
            pool(),
            SchedulingStrategy::CoordinatedBursts {
                window: SimDuration::from_secs(60),
            },
        );
        let mut rng = SimRng::new(4);
        let t0 = SimTime::from_secs(10);
        let urls: std::collections::BTreeSet<String> = (0..50)
            .map(|i| {
                s.next_task(chrome(), t0 + SimDuration::from_millis(i), &mut rng)
                    .unwrap()
                    .spec
                    .target_url()
                    .to_string()
            })
            .collect();
        assert_eq!(urls.len(), 1, "one target per window");
        // A later window picks a different target eventually.
        let later = s
            .next_task(chrome(), SimTime::from_secs(70), &mut rng)
            .unwrap();
        let first = urls.into_iter().next().unwrap();
        assert_ne!(later.spec.target_url(), first);
    }

    #[test]
    fn empty_pool_returns_none() {
        let mut s = CoordinationServer::new(vec![], SchedulingStrategy::Random);
        let mut rng = SimRng::new(5);
        assert!(s.next_task(chrome(), SimTime::ZERO, &mut rng).is_none());
    }

    #[test]
    fn all_incompatible_returns_none() {
        let only_script = vec![MeasurementTask {
            id: MeasurementId(0),
            spec: TaskSpec::Script {
                url: "http://b.com/x.js".into(),
            },
        }];
        let mut s = CoordinationServer::new(only_script, SchedulingStrategy::Random);
        let mut rng = SimRng::new(6);
        assert!(s.next_task(firefox(), SimTime::ZERO, &mut rng).is_none());
        assert!(s.next_task(chrome(), SimTime::ZERO, &mut rng).is_some());
    }

    #[test]
    fn set_strategy_reprioritizes_future_picks_only() {
        let mut s = CoordinationServer::new(pool(), SchedulingStrategy::RoundRobin);
        let mut rng = SimRng::new(8);
        for _ in 0..3 {
            s.next_task(chrome(), SimTime::ZERO, &mut rng);
        }
        assert_eq!(s.assignment_counts(), &[1, 1, 1]);
        assert_eq!(s.strategy(), SchedulingStrategy::RoundRobin);

        s.set_strategy(SchedulingStrategy::CoordinatedBursts {
            window: SimDuration::from_secs(60),
        });
        // Counters survive the swap; every pick in one window now lands
        // on a single target.
        let t = SimTime::from_secs(30);
        let urls: std::collections::BTreeSet<String> = (0..10)
            .map(|_| {
                s.next_task(chrome(), t, &mut rng)
                    .unwrap()
                    .spec
                    .target_url()
                    .to_string()
            })
            .collect();
        assert_eq!(urls.len(), 1);
        assert_eq!(s.assignment_counts().iter().sum::<u64>(), 13);
    }

    #[test]
    fn set_pool_resets_counters() {
        let mut s = CoordinationServer::new(pool(), SchedulingStrategy::RoundRobin);
        let mut rng = SimRng::new(7);
        s.next_task(chrome(), SimTime::ZERO, &mut rng);
        s.set_pool(pool()[..1].to_vec());
        assert_eq!(s.pool_len(), 1);
        assert_eq!(s.assignment_counts(), &[0]);
    }
}
