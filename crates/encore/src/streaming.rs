//! Bounded-memory streaming analytics for the collection server.
//!
//! The paper's deployment ingested measurements from web-scale traffic;
//! this module provides the constant-memory counterparts of the exact
//! in-memory record log so the reproduction can be driven at 10⁶–10⁸
//! visits without the analytics state growing with visit count:
//!
//! * [`CountMinSketch`] — conservative-update count-min sketch for
//!   per-URL / per-origin tallies. Rows hash with
//!   [`sim_core::seeded_hash`], so two sketches built from the same
//!   seed hash identically on every shard and merge element-wise.
//! * [`ReservoirSample`] — a deterministic uniform sample of the
//!   record stream in the priority-tag (bottom-k) formulation of
//!   Vitter's Algorithm R: each record draws a `u64` priority from a
//!   split [`sim_core::SimRng`] stream and the sample keeps the `k`
//!   smallest. Union-and-truncate merge is associative and
//!   commutative with the empty sample as identity, which is what
//!   lets shards sample independently and fold losslessly.
//! * [`WindowCells`] — the per-window `(domain, country) → (n, x)`
//!   success matrix the §7.2 detector consumes, folded online as
//!   submissions arrive and closed as sim time passes, so detector
//!   input is O(windows × pairs) instead of O(records).
//! * [`IngestQueue`] + [`DropCounters`] — explicit bounded ingest with
//!   per-cause drop accounting. When the queue is full the server sheds
//!   with a `503` instead of buffering unboundedly, mirroring the
//!   near-source shedding model the congestion layer (PR 7) uses for
//!   transit links; queue-full drops of congestion-flagged submissions
//!   are accounted separately so the two signals can be correlated.
//!
//! Everything here is deterministic: hashing is seeded, priorities come
//! from labelled RNG forks, and all merge operations are
//! order-insensitive. Exact mode never touches this module.

use crate::collection::{canonical_cmp, StoredMeasurement};
use netsim::geo::CountryCode;
use serde::{Deserialize, Serialize};
use sim_core::{seeded_hash, SimDuration, SimTime};

/// Knobs for the opt-in streaming collection mode.
///
/// The record-filtering knobs (`exclude_crawlers`, `max_per_ip`,
/// `discount_congestion`) must match the [`crate::inference::DetectorConfig`]
/// the verdicts will be judged with, because streaming applies them at
/// ingest time (the raw records are gone by detection time). The
/// defaults mirror `DetectorConfig::default()`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// Detection window; must equal the rollup cadence so the engine
    /// can close windows as rollups fire.
    pub window: SimDuration,
    /// Reservoir capacity (records kept for spot-checking / reporting).
    pub reservoir: u64,
    /// Count-min sketch rows.
    pub sketch_depth: u32,
    /// Count-min sketch counters per row (error bound ε ≈ e / width).
    pub sketch_width: u32,
    /// Ingest queue capacity; submissions arriving while `pending`
    /// is at capacity are shed with a `503`.
    pub queue_capacity: u64,
    /// Queue drain rate (submissions per simulated second).
    pub drain_per_sec: u64,
    /// Drop exact wire-duplicate submissions within an open window.
    pub dedup: bool,
    /// Skip crawler user-agents at ingest (mirrors the detector knob).
    pub exclude_crawlers: bool,
    /// First-k-per-(domain, ip) cap per window (mirrors the detector knob).
    pub max_per_ip: Option<u64>,
    /// Skip congestion-flagged failures at ingest (mirrors the detector knob).
    pub discount_congestion: bool,
}

impl Default for StreamingConfig {
    fn default() -> StreamingConfig {
        StreamingConfig {
            window: SimDuration::from_days(1),
            reservoir: 512,
            sketch_depth: 4,
            sketch_width: 1024,
            queue_capacity: 4096,
            drain_per_sec: 1024,
            dedup: true,
            exclude_crawlers: true,
            max_per_ip: Some(10),
            discount_congestion: true,
        }
    }
}

impl StreamingConfig {
    /// Default configuration with the given detection window.
    pub fn with_window(window: SimDuration) -> StreamingConfig {
        StreamingConfig {
            window,
            ..StreamingConfig::default()
        }
    }
}

/// Conservative-update count-min sketch with deterministic seeded rows.
///
/// Estimates never under-count: `estimate(k) ≥ Σ add(k, ·)`, both for a
/// single sketch and after any sequence of [`merge`](Self::merge)s
/// (element-wise addition preserves the invariant because
/// `min_j (a_j + b_j) ≥ min_j a_j + min_j b_j`). Over-count is bounded
/// by ε·N with ε ≈ e/width for all but a δ ≈ exp(−depth) fraction of
/// keys; conservative update (raise each row only to the new estimate,
/// not by the increment) tightens that substantially in practice.
///
/// Keys live in small namespaces (one byte) so one sketch can carry
/// several logical tallies — the collection server uses
/// [`NS_URL`](Self::NS_URL) for target URLs and
/// [`NS_ORIGIN`](Self::NS_ORIGIN) for submitting origin pages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountMinSketch {
    depth: u32,
    width: u32,
    seed: u64,
    /// Total count added across all keys (the N in the ε·N bound).
    items: u64,
    /// Row-major `depth × width` counters.
    counters: Vec<u64>,
}

impl CountMinSketch {
    /// Namespace for per-target-URL tallies.
    pub const NS_URL: u8 = b'u';
    /// Namespace for per-origin (submitting page) tallies.
    pub const NS_ORIGIN: u8 = b'o';

    /// New empty sketch. Panics if `depth` or `width` is zero.
    pub fn new(depth: u32, width: u32, seed: u64) -> CountMinSketch {
        assert!(depth > 0 && width > 0, "sketch dimensions must be nonzero");
        CountMinSketch {
            depth,
            width,
            seed,
            items: 0,
            counters: vec![0; depth as usize * width as usize],
        }
    }

    fn row_index(&self, row: u32, ns: u8, key: &[u8]) -> usize {
        // Fold the row number and namespace into the seed so each row —
        // and each namespace — is an independent hash function.
        let salt = self.seed
            ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(row) + 1)
            ^ (u64::from(ns) << 56);
        let h = seeded_hash(salt, key);
        row as usize * self.width as usize + (h % u64::from(self.width)) as usize
    }

    /// Add `count` occurrences of `key` in namespace `ns`
    /// (conservative update).
    pub fn add_ns(&mut self, ns: u8, key: &[u8], count: u64) {
        self.items = self.items.saturating_add(count);
        let target = self.estimate_ns(ns, key).saturating_add(count);
        for row in 0..self.depth {
            let idx = self.row_index(row, ns, key);
            if self.counters[idx] < target {
                self.counters[idx] = target;
            }
        }
    }

    /// Point estimate for `key` in namespace `ns` (min over rows).
    pub fn estimate_ns(&self, ns: u8, key: &[u8]) -> u64 {
        (0..self.depth)
            .map(|row| self.counters[self.row_index(row, ns, key)])
            .min()
            .expect("depth > 0")
    }

    /// Add in the default namespace.
    pub fn add(&mut self, key: &[u8], count: u64) {
        self.add_ns(0, key, count);
    }

    /// Estimate in the default namespace.
    pub fn estimate(&self, key: &[u8]) -> u64 {
        self.estimate_ns(0, key)
    }

    /// Total count added across all keys and namespaces.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Sketch width (counters per row).
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Element-wise merge. Panics unless both sketches share dimensions
    /// and seed (identical row hash functions are what make the merged
    /// estimate sound).
    pub fn merge(&mut self, other: &CountMinSketch) {
        assert!(
            self.depth == other.depth && self.width == other.width && self.seed == other.seed,
            "count-min merge requires identical dimensions and seed"
        );
        self.items = self.items.saturating_add(other.items);
        for (c, o) in self.counters.iter_mut().zip(&other.counters) {
            *c = c.saturating_add(*o);
        }
    }

    /// Resident bytes of the counter array.
    pub fn resident_bytes(&self) -> usize {
        self.counters.len() * std::mem::size_of::<u64>() + std::mem::size_of::<CountMinSketch>()
    }
}

/// One sampled record with its priority tag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReservoirEntry {
    /// Uniform `u64` priority drawn when the record was ingested; the
    /// sample keeps the `capacity` smallest across all shards.
    pub priority: u64,
    /// The sampled record.
    pub record: StoredMeasurement,
}

/// Deterministic uniform sample in the mergeable bottom-k formulation
/// of Vitter's Algorithm R.
///
/// Every ingested record draws one priority from a split RNG stream;
/// the sample keeps the `capacity` records with the smallest
/// priorities (ties broken by the canonical record order). Because
/// "bottom k of the union" is associative and commutative, per-shard
/// samples merge into exactly the sample a single server would have
/// drawn, and the empty sample is the identity.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReservoirSample {
    /// Maximum entries retained.
    pub capacity: u64,
    /// Total records offered (the sample's weight: each entry stands
    /// for `seen / len` records).
    pub seen: u64,
    /// Retained entries, sorted ascending by `(priority, record)`.
    pub entries: Vec<ReservoirEntry>,
}

fn entry_order(a: &ReservoirEntry, b: &ReservoirEntry) -> std::cmp::Ordering {
    a.priority
        .cmp(&b.priority)
        .then_with(|| canonical_cmp(&a.record, &b.record))
}

impl ReservoirSample {
    /// New empty sample retaining at most `capacity` records.
    pub fn new(capacity: u64) -> ReservoirSample {
        ReservoirSample {
            capacity,
            seen: 0,
            entries: Vec::new(),
        }
    }

    /// Whether a record with this priority would currently be admitted
    /// (callers use this to skip materialising records that would be
    /// rejected anyway).
    pub fn would_admit(&self, priority: u64) -> bool {
        if (self.entries.len() as u64) < self.capacity {
            return true;
        }
        match self.entries.last() {
            Some(max) => priority < max.priority,
            None => false,
        }
    }

    /// Offer one record. `seen` always advances; the record is retained
    /// only if its priority lands in the bottom `capacity`.
    pub fn offer(&mut self, priority: u64, record: StoredMeasurement) {
        self.seen += 1;
        if !self.would_admit(priority) {
            return;
        }
        let entry = ReservoirEntry { priority, record };
        let at = self
            .entries
            .partition_point(|e| entry_order(e, &entry) == std::cmp::Ordering::Less);
        self.entries.insert(at, entry);
        self.entries.truncate(self.capacity as usize);
    }

    /// Associative, commutative merge: union, re-sort, keep bottom
    /// `max(capacity)`.
    pub fn merge(&mut self, other: ReservoirSample) {
        self.capacity = self.capacity.max(other.capacity);
        self.seen += other.seen;
        self.entries.extend(other.entries);
        self.entries.sort_by(entry_order);
        self.entries.truncate(self.capacity as usize);
    }

    /// Sampled records in canonical order.
    pub fn records(&self) -> impl Iterator<Item = &StoredMeasurement> {
        self.entries.iter().map(|e| &e.record)
    }

    /// Retained entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the sample holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-cause drop accounting for the bounded ingest path.
///
/// | cause                  | meaning                                              |
/// |------------------------|------------------------------------------------------|
/// | `queue_full`           | ingest queue at capacity; shed with `503`            |
/// | `queue_full_congested` | of those, submissions carrying the congestion flag   |
/// | `expired`              | submission for a window already closed and folded    |
/// | `duplicate`            | exact wire duplicate within its open window          |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DropCounters {
    /// Shed because the ingest queue was at capacity.
    pub queue_full: u64,
    /// Subset of `queue_full` whose submission carried the near-source
    /// congestion flag (`cmh-cong=1`) — ingest shedding correlated with
    /// upstream congestion shedding.
    pub queue_full_congested: u64,
    /// Arrived for a window that was already closed and folded.
    pub expired: u64,
    /// Exact wire duplicate of a submission already in its open window.
    pub duplicate: u64,
}

impl DropCounters {
    /// Total dropped submissions (`queue_full_congested` is a subset of
    /// `queue_full`, not an extra cause).
    pub fn total(&self) -> u64 {
        self.queue_full + self.expired + self.duplicate
    }

    /// Element-wise sum.
    pub fn merge(&mut self, other: &DropCounters) {
        self.queue_full += other.queue_full;
        self.queue_full_congested += other.queue_full_congested;
        self.expired += other.expired;
        self.duplicate += other.duplicate;
    }
}

/// One `(domain, country)` success cell of a closed window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellEntry {
    /// Measured target domain.
    pub domain: String,
    /// Client country.
    pub country: CountryCode,
    /// Counted measurements (after ingest-time filters and per-ip cap).
    pub n: u64,
    /// Successes among `n`.
    pub x: u64,
}

/// The folded detector input for one closed window: exactly the
/// `(domain, country) → (n, x)` matrix `FilteringDetector::build_matrix`
/// would have produced from the window's raw records, plus the raw
/// Result-phase count the windowed report carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowCells {
    /// Window index (`received_at.as_micros() / window_micros`).
    pub window: u64,
    /// Result-phase submissions received in the window, before filters.
    pub measurements: u64,
    /// Cells sorted by `(domain, country)`.
    pub cells: Vec<CellEntry>,
}

impl WindowCells {
    /// Merge another window's cells into this one (same window index).
    pub fn merge(&mut self, other: WindowCells) {
        debug_assert_eq!(self.window, other.window);
        self.measurements += other.measurements;
        for cell in other.cells {
            let key = (&cell.domain, cell.country);
            match self
                .cells
                .binary_search_by(|c| (&c.domain, c.country).cmp(&key))
            {
                Ok(i) => {
                    self.cells[i].n += cell.n;
                    self.cells[i].x += cell.x;
                }
                Err(i) => self.cells.insert(i, cell),
            }
        }
    }
}

/// Merge two window-sorted `WindowCells` vectors (associative,
/// commutative; the empty vector is the identity).
pub fn merge_window_cells(into: &mut Vec<WindowCells>, other: Vec<WindowCells>) {
    for w in other {
        match into.binary_search_by_key(&w.window, |c| c.window) {
            Ok(i) => into[i].merge(w),
            Err(i) => into.insert(i, w),
        }
    }
}

/// Bounded ingest queue with a deterministic sim-time drain.
///
/// Submissions admit while `pending < capacity`; pending work drains at
/// `drain_per_sec` as sim time advances (fractional credit is carried,
/// so drain is exact over any step pattern). There is no wall-clock
/// anywhere — the same event sequence always sheds the same
/// submissions.
#[derive(Debug, Clone)]
pub struct IngestQueue {
    capacity: u64,
    drain_per_sec: u64,
    pending: u64,
    last_micros: u64,
    credit_micros: u64,
}

impl IngestQueue {
    /// New empty queue.
    pub fn new(capacity: u64, drain_per_sec: u64) -> IngestQueue {
        IngestQueue {
            capacity,
            drain_per_sec,
            pending: 0,
            last_micros: 0,
            credit_micros: 0,
        }
    }

    /// Advance the drain clock to `now` and try to enqueue one
    /// submission. Returns `false` (shed) when the queue is full.
    pub fn admit(&mut self, now: SimTime) -> bool {
        let now_micros = now.as_micros();
        if now_micros > self.last_micros {
            let elapsed = now_micros - self.last_micros;
            let total = elapsed
                .saturating_mul(self.drain_per_sec)
                .saturating_add(self.credit_micros);
            self.pending = self.pending.saturating_sub(total / 1_000_000);
            self.credit_micros = total % 1_000_000;
            self.last_micros = now_micros;
        }
        if self.pending >= self.capacity {
            false
        } else {
            self.pending += 1;
            true
        }
    }

    /// Submissions currently queued.
    pub fn pending(&self) -> u64 {
        self.pending
    }
}

/// The complete serialisable streaming state of one collection server
/// (or the merge of several shards' servers). This is what rides the
/// transport's SKETCH frame and what the detector's streamed path
/// consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingStats {
    /// Detection window in microseconds.
    pub window_micros: u64,
    /// Submissions accepted into the analytics state (the streaming
    /// counterpart of the exact record count).
    pub accepted: u64,
    /// Per-URL / per-origin tallies.
    pub sketch: CountMinSketch,
    /// Uniform record sample.
    pub reservoir: ReservoirSample,
    /// Closed windows, sorted by window index.
    pub windows: Vec<WindowCells>,
    /// Per-cause drop accounting.
    pub drops: DropCounters,
}

impl StreamingStats {
    /// Associative merge of two shards' streaming state. Panics unless
    /// the windows agree (merging different detection windows is
    /// meaningless).
    pub fn merge(&mut self, other: StreamingStats) {
        assert_eq!(
            self.window_micros, other.window_micros,
            "streaming merge requires identical detection windows"
        );
        self.accepted += other.accepted;
        self.sketch.merge(&other.sketch);
        self.reservoir.merge(other.reservoir);
        merge_window_cells(&mut self.windows, other.windows);
        self.drops.merge(&other.drops);
    }

    /// Approximate resident bytes of the streaming analytics state
    /// (sketch counters, reservoir entries, window cells). Used by the
    /// `memory_scale` gate; intentionally excludes transient scratch.
    pub fn resident_bytes(&self) -> usize {
        let reservoir: usize = self
            .reservoir
            .entries
            .iter()
            .map(|e| {
                std::mem::size_of::<ReservoirEntry>()
                    + e.record.submission.target_url.len()
                    + e.record.submission.user_agent.len()
                    + e.record.referer.as_ref().map_or(0, String::len)
            })
            .sum();
        let windows: usize = self
            .windows
            .iter()
            .map(|w| {
                std::mem::size_of::<WindowCells>()
                    + w.cells
                        .iter()
                        .map(|c| std::mem::size_of::<CellEntry>() + c.domain.len())
                        .sum::<usize>()
            })
            .sum();
        self.sketch.resident_bytes() + reservoir + windows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Submission;
    use crate::tasks::{MeasurementId, TaskOutcome, TaskType};
    use sim_core::SimRng;

    fn record(id: u64, at: u64) -> StoredMeasurement {
        StoredMeasurement {
            submission: Submission {
                measurement_id: MeasurementId(id),
                phase: crate::collection::SubmissionPhase::Result,
                outcome: Some(TaskOutcome::Success),
                elapsed_ms: 12,
                task_type: TaskType::Image,
                target_url: "http://example.com/x.png".to_string(),
                user_agent: "Chrome/52".to_string(),
                congested: false,
            },
            client_ip: std::net::Ipv4Addr::new(10, 0, 0, (id % 250) as u8 + 1),
            referer: None,
            received_at: SimTime::from_micros(at),
        }
    }

    #[test]
    fn sketch_is_exact_for_sparse_keys() {
        let mut s = CountMinSketch::new(4, 1024, 42);
        for (i, key) in ["a", "bb", "ccc", "dddd"].iter().enumerate() {
            s.add(key.as_bytes(), (i as u64 + 1) * 3);
        }
        for (i, key) in ["a", "bb", "ccc", "dddd"].iter().enumerate() {
            assert_eq!(s.estimate(key.as_bytes()), (i as u64 + 1) * 3);
        }
        assert_eq!(s.items(), 3 + 6 + 9 + 12);
    }

    #[test]
    fn sketch_namespaces_are_independent() {
        let mut s = CountMinSketch::new(4, 256, 7);
        s.add_ns(CountMinSketch::NS_URL, b"example.com", 5);
        assert_eq!(s.estimate_ns(CountMinSketch::NS_URL, b"example.com"), 5);
        assert_eq!(s.estimate_ns(CountMinSketch::NS_ORIGIN, b"example.com"), 0);
    }

    #[test]
    fn sketch_merge_adds_counts() {
        let mut a = CountMinSketch::new(4, 512, 9);
        let mut b = CountMinSketch::new(4, 512, 9);
        a.add(b"k", 3);
        b.add(b"k", 4);
        b.add(b"other", 1);
        a.merge(&b);
        assert!(a.estimate(b"k") >= 7);
        assert_eq!(a.items(), 8);
    }

    #[test]
    #[should_panic(expected = "identical dimensions and seed")]
    fn sketch_merge_rejects_mismatched_seeds() {
        let mut a = CountMinSketch::new(4, 512, 1);
        let b = CountMinSketch::new(4, 512, 2);
        a.merge(&b);
    }

    #[test]
    fn reservoir_keeps_bottom_k_and_merges_like_one_stream() {
        let mut rng = SimRng::new(77);
        let offers: Vec<(u64, StoredMeasurement)> = (0..100)
            .map(|i| (rng.next_u64(), record(i, i * 1_000)))
            .collect();

        let mut whole = ReservoirSample::new(8);
        for (p, r) in offers.clone() {
            whole.offer(p, r);
        }
        // Split the same stream across two "shards" and merge.
        let mut left = ReservoirSample::new(8);
        let mut right = ReservoirSample::new(8);
        for (i, (p, r)) in offers.into_iter().enumerate() {
            if i % 2 == 0 {
                left.offer(p, r);
            } else {
                right.offer(p, r);
            }
        }
        left.merge(right);
        assert_eq!(left, whole);
        assert_eq!(whole.seen, 100);
        assert_eq!(whole.len(), 8);
        // Entries really are the 8 smallest priorities.
        let mut priorities: Vec<u64> = whole.entries.iter().map(|e| e.priority).collect();
        let sorted = priorities.clone();
        priorities.sort_unstable();
        assert_eq!(priorities, sorted);
    }

    #[test]
    fn reservoir_would_admit_matches_offer() {
        let mut s = ReservoirSample::new(2);
        s.offer(50, record(0, 0));
        s.offer(30, record(1, 1));
        assert!(s.would_admit(40));
        assert!(!s.would_admit(60));
        assert!(!s.would_admit(50)); // ties lose to the incumbent max
    }

    #[test]
    fn ingest_queue_sheds_then_drains() {
        let mut q = IngestQueue::new(3, 1); // 1 per second
        let t0 = SimTime::from_micros(0);
        assert!(q.admit(t0) && q.admit(t0) && q.admit(t0));
        assert!(!q.admit(t0), "fourth concurrent submission is shed");
        // 2.5 simulated seconds drain two; fractional credit carries.
        let t1 = SimTime::from_micros(2_500_000);
        assert!(q.admit(t1));
        assert_eq!(q.pending(), 2);
        // The carried 0.5s credit plus another 0.5s drains one more.
        let t2 = SimTime::from_micros(3_000_000);
        assert!(q.admit(t2));
        assert_eq!(q.pending(), 2);
    }

    #[test]
    fn window_cells_merge_is_order_insensitive() {
        let cc = |s: &str| CountryCode::new(s);
        let w = |window, cells: Vec<(&str, &str, u64, u64)>| WindowCells {
            window,
            measurements: cells.iter().map(|c| c.2).sum(),
            cells: cells
                .into_iter()
                .map(|(d, c, n, x)| CellEntry {
                    domain: d.to_string(),
                    country: cc(c),
                    n,
                    x,
                })
                .collect(),
        };
        let a = vec![
            w(0, vec![("a.com", "TR", 4, 1)]),
            w(2, vec![("b.com", "US", 2, 2)]),
        ];
        let b = vec![w(0, vec![("a.com", "TR", 3, 3), ("a.com", "US", 1, 1)])];
        let mut ab = a.clone();
        merge_window_cells(&mut ab, b.clone());
        let mut ba = b;
        merge_window_cells(&mut ba, a);
        assert_eq!(ab, ba);
        assert_eq!(ab[0].cells[0].n, 7);
        assert_eq!(ab[0].measurements, 8);
        assert_eq!(ab[1].window, 2);
    }

    #[test]
    fn drop_counters_merge_and_total() {
        let mut a = DropCounters {
            queue_full: 5,
            queue_full_congested: 2,
            expired: 1,
            duplicate: 0,
        };
        let b = DropCounters {
            queue_full: 1,
            queue_full_congested: 1,
            expired: 0,
            duplicate: 3,
        };
        a.merge(&b);
        assert_eq!(a.total(), 6 + 1 + 3);
        assert_eq!(a.queue_full_congested, 3);
    }

    #[test]
    fn streaming_stats_roundtrip_and_merge() {
        let mut rng = SimRng::new(5);
        let mk = |rng: &mut SimRng, n: u64| {
            let mut s = StreamingStats {
                window_micros: 86_400_000_000,
                accepted: n,
                sketch: CountMinSketch::new(4, 256, 11),
                reservoir: ReservoirSample::new(4),
                windows: Vec::new(),
                drops: DropCounters::default(),
            };
            for i in 0..n {
                s.sketch.add_ns(CountMinSketch::NS_URL, b"http://t.co/x", 1);
                s.reservoir.offer(rng.next_u64(), record(i, i));
            }
            s
        };
        let mut a = mk(&mut rng, 6);
        let b = mk(&mut rng, 3);
        let json = serde_json::to_string(&a).expect("serialize");
        let back: StreamingStats = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, a);
        a.merge(b);
        assert_eq!(a.accepted, 9);
        assert_eq!(
            a.sketch
                .estimate_ns(CountMinSketch::NS_URL, b"http://t.co/x"),
            9
        );
        assert!(a.resident_bytes() > 0);
    }
}
