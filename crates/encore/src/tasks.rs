//! Measurement tasks (paper §4.2–§4.3, Table 1).
//!
//! A measurement task is "a small, self-contained HTML and JavaScript
//! snippet that attempts to load a Web resource from a measurement
//! target". Four mechanisms exist, each with its own observable feedback
//! and limitations:
//!
//! | Task       | Feedback                        | Limitations |
//! |------------|---------------------------------|-------------|
//! | Image      | `onload`/`onerror`              | only small images |
//! | Stylesheet | computed-style check            | only non-empty sheets |
//! | Iframe     | cache-timing probe              | cacheable-image pages, ≤100 KB, no side effects |
//! | Script     | Chrome `onload` iff HTTP 200    | Chrome only, nosniff targets only |
//!
//! [`execute_task`] runs a task on a [`BrowserClient`] exactly as the
//! JavaScript of Appendix A would, returning only what the page could
//! observe.

use browser::{BrowserClient, LoadEvent};
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};
use std::fmt;

/// Unique identifier "linking all submissions of a measurement"
/// (Appendix A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MeasurementId(pub u64);

impl fmt::Display for MeasurementId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Rendered like the UUID-ish IDs the JS generates.
        write!(f, "m-{:016x}", self.0)
    }
}

/// The four task mechanisms of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TaskType {
    /// Render an image; `onload` on success.
    Image,
    /// Load a style sheet and test its effects.
    Stylesheet,
    /// Load a page in an iframe, then time a cache probe.
    Iframe,
    /// Load a resource as a script (Chrome only).
    Script,
}

impl TaskType {
    /// All task types, fixed order.
    pub const ALL: [TaskType; 4] = [
        TaskType::Image,
        TaskType::Stylesheet,
        TaskType::Iframe,
        TaskType::Script,
    ];

    /// The wire name (what `Display` renders, without the formatter).
    pub fn as_str(self) -> &'static str {
        match self {
            TaskType::Image => "image",
            TaskType::Stylesheet => "stylesheet",
            TaskType::Iframe => "iframe",
            TaskType::Script => "script",
        }
    }
}

impl fmt::Display for TaskType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Default cache-probe threshold for the iframe task: Figure 7 shows
/// cached loads complete tens of milliseconds faster than uncached, with
/// a ≥50 ms gap for most clients.
pub const IFRAME_CACHE_THRESHOLD: SimDuration = SimDuration::from_millis(50);

/// What a task loads and how.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TaskSpec {
    /// Embed `url` as a hidden image.
    Image {
        /// Image URL on the measurement target.
        url: String,
    },
    /// Load `url` as a style sheet inside a sandbox iframe.
    Stylesheet {
        /// Stylesheet URL on the measurement target.
        url: String,
    },
    /// Load `page_url` in a hidden iframe, then probe whether
    /// `probe_image_url` (embedded by that page) became cached.
    Iframe {
        /// The page to load.
        page_url: String,
        /// A cacheable image that page embeds.
        probe_image_url: String,
        /// Cache-timing decision threshold.
        threshold: SimDuration,
    },
    /// Load `url` via a `<script>` tag (Chrome only; target must serve
    /// nosniff).
    Script {
        /// Resource URL on the measurement target.
        url: String,
    },
}

impl TaskSpec {
    /// The mechanism this spec uses.
    pub fn task_type(&self) -> TaskType {
        match self {
            TaskSpec::Image { .. } => TaskType::Image,
            TaskSpec::Stylesheet { .. } => TaskType::Stylesheet,
            TaskSpec::Iframe { .. } => TaskType::Iframe,
            TaskSpec::Script { .. } => TaskType::Script,
        }
    }

    /// The URL whose reachability this task measures.
    pub fn target_url(&self) -> &str {
        match self {
            TaskSpec::Image { url } | TaskSpec::Stylesheet { url } | TaskSpec::Script { url } => {
                url
            }
            TaskSpec::Iframe { page_url, .. } => page_url,
        }
    }

    /// The measurement target's DNS domain.
    pub fn target_domain(&self) -> Option<String> {
        netsim::http::host_of(self.target_url())
    }

    /// Whether this task may run on `engine` (paper §5.3: "we should only
    /// schedule the script task type … on clients running Chrome").
    pub fn compatible_with(&self, engine: browser::Engine) -> bool {
        match self {
            TaskSpec::Script { .. } => engine.script_onload_on_http_200(),
            _ => true,
        }
    }
}

/// A schedulable measurement task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasurementTask {
    /// Unique measurement ID.
    pub id: MeasurementId,
    /// What to load.
    pub spec: TaskSpec,
}

/// The binary outcome a task reports (§4.3: "such observations are
/// binary").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TaskOutcome {
    /// The cross-origin resource loaded.
    Success,
    /// It did not.
    Failure,
}

/// Everything the in-page JavaScript observes from running one task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskExecution {
    /// Binary outcome.
    pub outcome: TaskOutcome,
    /// Time from task start to the deciding event ("related timing
    /// information", §5.5).
    pub elapsed: SimDuration,
    /// Whether executing the task put the client at security risk
    /// (should be impossible when the Task Generator and scheduler do
    /// their jobs; asserted on in the soundness tests).
    pub executed_untrusted_code: bool,
    /// Whether a failure carried a near-source congestion signal — the
    /// load was shed at an overloaded transit link, not censored. The
    /// client reports this alongside the outcome so the collection side
    /// can discount congestion-shaped failures.
    pub congested: bool,
}

/// Run `task` on `client` at time `now`, exactly as the delivered
/// JavaScript would.
pub fn execute_task(
    task: &MeasurementTask,
    client: &mut BrowserClient,
    net: &mut Network,
    now: SimTime,
) -> TaskExecution {
    match &task.spec {
        TaskSpec::Image { url } => {
            let load = client.load_image(net, url, now);
            TaskExecution {
                outcome: if load.event == LoadEvent::OnLoad {
                    TaskOutcome::Success
                } else {
                    TaskOutcome::Failure
                },
                elapsed: load.elapsed,
                executed_untrusted_code: false,
                congested: load.congestion_signaled,
            }
        }
        TaskSpec::Stylesheet { url } => {
            let load = client.load_stylesheet(net, url, now);
            TaskExecution {
                outcome: if load.event == LoadEvent::OnLoad {
                    TaskOutcome::Success
                } else {
                    TaskOutcome::Failure
                },
                elapsed: load.elapsed,
                executed_untrusted_code: false,
                congested: load.congestion_signaled,
            }
        }
        TaskSpec::Script { url } => {
            let load = client.load_script(net, url, now);
            TaskExecution {
                outcome: if load.event == LoadEvent::OnLoad {
                    TaskOutcome::Success
                } else {
                    TaskOutcome::Failure
                },
                elapsed: load.elapsed,
                executed_untrusted_code: load.executed_untrusted,
                congested: load.congestion_signaled,
            }
        }
        TaskSpec::Iframe {
            page_url,
            probe_image_url,
            threshold,
        } => {
            // §4.3.2: load the page in an iframe, wait for its onload,
            // then time a fetch of an image that page embeds. Fast ⇒ the
            // image was cached by the iframe load ⇒ the page loaded.
            let frame = client.load_iframe(net, page_url, now);
            let probe = client.load_image(net, probe_image_url, now + frame.elapsed);
            let cached_fast = probe.event == LoadEvent::OnLoad && probe.elapsed <= *threshold;
            TaskExecution {
                outcome: if cached_fast {
                    TaskOutcome::Success
                } else {
                    TaskOutcome::Failure
                },
                elapsed: frame.elapsed + probe.elapsed,
                executed_untrusted_code: false,
                congested: frame.congestion_signaled || probe.congestion_signaled,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use browser::Engine;
    use censor::testbed::{FilterVariety, Testbed};
    use netsim::geo::{country, IspClass, World};
    use sim_core::SimRng;

    fn setup(engine: Engine) -> (Network, Testbed, BrowserClient) {
        let mut n = Network::ideal(World::builtin());
        let tb = Testbed::install(&mut n);
        let root = SimRng::new(0xEC0);
        let c = BrowserClient::new(&mut n, country("DE"), IspClass::Residential, engine, &root);
        (n, tb, c)
    }

    fn task(spec: TaskSpec) -> MeasurementTask {
        MeasurementTask {
            id: MeasurementId(1),
            spec,
        }
    }

    #[test]
    fn image_task_succeeds_on_control() {
        let (mut n, tb, mut c) = setup(Engine::Firefox);
        let t = task(TaskSpec::Image {
            url: tb.favicon_url(FilterVariety::Control),
        });
        let r = execute_task(&t, &mut c, &mut n, SimTime::ZERO);
        assert_eq!(r.outcome, TaskOutcome::Success);
        assert!(!r.executed_untrusted_code);
    }

    #[test]
    fn image_task_detects_every_filtering_variety() {
        for v in FilterVariety::filtering() {
            let (mut n, tb, mut c) = setup(Engine::Firefox);
            let t = task(TaskSpec::Image {
                url: tb.favicon_url(v),
            });
            let r = execute_task(&t, &mut c, &mut n, SimTime::ZERO);
            assert_eq!(r.outcome, TaskOutcome::Failure, "variety {v:?}");
        }
    }

    #[test]
    fn stylesheet_task_succeeds_on_control_and_fails_on_blockpage() {
        let (mut n, tb, mut c) = setup(Engine::Safari);
        let ok = execute_task(
            &task(TaskSpec::Stylesheet {
                url: tb.style_url(FilterVariety::Control),
            }),
            &mut c,
            &mut n,
            SimTime::ZERO,
        );
        assert_eq!(ok.outcome, TaskOutcome::Success);
        let blocked = execute_task(
            &task(TaskSpec::Stylesheet {
                url: tb.style_url(FilterVariety::HttpBlockPage),
            }),
            &mut c,
            &mut n,
            SimTime::ZERO,
        );
        assert_eq!(blocked.outcome, TaskOutcome::Failure);
    }

    #[test]
    fn script_task_works_on_chrome_without_execution() {
        let (mut n, tb, mut c) = setup(Engine::Chrome);
        let ok = execute_task(
            &task(TaskSpec::Script {
                url: tb.script_url(FilterVariety::Control),
            }),
            &mut c,
            &mut n,
            SimTime::ZERO,
        );
        assert_eq!(ok.outcome, TaskOutcome::Success);
        let blocked = execute_task(
            &task(TaskSpec::Script {
                url: tb.script_url(FilterVariety::TcpReset),
            }),
            &mut c,
            &mut n,
            SimTime::ZERO,
        );
        assert_eq!(blocked.outcome, TaskOutcome::Failure);
    }

    #[test]
    fn script_task_incompatible_with_non_chrome() {
        let spec = TaskSpec::Script {
            url: "http://x.com/a.js".into(),
        };
        assert!(spec.compatible_with(Engine::Chrome));
        assert!(!spec.compatible_with(Engine::Firefox));
        assert!(!spec.compatible_with(Engine::Safari));
        // Other task types run anywhere.
        let img = TaskSpec::Image {
            url: "http://x.com/a.png".into(),
        };
        assert!(img.compatible_with(Engine::InternetExplorer));
    }

    #[test]
    fn iframe_task_succeeds_on_control() {
        let (mut n, tb, mut c) = setup(Engine::Chrome);
        let t = task(TaskSpec::Iframe {
            page_url: tb.page_url(FilterVariety::Control),
            probe_image_url: format!("http://{}/embedded.png", FilterVariety::Control.hostname()),
            threshold: IFRAME_CACHE_THRESHOLD,
        });
        let r = execute_task(&t, &mut c, &mut n, SimTime::ZERO);
        assert_eq!(r.outcome, TaskOutcome::Success);
    }

    #[test]
    fn iframe_task_fails_when_page_blocked() {
        for v in [
            FilterVariety::DnsNxDomain,
            FilterVariety::TcpReset,
            FilterVariety::HttpDrop,
        ] {
            let (mut n, tb, mut c) = setup(Engine::Chrome);
            let t = task(TaskSpec::Iframe {
                page_url: tb.page_url(v),
                probe_image_url: format!("http://{}/embedded.png", v.hostname()),
                threshold: IFRAME_CACHE_THRESHOLD,
            });
            let r = execute_task(&t, &mut c, &mut n, SimTime::ZERO);
            assert_eq!(r.outcome, TaskOutcome::Failure, "variety {v:?}");
        }
    }

    #[test]
    fn spec_accessors() {
        let spec = TaskSpec::Iframe {
            page_url: "http://a.com/p".into(),
            probe_image_url: "http://a.com/i.png".into(),
            threshold: IFRAME_CACHE_THRESHOLD,
        };
        assert_eq!(spec.task_type(), TaskType::Iframe);
        assert_eq!(spec.target_url(), "http://a.com/p");
        assert_eq!(spec.target_domain().as_deref(), Some("a.com"));
    }

    #[test]
    fn measurement_id_display() {
        assert_eq!(MeasurementId(255).to_string(), "m-00000000000000ff");
    }

    #[test]
    fn task_types_have_stable_names() {
        let names: Vec<_> = TaskType::ALL.iter().map(|t| t.to_string()).collect();
        assert_eq!(names, vec!["image", "stylesheet", "iframe", "script"]);
    }
}
