//! IP geolocation — the MaxMind GeoLite stand-in.
//!
//! Paper §7: "We use a standard IP geolocation database to determine
//! client locations." Real GeoIP databases are imperfect; [`GeoDb`] is
//! derived from the simulator's ground-truth allocations with an optional
//! error rate that deterministically mislocates a fraction of addresses —
//! letting the ablation benches quantify how geolocation error degrades
//! detection.

use netsim::geo::CountryCode;
use netsim::ip::IpAllocator;
use netsim::Ipv4Net;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// An IP → country database.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeoDb {
    ranges: Vec<(Ipv4Net, CountryCode)>,
    /// Fraction of lookups that return a wrong country.
    error_rate: f64,
    /// Countries available as wrong answers.
    all_countries: Vec<CountryCode>,
}

impl GeoDb {
    /// Snapshot the allocator's ground truth into a database.
    pub fn from_allocator(alloc: &IpAllocator) -> GeoDb {
        let ranges: Vec<_> = alloc.assignments().to_vec();
        let mut all_countries: Vec<_> = ranges.iter().map(|&(_, c)| c).collect();
        all_countries.sort();
        all_countries.dedup();
        GeoDb {
            ranges,
            error_rate: 0.0,
            all_countries,
        }
    }

    /// Builder: introduce a deterministic per-address error rate.
    pub fn with_error_rate(mut self, rate: f64) -> GeoDb {
        self.error_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Deterministic hash of an address to a unit value. FNV alone has
    /// poor high-bit avalanche on 4-byte inputs, so a murmur-style
    /// finaliser is applied.
    fn unit_hash(ip: Ipv4Addr) -> f64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in ip.octets() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^= h >> 33;
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Locate an address. `None` for addresses outside every known range
    /// (as with real databases).
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<CountryCode> {
        let truth = self
            .ranges
            .iter()
            .find(|(net, _)| net.contains(ip))
            .map(|&(_, c)| c)?;
        if self.error_rate > 0.0 && Self::unit_hash(ip) < self.error_rate {
            // Deterministically pick a different country.
            let idx = (Self::unit_hash(ip) * 1e9) as usize % self.all_countries.len().max(1);
            let wrong = self.all_countries[idx];
            if wrong != truth {
                return Some(wrong);
            }
            // Fall back to the next country over.
            let j = (idx + 1) % self.all_countries.len();
            return Some(self.all_countries[j]);
        }
        Some(truth)
    }

    /// Number of address ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Union another database's ranges into this one — the merge step of
    /// a sharded run, where each shard derived a database from its own
    /// (disjoint, striped) allocator. Associative and commutative:
    /// ranges are deduplicated and kept in a canonical sorted order, so
    /// any merge tree over the same shard set yields the same database.
    /// Both databases must use the same error rate (the rate is scenario
    /// configuration, not per-shard state).
    pub fn merge(mut self, other: &GeoDb) -> GeoDb {
        assert!(
            (self.error_rate - other.error_rate).abs() < f64::EPSILON,
            "merging GeoDbs with different error rates"
        );
        self.ranges.extend(other.ranges.iter().cloned());
        self.ranges
            .sort_by_key(|&(net, c)| (u32::from(net.base), net.prefix, c));
        self.ranges.dedup();
        self.all_countries = self.ranges.iter().map(|&(_, c)| c).collect();
        self.all_countries.sort();
        self.all_countries.dedup();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::country;

    fn allocator_with(countries: &[&str], per: usize) -> (IpAllocator, Vec<Ipv4Addr>) {
        let mut a = IpAllocator::new();
        let mut ips = Vec::new();
        for c in countries {
            for _ in 0..per {
                ips.push(a.allocate(country(c)));
            }
        }
        (a, ips)
    }

    #[test]
    fn perfect_db_matches_ground_truth() {
        let (a, ips) = allocator_with(&["PK", "CN", "US"], 100);
        let db = GeoDb::from_allocator(&a);
        for ip in ips {
            assert_eq!(db.lookup(ip), Some(a.country_of(ip).unwrap()));
        }
    }

    #[test]
    fn unknown_address_is_none() {
        let (a, _) = allocator_with(&["US"], 1);
        let db = GeoDb::from_allocator(&a);
        assert_eq!(db.lookup(Ipv4Addr::new(8, 8, 8, 8)), None);
    }

    #[test]
    fn error_rate_mislocates_roughly_that_fraction() {
        let (a, ips) = allocator_with(&["PK", "CN", "US", "BR"], 500);
        let db = GeoDb::from_allocator(&a).with_error_rate(0.10);
        let wrong = ips
            .iter()
            .filter(|&&ip| db.lookup(ip) != Some(a.country_of(ip).unwrap()))
            .count();
        let rate = wrong as f64 / ips.len() as f64;
        assert!((0.05..0.16).contains(&rate), "error rate = {rate}");
    }

    #[test]
    fn errors_are_deterministic() {
        let (a, ips) = allocator_with(&["PK", "CN"], 200);
        let db1 = GeoDb::from_allocator(&a).with_error_rate(0.2);
        let db2 = GeoDb::from_allocator(&a).with_error_rate(0.2);
        for ip in ips {
            assert_eq!(db1.lookup(ip), db2.lookup(ip));
        }
    }

    #[test]
    fn merge_unions_sharded_allocators() {
        let mut a0 = IpAllocator::sharded(0, 2);
        let mut a1 = IpAllocator::sharded(1, 2);
        let ip0 = a0.allocate(country("PK"));
        let ip1 = a1.allocate(country("CN"));
        let merged = GeoDb::from_allocator(&a0).merge(&GeoDb::from_allocator(&a1));
        assert_eq!(merged.lookup(ip0), Some(country("PK")));
        assert_eq!(merged.lookup(ip1), Some(country("CN")));
        // Commutative: either merge order resolves both shards.
        let flipped = GeoDb::from_allocator(&a1).merge(&GeoDb::from_allocator(&a0));
        assert_eq!(flipped.lookup(ip0), Some(country("PK")));
        assert_eq!(flipped.lookup(ip1), Some(country("CN")));
        assert_eq!(merged.range_count(), flipped.range_count());
    }

    #[test]
    fn mislocated_addresses_never_get_their_true_country() {
        let (a, ips) = allocator_with(&["PK", "CN", "US"], 300);
        let db = GeoDb::from_allocator(&a).with_error_rate(1.0);
        for ip in ips {
            let got = db.lookup(ip).unwrap();
            assert_ne!(got, a.country_of(ip).unwrap());
        }
    }
}
