//! Report generation — the researcher-facing output.
//!
//! Paper §3.1: "Our goal is to observe instances of Web filtering and
//! report them to a central authority (e.g., researchers) for analysis."
//! This module turns raw collection records plus detector output into
//! the kind of per-country report the OpenNet Initiative published
//! qualitatively and Encore aimed to ground in continuous measurement:
//! measurement volume, vantage diversity, per-domain success rates, and
//! the flagged resources, renderable as Markdown.

use crate::collection::{StoredMeasurement, SubmissionPhase};
use crate::geo::GeoDb;
use crate::inference::{Detection, FilteringDetector};
use crate::tasks::TaskOutcome;
use netsim::geo::CountryCode;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-domain measurement summary within one country.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DomainSummary {
    /// Target domain.
    pub domain: String,
    /// Result measurements.
    pub measurements: u64,
    /// Successful measurements.
    pub successes: u64,
    /// Whether the detector flagged this domain here.
    pub flagged: bool,
}

impl DomainSummary {
    /// Observed success rate.
    pub fn success_rate(&self) -> f64 {
        if self.measurements == 0 {
            1.0
        } else {
            self.successes as f64 / self.measurements as f64
        }
    }
}

/// A country's report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryReport {
    /// The country.
    pub country: CountryCode,
    /// Total result measurements geolocated here.
    pub measurements: u64,
    /// Distinct client addresses seen.
    pub distinct_ips: usize,
    /// Per-domain summaries, flagged first, then by volume.
    pub domains: Vec<DomainSummary>,
}

impl CountryReport {
    /// Domains flagged as filtered here.
    pub fn flagged_domains(&self) -> Vec<&str> {
        self.domains
            .iter()
            .filter(|d| d.flagged)
            .map(|d| d.domain.as_str())
            .collect()
    }
}

/// Build per-country reports from records + detections.
pub fn country_reports(
    records: &[StoredMeasurement],
    geo: &GeoDb,
    detector: &FilteringDetector,
) -> Vec<CountryReport> {
    let detections: Vec<Detection> = detector.detect(records, geo);
    let flagged: std::collections::BTreeSet<(String, CountryCode)> = detections
        .iter()
        .map(|d| (d.domain.clone(), d.country))
        .collect();

    // (country, domain) → (n, x); country → ips.
    let mut cells: BTreeMap<(CountryCode, String), (u64, u64)> = BTreeMap::new();
    let mut ips: BTreeMap<CountryCode, std::collections::BTreeSet<std::net::Ipv4Addr>> =
        BTreeMap::new();
    for rec in records {
        if rec.submission.phase != SubmissionPhase::Result {
            continue;
        }
        if detector.config.exclude_crawlers && rec.is_crawler() {
            continue;
        }
        let (Some(outcome), Some(domain), Some(country)) = (
            rec.submission.outcome,
            rec.target_domain(),
            geo.lookup(rec.client_ip),
        ) else {
            continue;
        };
        let cell = cells.entry((country, domain)).or_default();
        cell.0 += 1;
        if outcome == TaskOutcome::Success {
            cell.1 += 1;
        }
        ips.entry(country).or_default().insert(rec.client_ip);
    }

    let mut by_country: BTreeMap<CountryCode, Vec<DomainSummary>> = BTreeMap::new();
    for ((country, domain), (n, x)) in cells {
        by_country.entry(country).or_default().push(DomainSummary {
            flagged: flagged.contains(&(domain.clone(), country)),
            domain,
            measurements: n,
            successes: x,
        });
    }

    let mut reports: Vec<CountryReport> = by_country
        .into_iter()
        .map(|(country, mut domains)| {
            domains.sort_by(|a, b| {
                b.flagged
                    .cmp(&a.flagged)
                    .then(b.measurements.cmp(&a.measurements))
                    .then(a.domain.cmp(&b.domain))
            });
            CountryReport {
                country,
                measurements: domains.iter().map(|d| d.measurements).sum(),
                distinct_ips: ips.get(&country).map(|s| s.len()).unwrap_or(0),
                domains,
            }
        })
        .collect();
    // Largest contributors first.
    reports.sort_by(|a, b| {
        b.measurements
            .cmp(&a.measurements)
            .then(a.country.cmp(&b.country))
    });
    reports
}

/// Render reports as a Markdown document.
pub fn render_markdown(reports: &[CountryReport]) -> String {
    let mut out = String::from("# Encore measurement report\n\n");
    let total: u64 = reports.iter().map(|r| r.measurements).sum();
    let flagged_total: usize = reports.iter().map(|r| r.flagged_domains().len()).sum();
    out.push_str(&format!(
        "{} result measurements across {} countries; {} (domain, country) pairs flagged.\n\n",
        total,
        reports.len(),
        flagged_total
    ));
    for r in reports {
        out.push_str(&format!(
            "## {} — {} measurements from {} addresses\n\n",
            r.country, r.measurements, r.distinct_ips
        ));
        if r.domains.is_empty() {
            out.push_str("no measurements\n\n");
            continue;
        }
        out.push_str("| domain | measurements | success rate | status |\n");
        out.push_str("|---|---|---|---|\n");
        for d in &r.domains {
            out.push_str(&format!(
                "| {} | {} | {:.1}% | {} |\n",
                d.domain,
                d.measurements,
                100.0 * d.success_rate(),
                if d.flagged { "**FILTERED**" } else { "ok" }
            ));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Submission;
    use crate::tasks::{MeasurementId, TaskType};
    use netsim::geo::country;
    use netsim::ip::IpAllocator;
    use sim_core::SimTime;

    fn records() -> (Vec<StoredMeasurement>, GeoDb) {
        let mut alloc = IpAllocator::new();
        let mut records = Vec::new();
        let mut id = 0u64;
        let mut add = |alloc: &mut IpAllocator,
                       records: &mut Vec<StoredMeasurement>,
                       domain: &str,
                       cc: &str,
                       ok: bool| {
            id += 1;
            records.push(StoredMeasurement {
                submission: Submission {
                    measurement_id: MeasurementId(id),
                    phase: SubmissionPhase::Result,
                    outcome: Some(if ok {
                        TaskOutcome::Success
                    } else {
                        TaskOutcome::Failure
                    }),
                    elapsed_ms: 100,
                    task_type: TaskType::Image,
                    target_url: format!("http://{domain}/favicon.ico"),
                    user_agent: "Chrome".into(),
                    congested: false,
                },
                client_ip: alloc.allocate(country(cc)),
                referer: None,
                received_at: SimTime::ZERO,
            });
        };
        for _ in 0..20 {
            add(&mut alloc, &mut records, "youtube.com", "PK", false);
            add(&mut alloc, &mut records, "youtube.com", "US", true);
            add(&mut alloc, &mut records, "wikipedia.org", "PK", true);
        }
        (records, GeoDb::from_allocator(&alloc))
    }

    #[test]
    fn reports_group_and_flag_correctly() {
        let (records, geo) = records();
        let reports = country_reports(&records, &geo, &FilteringDetector::default());
        assert_eq!(reports.len(), 2);
        let pk = reports.iter().find(|r| r.country == country("PK")).unwrap();
        assert_eq!(pk.measurements, 40);
        assert_eq!(pk.distinct_ips, 40);
        assert_eq!(pk.flagged_domains(), vec!["youtube.com"]);
        let yt = pk
            .domains
            .iter()
            .find(|d| d.domain == "youtube.com")
            .unwrap();
        assert_eq!(yt.success_rate(), 0.0);
        let wiki = pk
            .domains
            .iter()
            .find(|d| d.domain == "wikipedia.org")
            .unwrap();
        assert!(!wiki.flagged);
        assert_eq!(wiki.success_rate(), 1.0);
        let us = reports.iter().find(|r| r.country == country("US")).unwrap();
        assert!(us.flagged_domains().is_empty());
    }

    #[test]
    fn flagged_domains_sort_first() {
        let (records, geo) = records();
        let reports = country_reports(&records, &geo, &FilteringDetector::default());
        let pk = reports.iter().find(|r| r.country == country("PK")).unwrap();
        assert_eq!(pk.domains[0].domain, "youtube.com");
    }

    #[test]
    fn markdown_rendering_contains_key_facts() {
        let (records, geo) = records();
        let reports = country_reports(&records, &geo, &FilteringDetector::default());
        let md = render_markdown(&reports);
        assert!(md.contains("# Encore measurement report"));
        assert!(md.contains("## PK"));
        assert!(md.contains("**FILTERED**"));
        assert!(md.contains("youtube.com"));
        assert!(md.contains("1 (domain, country) pairs flagged"));
    }

    #[test]
    fn empty_records_give_empty_report() {
        let alloc = IpAllocator::new();
        let geo = GeoDb::from_allocator(&alloc);
        let reports = country_reports(&[], &geo, &FilteringDetector::default());
        assert!(reports.is_empty());
        let md = render_markdown(&reports);
        assert!(md.contains("0 result measurements"));
    }
}
