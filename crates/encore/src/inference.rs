//! The filtering-detection algorithm (paper §7.2).
//!
//! > "We model each measurement success as a Bernoulli random variable
//! > with parameter p = 0.7; we assume that, in the absence of filtering,
//! > clients should successfully load resources at least 70% of the time.
//! > … For each resource and region, we count both the total number of
//! > measurements n_r and the number of successful measurements x_r and
//! > run a one-sided hypothesis test for a binomial distribution; we
//! > consider a resource as filtered in region r if x_r fails this test
//! > at 0.05 significance … yet does not fail the same test in other
//! > regions."
//!
//! The cross-region control is what separates *filtering* from *outage*:
//! a site that is down fails everywhere and is flagged nowhere.

use crate::collection::{StoredMeasurement, SubmissionPhase};
use crate::geo::GeoDb;
use crate::tasks::TaskOutcome;
use netsim::geo::CountryCode;
use serde::{Deserialize, Serialize};
use sim_core::OneSidedBinomialTest;
use std::collections::BTreeMap;

/// Detector configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// The hypothesis test (paper: p = 0.7, α = 0.05).
    pub test: OneSidedBinomialTest,
    /// Minimum measurements per (resource, region) cell before the test
    /// is attempted — guards against one unlucky client condemning a
    /// region.
    pub min_measurements: u64,
    /// Drop submissions from crawlers/scanners (§7.1).
    pub exclude_crawlers: bool,
    /// Cap on result measurements counted from a single client address
    /// per (resource, region) cell. This is the poisoning mitigation of
    /// §8 ("attackers may attempt to submit poisoned measurement results
    /// to alter the conclusions that Encore draws"): an attacker must
    /// control many addresses, not just flood from one. `None` disables
    /// the cap.
    pub max_per_ip: Option<u64>,
    /// Discount failures carrying a near-source congestion signal (the
    /// fetch was shed at an overloaded transit link, and the link said
    /// so). Such failures are evidence about the *path*, not the
    /// *resource*: counting them as censorship evidence would let every
    /// transit brownout masquerade as a regional block. Signaled
    /// failures are excluded from the Bernoulli count entirely — they
    /// are neither a success nor censorship evidence.
    #[serde(default = "default_true")]
    pub discount_congestion: bool,
}

fn default_true() -> bool {
    true
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            test: OneSidedBinomialTest::default(),
            min_measurements: 5,
            exclude_crawlers: true,
            max_per_ip: Some(10),
            discount_congestion: true,
        }
    }
}

/// One (resource, region) cell of the measurement matrix.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Cell {
    /// Total result-phase measurements.
    pub n: u64,
    /// Successful measurements.
    pub x: u64,
}

impl Cell {
    /// Observed success rate (1.0 for an empty cell).
    pub fn success_rate(&self) -> f64 {
        if self.n == 0 {
            1.0
        } else {
            self.x as f64 / self.n as f64
        }
    }
}

/// A positive detection: `domain` appears filtered in `country`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// The filtered resource's domain.
    pub domain: String,
    /// The region where it fails.
    pub country: CountryCode,
    /// Measurements in that region.
    pub n: u64,
    /// Successes in that region.
    pub x: u64,
    /// The test's p-value.
    pub p_value: f64,
}

/// The detector.
#[derive(Debug, Clone, Default)]
pub struct FilteringDetector {
    /// Configuration.
    pub config: DetectorConfig,
}

impl FilteringDetector {
    /// Detector with explicit configuration.
    pub fn new(config: DetectorConfig) -> FilteringDetector {
        FilteringDetector { config }
    }

    /// Build the (domain, country) measurement matrix from raw records.
    pub fn build_matrix(
        &self,
        records: &[StoredMeasurement],
        geo: &GeoDb,
    ) -> BTreeMap<(String, CountryCode), Cell> {
        let mut matrix: BTreeMap<(String, CountryCode), Cell> = BTreeMap::new();
        let mut per_ip: BTreeMap<(String, std::net::Ipv4Addr), u64> = BTreeMap::new();
        for rec in records {
            if rec.submission.phase != SubmissionPhase::Result {
                continue;
            }
            if self.config.exclude_crawlers && rec.is_crawler() {
                continue;
            }
            let Some(outcome) = rec.submission.outcome else {
                continue;
            };
            if self.config.discount_congestion
                && outcome == TaskOutcome::Failure
                && rec.submission.congested
            {
                // Near-source congestion signal: the transit link shed
                // this fetch and said so. Path evidence, not resource
                // evidence — see `DetectorConfig::discount_congestion`.
                continue;
            }
            let Some(domain) = rec.target_domain() else {
                continue;
            };
            let Some(country) = geo.lookup(rec.client_ip) else {
                continue;
            };
            if let Some(cap) = self.config.max_per_ip {
                let seen = per_ip.entry((domain.clone(), rec.client_ip)).or_insert(0);
                if *seen >= cap {
                    continue; // poisoning mitigation: flooding one IP stops counting
                }
                *seen += 1;
            }
            let cell = matrix.entry((domain, country)).or_default();
            cell.n += 1;
            if outcome == TaskOutcome::Success {
                cell.x += 1;
            }
        }
        matrix
    }

    /// Run the §7.2 detection rule over the matrix.
    pub fn detect(&self, records: &[StoredMeasurement], geo: &GeoDb) -> Vec<Detection> {
        self.detect_from_matrix(&self.build_matrix(records, geo))
    }

    /// The §7.2 decision rule over an already-built measurement matrix.
    /// [`detect`](Self::detect) builds the matrix from raw records; the
    /// streaming path ([`judge_streamed`](Self::judge_streamed)) folds
    /// it online at ingest and hands the closed windows here — both
    /// paths share this single implementation of the test, so the
    /// verdict logic cannot diverge between modes.
    pub fn detect_from_matrix(
        &self,
        matrix: &BTreeMap<(String, CountryCode), Cell>,
    ) -> Vec<Detection> {
        // Group cells by domain.
        let mut by_domain: BTreeMap<String, Vec<(CountryCode, Cell)>> = BTreeMap::new();
        for ((domain, country), cell) in matrix {
            by_domain
                .entry(domain.clone())
                .or_default()
                .push((*country, *cell));
        }

        let mut detections = Vec::new();
        for (domain, cells) in by_domain {
            // Which regions (with enough data) fail the test?
            let mut failing = Vec::new();
            let mut passing_regions = 0usize;
            for &(country, cell) in &cells {
                if cell.n < self.config.min_measurements {
                    continue;
                }
                if self.config.test.rejects(cell.n, cell.x) {
                    failing.push((country, cell));
                } else if cell.success_rate() >= self.config.test.p {
                    // Refinement over the paper's literal rule: a region
                    // only counts as a healthy control when its success
                    // rate actually clears the null prior. Otherwise a
                    // global partial outage (~50% success everywhere)
                    // would be "passed" by small regions that merely lack
                    // the sample size to reach significance, and every
                    // large region would be falsely flagged.
                    passing_regions += 1;
                }
            }
            // The cross-region control: a resource failing *everywhere*
            // is an outage, not filtering. Require at least one healthy
            // region.
            if passing_regions == 0 {
                continue;
            }
            for (country, cell) in failing {
                detections.push(Detection {
                    domain: domain.clone(),
                    country,
                    n: cell.n,
                    x: cell.x,
                    p_value: self.config.test.p_value(cell.n, cell.x),
                });
            }
        }
        detections
    }
}

/// Per-region congestion evidence: how much of the observed loss carries
/// near-source congestion signals, and how it spreads across origins.
///
/// Two properties distinguish congestion collapse from censorship:
///
/// * **loss-pattern shape** — shed failures arrive *signaled* (the
///   transit link says "congested"), whereas a censor's forged NXDOMAIN
///   / RST / drop is silent about its cause;
/// * **cross-origin correlation** — a congested transit link degrades
///   *every* host routed across it, so signaled failures spread over
///   most measured domains; censorship targets specific resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionAssessment {
    /// The region assessed.
    pub country: CountryCode,
    /// Result-phase failures carrying the congestion signal.
    pub signaled_failures: u64,
    /// All result-phase failures from the region.
    pub total_failures: u64,
    /// Distinct domains with at least one signaled failure.
    pub domains_signaled: usize,
    /// Distinct domains measured from the region.
    pub domains_measured: usize,
}

impl CongestionAssessment {
    /// Fraction of the region's failures that are congestion-signaled
    /// (0.0 when there are no failures).
    pub fn signaled_share(&self) -> f64 {
        if self.total_failures == 0 {
            0.0
        } else {
            self.signaled_failures as f64 / self.total_failures as f64
        }
    }

    /// Whether signaled loss correlates across co-routed origins —
    /// congestion hits every host behind the hot link, so signaled
    /// failures on the majority of measured domains (and more than one)
    /// point at the path rather than any single resource.
    pub fn cross_origin_correlated(&self) -> bool {
        self.domains_signaled > 1 && self.domains_signaled * 2 > self.domains_measured
    }
}

/// Aggregate congestion evidence per client region (deterministic order:
/// sorted by country code). Complements [`FilteringDetector::detect`]:
/// where the detector *discounts* signaled failures, this surfaces them,
/// so a report can say "region X wasn't censored, its transit was
/// melting" instead of silently dropping the loss.
pub fn congestion_evidence(
    records: &[StoredMeasurement],
    geo: &GeoDb,
) -> Vec<CongestionAssessment> {
    let mut by_country: BTreeMap<CountryCode, CongestionAssessment> = BTreeMap::new();
    let mut domains: BTreeMap<CountryCode, BTreeMap<String, bool>> = BTreeMap::new();
    for rec in records {
        if rec.submission.phase != SubmissionPhase::Result {
            continue;
        }
        let Some(domain) = rec.target_domain() else {
            continue;
        };
        let Some(country) = geo.lookup(rec.client_ip) else {
            continue;
        };
        let entry = by_country
            .entry(country)
            .or_insert_with(|| CongestionAssessment {
                country,
                signaled_failures: 0,
                total_failures: 0,
                domains_signaled: 0,
                domains_measured: 0,
            });
        let signaled = domains
            .entry(country)
            .or_default()
            .entry(domain)
            .or_default();
        if rec.submission.outcome == Some(TaskOutcome::Failure) {
            entry.total_failures += 1;
            if rec.submission.congested {
                entry.signaled_failures += 1;
                *signaled = true;
            }
        }
    }
    let mut out: Vec<CongestionAssessment> = by_country.into_values().collect();
    for a in &mut out {
        let doms = &domains[&a.country];
        a.domains_measured = doms.len();
        a.domains_signaled = doms.values().filter(|&&s| s).count();
    }
    out
}

/// One window of a longitudinal analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowReport {
    /// Window index (0-based).
    pub window: u64,
    /// Window start time.
    pub start: sim_core::SimTime,
    /// Result measurements falling in the window.
    pub measurements: usize,
    /// Detections within the window.
    pub detections: Vec<Detection>,
}

/// Localise block transitions in a windowed flag series: the first
/// flagged window (the onset) and the first clear window after it (the
/// lift). This is the **single definition** of onset/lift semantics over
/// [`FilteringDetector::detect_windows`] output — the timeline fixtures,
/// the adaptive-censor golden, and the `simcheck` fuzz oracle all share
/// it, so the localisation rule can never silently diverge between the
/// hand-picked goldens and the generated scenario space.
pub fn localise_transitions(
    flags: impl IntoIterator<Item = (u64, bool)>,
) -> (Option<u64>, Option<u64>) {
    let (mut onset, mut lift) = (None, None);
    let mut prev = false;
    for (w, flagged) in flags {
        if flagged && !prev && onset.is_none() {
            onset = Some(w);
        }
        if !flagged && prev && onset.is_some() && lift.is_none() {
            lift = Some(w);
        }
        prev = flagged;
    }
    (onset, lift)
}

impl FilteringDetector {
    /// Longitudinal detection: slice the record stream into fixed
    /// windows and run the detector per window. This is what turns
    /// Encore from a snapshot into the continuous monitor the paper
    /// argues for (§1: censorship "varies over time in response to
    /// changing social or political conditions (e.g., a national
    /// election)") — the onset and lifting of a block appear as
    /// detections entering and leaving consecutive windows.
    pub fn detect_windows(
        &self,
        records: &[StoredMeasurement],
        geo: &GeoDb,
        window: sim_core::SimDuration,
    ) -> Vec<WindowReport> {
        assert!(window.as_micros() > 0, "window must be positive");
        let mut by_window: BTreeMap<u64, Vec<StoredMeasurement>> = BTreeMap::new();
        for rec in records {
            let w = rec.received_at.as_micros() / window.as_micros();
            by_window.entry(w).or_default().push(rec.clone());
        }
        by_window
            .into_iter()
            .map(|(w, recs)| WindowReport {
                window: w,
                start: sim_core::SimTime::from_micros(w * window.as_micros()),
                measurements: recs
                    .iter()
                    .filter(|r| r.submission.phase == SubmissionPhase::Result)
                    .count(),
                detections: self.detect(&recs, geo),
            })
            .collect()
    }

    /// [`detect_windows`](Self::detect_windows) over streamed state:
    /// the per-window matrices were folded at ingest (with this
    /// detector's filter knobs applied there — the
    /// [`crate::streaming::StreamingConfig`] mirrors them), so each
    /// closed window goes straight into the shared decision rule. On
    /// identical traffic with a zero-error geo database this produces
    /// the same reports as the exact path, record for record — the
    /// `simcheck` streaming oracle holds the two paths to that.
    pub fn judge_streamed(&self, stats: &crate::streaming::StreamingStats) -> Vec<WindowReport> {
        stats
            .windows
            .iter()
            .map(|w| {
                let matrix: BTreeMap<(String, CountryCode), Cell> = w
                    .cells
                    .iter()
                    .map(|c| ((c.domain.clone(), c.country), Cell { n: c.n, x: c.x }))
                    .collect();
                WindowReport {
                    window: w.window,
                    start: sim_core::SimTime::from_micros(w.window * stats.window_micros),
                    measurements: w.measurements as usize,
                    detections: self.detect_from_matrix(&matrix),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Submission;
    use crate::tasks::{MeasurementId, TaskType};
    use netsim::geo::country;
    use netsim::ip::IpAllocator;
    use sim_core::SimTime;

    struct Fixture {
        alloc: IpAllocator,
        records: Vec<StoredMeasurement>,
        next_id: u64,
    }

    impl Fixture {
        fn new() -> Fixture {
            Fixture {
                alloc: IpAllocator::new(),
                records: Vec::new(),
                next_id: 0,
            }
        }

        fn add(&mut self, domain: &str, cc: &str, outcome: TaskOutcome) {
            self.add_ua(domain, cc, outcome, "Chrome");
        }

        fn add_at(&mut self, domain: &str, cc: &str, outcome: TaskOutcome, at: SimTime) {
            self.add(domain, cc, outcome);
            self.records.last_mut().unwrap().received_at = at;
        }

        fn add_ua(&mut self, domain: &str, cc: &str, outcome: TaskOutcome, ua: &str) {
            let ip = self.alloc.allocate(country(cc));
            self.next_id += 1;
            self.records.push(StoredMeasurement {
                submission: Submission {
                    measurement_id: MeasurementId(self.next_id),
                    phase: SubmissionPhase::Result,
                    outcome: Some(outcome),
                    elapsed_ms: 100,
                    task_type: TaskType::Image,
                    target_url: format!("http://{domain}/favicon.ico"),
                    user_agent: ua.into(),
                    congested: false,
                },
                client_ip: ip,
                referer: None,
                received_at: SimTime::ZERO,
            });
        }

        fn geo(&self) -> GeoDb {
            GeoDb::from_allocator(&self.alloc)
        }
    }

    fn detector() -> FilteringDetector {
        FilteringDetector::default()
    }

    #[test]
    fn detects_regional_blocking() {
        let mut f = Fixture::new();
        // 20 failures in Pakistan, 30 successes in the US.
        for _ in 0..20 {
            f.add("youtube.com", "PK", TaskOutcome::Failure);
        }
        for _ in 0..30 {
            f.add("youtube.com", "US", TaskOutcome::Success);
        }
        let d = detector().detect(&f.records, &f.geo());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].country, country("PK"));
        assert_eq!(d[0].domain, "youtube.com");
        assert!(d[0].p_value < 0.001);
    }

    #[test]
    fn outage_everywhere_is_not_filtering() {
        let mut f = Fixture::new();
        for cc in ["PK", "US", "DE"] {
            for _ in 0..20 {
                f.add("down.com", cc, TaskOutcome::Failure);
            }
        }
        assert!(detector().detect(&f.records, &f.geo()).is_empty());
    }

    #[test]
    fn sporadic_failures_tolerated() {
        let mut f = Fixture::new();
        // India: 75% success — below perfection but above the p=0.7 null.
        for i in 0..40 {
            f.add(
                "fine.com",
                "IN",
                if i % 4 == 0 {
                    TaskOutcome::Failure
                } else {
                    TaskOutcome::Success
                },
            );
        }
        for _ in 0..40 {
            f.add("fine.com", "US", TaskOutcome::Success);
        }
        assert!(detector().detect(&f.records, &f.geo()).is_empty());
    }

    #[test]
    fn small_samples_never_flag() {
        let mut f = Fixture::new();
        // 3 failures in PK: below min_measurements.
        for _ in 0..3 {
            f.add("youtube.com", "PK", TaskOutcome::Failure);
        }
        for _ in 0..30 {
            f.add("youtube.com", "US", TaskOutcome::Success);
        }
        assert!(detector().detect(&f.records, &f.geo()).is_empty());
    }

    #[test]
    fn crawler_traffic_excluded() {
        let mut f = Fixture::new();
        // All "failures" in DE come from a scanner.
        for _ in 0..20 {
            f.add_ua("x.com", "DE", TaskOutcome::Failure, "SecurityScanner");
        }
        for _ in 0..20 {
            f.add("x.com", "US", TaskOutcome::Success);
        }
        assert!(detector().detect(&f.records, &f.geo()).is_empty());
        // With exclusion disabled the false detection appears.
        let lax = FilteringDetector::new(DetectorConfig {
            exclude_crawlers: false,
            ..DetectorConfig::default()
        });
        assert_eq!(lax.detect(&f.records, &f.geo()).len(), 1);
    }

    #[test]
    fn init_phase_records_ignored() {
        let mut f = Fixture::new();
        for _ in 0..20 {
            f.add("y.com", "PK", TaskOutcome::Failure);
        }
        for _ in 0..20 {
            f.add("y.com", "US", TaskOutcome::Success);
        }
        // Turn all PK records into init-phase: no results → no detection.
        for r in &mut f.records {
            if f.alloc.country_of(r.client_ip) == Some(country("PK")) {
                r.submission.phase = SubmissionPhase::Init;
                r.submission.outcome = None;
            }
        }
        assert!(detector().detect(&f.records, &f.geo()).is_empty());
    }

    #[test]
    fn matrix_counts_are_correct() {
        let mut f = Fixture::new();
        for _ in 0..7 {
            f.add("a.com", "CN", TaskOutcome::Failure);
        }
        for _ in 0..3 {
            f.add("a.com", "CN", TaskOutcome::Success);
        }
        let m = detector().build_matrix(&f.records, &f.geo());
        let cell = m[&("a.com".to_string(), country("CN"))];
        assert_eq!(cell.n, 10);
        assert_eq!(cell.x, 3);
        assert!((cell.success_rate() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn partial_throttling_needs_more_evidence_than_hard_blocking() {
        // With 50% success (throttling), the detector needs more samples
        // than with 0% success (hard block) — quantifying the paper's
        // point that subtle filtering is harder to see.
        let t = OneSidedBinomialTest::default();
        // Hard block: significant at n = 3.
        assert!(t.rejects(3, 0));
        // 50% success: n = 3 (x≈1) is not significant…
        assert!(!t.rejects(3, 1));
        assert!(!t.rejects(6, 3));
        // …but n = 30 (x = 15) is.
        assert!(t.rejects(30, 15));
    }

    #[test]
    fn windowed_detection_sees_censorship_onset() {
        use sim_core::SimDuration;
        let mut f = Fixture::new();
        let day = SimDuration::from_days(1);
        // Days 0–4: everything fine everywhere. Days 5–9: Turkey blocks.
        for d in 0..10u64 {
            let at = SimTime::from_secs(d * 86_400 + 100);
            for _ in 0..12 {
                let tr_outcome = if d >= 5 {
                    TaskOutcome::Failure
                } else {
                    TaskOutcome::Success
                };
                f.add_at("twitter.com", "TR", tr_outcome, at);
                f.add_at("twitter.com", "US", TaskOutcome::Success, at);
            }
        }
        let reports = FilteringDetector::default().detect_windows(&f.records, &f.geo(), day);
        assert_eq!(reports.len(), 10);
        for r in &reports {
            let flagged = r
                .detections
                .iter()
                .any(|d| d.country == country("TR") && d.domain == "twitter.com");
            if r.window < 5 {
                assert!(!flagged, "window {} falsely flagged", r.window);
            } else {
                assert!(flagged, "window {} missed the block", r.window);
            }
            assert_eq!(r.measurements, 24);
        }
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn windowed_detection_rejects_zero_window() {
        let f = Fixture::new();
        let _ = FilteringDetector::default().detect_windows(
            &f.records,
            &f.geo(),
            sim_core::SimDuration::ZERO,
        );
    }

    #[test]
    fn single_ip_flood_cannot_poison_detection() {
        let mut f = Fixture::new();
        // Healthy baseline in two countries.
        for cc in ["US", "DE"] {
            for _ in 0..30 {
                f.add("victim.com", cc, TaskOutcome::Success);
            }
        }
        // One attacker address in BR floods 500 failure reports.
        let attacker_ip = f.alloc.allocate(country("BR"));
        for i in 0..500u64 {
            f.records.push(StoredMeasurement {
                submission: Submission {
                    measurement_id: MeasurementId(100_000 + i),
                    phase: SubmissionPhase::Result,
                    outcome: Some(TaskOutcome::Failure),
                    elapsed_ms: 100,
                    task_type: TaskType::Image,
                    target_url: "http://victim.com/favicon.ico".into(),
                    user_agent: "Chrome".into(),
                    congested: false,
                },
                client_ip: attacker_ip,
                referer: None,
                received_at: SimTime::ZERO,
            });
        }
        // With the per-IP cap (default 10): 10 failures in BR is still a
        // significant cell… so also require min_measurements > cap to
        // show the combined defence, or observe the cap shrink n.
        let capped = FilteringDetector::new(DetectorConfig {
            max_per_ip: Some(10),
            min_measurements: 20,
            ..DetectorConfig::default()
        });
        assert!(capped.detect(&f.records, &f.geo()).is_empty());
        // Without the cap the flood forges a "detection".
        let uncapped = FilteringDetector::new(DetectorConfig {
            max_per_ip: None,
            min_measurements: 20,
            ..DetectorConfig::default()
        });
        let forged = uncapped.detect(&f.records, &f.geo());
        assert_eq!(forged.len(), 1);
        assert_eq!(forged[0].country, country("BR"));
    }

    #[test]
    fn per_ip_cap_counts_first_k_only() {
        let mut f = Fixture::new();
        let ip = f.alloc.allocate(country("CN"));
        for i in 0..30u64 {
            f.records.push(StoredMeasurement {
                submission: Submission {
                    measurement_id: MeasurementId(i),
                    phase: SubmissionPhase::Result,
                    outcome: Some(TaskOutcome::Success),
                    elapsed_ms: 1,
                    task_type: TaskType::Image,
                    target_url: "http://a.com/favicon.ico".into(),
                    user_agent: "Chrome".into(),
                    congested: false,
                },
                client_ip: ip,
                referer: None,
                received_at: SimTime::ZERO,
            });
        }
        let det = FilteringDetector::new(DetectorConfig {
            max_per_ip: Some(7),
            ..DetectorConfig::default()
        });
        let m = det.build_matrix(&f.records, &f.geo());
        assert_eq!(m[&("a.com".to_string(), country("CN"))].n, 7);
    }

    impl Fixture {
        fn add_congested(&mut self, domain: &str, cc: &str) {
            self.add(domain, cc, TaskOutcome::Failure);
            self.records.last_mut().unwrap().submission.congested = true;
        }
    }

    #[test]
    fn congestion_signaled_failures_are_discounted() {
        let mut f = Fixture::new();
        // A transit brownout sheds 20 fetches in TR — all signaled.
        for _ in 0..20 {
            f.add_congested("news.com", "TR");
        }
        for _ in 0..30 {
            f.add("news.com", "US", TaskOutcome::Success);
        }
        assert!(
            detector().detect(&f.records, &f.geo()).is_empty(),
            "signaled congestion loss must not read as censorship"
        );
        // The discount is what saves it: counting signaled failures as
        // censorship evidence forges the detection (mutation check —
        // removing the skip in build_matrix fails this assert).
        let naive = FilteringDetector::new(DetectorConfig {
            discount_congestion: false,
            ..DetectorConfig::default()
        });
        assert_eq!(naive.detect(&f.records, &f.geo()).len(), 1);
    }

    #[test]
    fn unsignaled_censorship_still_flags_on_a_congested_path() {
        let mut f = Fixture::new();
        // Real block: forged failures carry no congestion signal…
        for _ in 0..20 {
            f.add("twitter.com", "TR", TaskOutcome::Failure);
        }
        // …amid signaled congestion loss on a co-routed domain.
        for _ in 0..20 {
            f.add_congested("news.com", "TR");
        }
        for d in ["twitter.com", "news.com"] {
            for _ in 0..30 {
                f.add(d, "US", TaskOutcome::Success);
            }
        }
        let dets = detector().detect(&f.records, &f.geo());
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].domain, "twitter.com");
        assert_eq!(dets[0].country, country("TR"));
    }

    #[test]
    fn congestion_evidence_separates_path_from_resource() {
        let mut f = Fixture::new();
        // Congestion: signaled loss across both co-routed domains.
        for d in ["a.com", "b.com"] {
            for _ in 0..10 {
                f.add_congested(d, "TR");
            }
            for _ in 0..10 {
                f.add(d, "TR", TaskOutcome::Success);
            }
        }
        // Censorship: silent loss on one domain only.
        for _ in 0..10 {
            f.add("x.com", "IR", TaskOutcome::Failure);
        }
        for _ in 0..10 {
            f.add("y.com", "IR", TaskOutcome::Success);
        }
        let ev = congestion_evidence(&f.records, &f.geo());
        let tr = ev.iter().find(|a| a.country == country("TR")).unwrap();
        assert_eq!(tr.signaled_failures, 20);
        assert_eq!(tr.total_failures, 20);
        assert!(tr.signaled_share() > 0.99);
        assert!(tr.cross_origin_correlated(), "both co-routed hosts shed");
        let ir = ev.iter().find(|a| a.country == country("IR")).unwrap();
        assert_eq!(ir.signaled_failures, 0);
        assert!(!ir.cross_origin_correlated());
        assert_eq!(ir.domains_measured, 2);
    }

    #[test]
    fn multiple_regions_can_be_flagged() {
        let mut f = Fixture::new();
        for cc in ["CN", "IR"] {
            for _ in 0..20 {
                f.add("twitter.com", cc, TaskOutcome::Failure);
            }
        }
        for _ in 0..30 {
            f.add("twitter.com", "US", TaskOutcome::Success);
        }
        let d = detector().detect(&f.records, &f.geo());
        let countries: Vec<_> = d.iter().map(|x| x.country).collect();
        assert!(countries.contains(&country("CN")));
        assert!(countries.contains(&country("IR")));
        assert_eq!(d.len(), 2);
    }
}
