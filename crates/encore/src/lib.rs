//! # encore — the paper's system: lightweight censorship measurement with
//! cross-origin requests
//!
//! This crate implements every component of Encore as described in
//! Burnett & Feamster, *Encore: Lightweight Measurement of Web Censorship
//! with Cross-Origin Requests* (SIGCOMM 2015), §4–§5 and Figure 2/3:
//!
//! * [`tasks`] — the four measurement-task types of Table 1 and their
//!   execution semantics on a browser client.
//! * [`targets`] — measurement-target lists (the Herdict-style "high
//!   value" list) and the Table 2 ethics staging of what may be measured.
//! * [`pipeline`] — the three-stage task-generation pipeline of Figure 3:
//!   Pattern Expander → Target Fetcher → Task Generator.
//! * [`geo`] — the GeoIP database (MaxMind stand-in) used to locate
//!   submissions.
//! * [`coordination`] — the coordination server: schedules tasks onto
//!   clients (§5.3), respecting per-engine constraints.
//! * [`delivery`] — how webmasters install Encore and how clients obtain
//!   tasks (§5.4), including censor-resistant variants (§8).
//! * [`collection`] — the collection server receiving task results via
//!   cross-origin AJAX (§5.5), with crawler filtering and Referer
//!   stripping.
//! * [`inference`] — the §7.2 detection algorithm: a one-sided binomial
//!   hypothesis test per (resource, region) with cross-region control.
//! * [`streaming`] — bounded-memory analytics (count-min sketches,
//!   mergeable reservoir samples, windowed success matrices, bounded
//!   ingest with drop accounting) for heavy-traffic runs.
//! * [`system`] — the assembled deployment: origin sites, servers, and
//!   the full visit flow of Figure 2.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod collection;
pub mod coordination;
pub mod delivery;
pub mod geo;
pub mod inference;
pub mod pipeline;
pub mod reports;
pub mod streaming;
pub mod system;
pub mod targets;
pub mod tasks;

pub use collection::{
    CollectionServer, CollectionSnapshot, StoredMeasurement, Submission, SubmissionPhase,
};
pub use coordination::{ClientProfile, CoordinationServer, SchedulingStrategy};
pub use delivery::{InstallMethod, OriginSite, SNIPPET_BYTES};
pub use geo::GeoDb;
pub use inference::{
    congestion_evidence, localise_transitions, CongestionAssessment, Detection, DetectorConfig,
    FilteringDetector,
};
pub use pipeline::{GenerationConfig, HarAnalysis, PatternExpander, TargetFetcher, TaskGenerator};
pub use reports::{country_reports, render_markdown, CountryReport};
pub use streaming::{
    merge_window_cells, CellEntry, CountMinSketch, DropCounters, IngestQueue, ReservoirEntry,
    ReservoirSample, StreamingConfig, StreamingStats, WindowCells,
};
pub use system::{EncoreSystem, VisitOutcome};
pub use targets::{EthicsStage, TargetList};
pub use tasks::{execute_task, MeasurementId, MeasurementTask, TaskOutcome, TaskSpec, TaskType};
