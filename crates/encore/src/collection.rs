//! The collection server (paper §5.5).
//!
//! "After clients run a measurement task, they submit the result of the
//! task for analysis … by issuing an AJAX request containing the results
//! directly to our collection server." Appendix A shows the wire format:
//! a GET-style request with `cmh-id` / `cmh-result` query parameters; the
//! client also submits an `init` phase "as soon as the client loads the
//! page … even if they don't submit a final result".
//!
//! The server records, with each submission, the client's source address
//! (for geolocation), the `Referer` (unless the origin site strips it —
//! "3/4 of measurements come from sites that elect to strip the Referer
//! header"), and a user-agent tag used to exclude crawler traffic (§7.1:
//! "after excluding erroneously contributed measurements (e.g., from Web
//! crawlers)").

use crate::tasks::{MeasurementId, TaskOutcome, TaskType};
use netsim::geo::CountryCode;
use netsim::http::{ContentType, HttpRequest, HttpResponse};
use netsim::network::{HttpHandler, Network};
use serde::{Deserialize, Serialize};
use sim_core::SimTime;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Which of the two submissions this is (Appendix A: an `init` beacon
/// before the measurement, then the result).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SubmissionPhase {
    /// "Indicates which clients attempted to run the measurement."
    Init,
    /// The measurement outcome.
    Result,
}

/// A client-side submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// Measurement ID linking init and result.
    pub measurement_id: MeasurementId,
    /// Init or result.
    pub phase: SubmissionPhase,
    /// Task outcome (None for init).
    pub outcome: Option<TaskOutcome>,
    /// Elapsed task time in milliseconds (0 for init).
    pub elapsed_ms: u64,
    /// Task mechanism.
    pub task_type: TaskType,
    /// The measured URL.
    pub target_url: String,
    /// Browser user agent family (crawlers announce themselves).
    pub user_agent: String,
}

/// Minimal percent-encoding for query values.
fn pct_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Inverse of [`pct_encode`]. Malformed escapes pass through verbatim.
/// Operates on raw bytes: slicing by byte offset must never split a
/// multi-byte character.
fn pct_decode(s: &str) -> String {
    fn hex(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex(bytes[i + 1]), hex(bytes[i + 2])) {
                out.push(hi << 4 | lo);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parse the query-string portion of a URL into a map.
fn parse_query(url: &str) -> BTreeMap<String, String> {
    let mut map = BTreeMap::new();
    if let Some(q) = url.split('?').nth(1) {
        for pair in q.split('&') {
            if let Some((k, v)) = pair.split_once('=') {
                map.insert(pct_decode(k), pct_decode(v));
            }
        }
    }
    map
}

impl Submission {
    /// Encode as the submit URL's query parameters (Appendix A wire
    /// format).
    pub fn to_query(&self) -> String {
        let result = match (self.phase, self.outcome) {
            (SubmissionPhase::Init, _) => "init".to_string(),
            (SubmissionPhase::Result, Some(TaskOutcome::Success)) => "success".to_string(),
            (SubmissionPhase::Result, Some(TaskOutcome::Failure)) => "failure".to_string(),
            (SubmissionPhase::Result, None) => "unknown".to_string(),
        };
        format!(
            "cmh-id={}&cmh-result={}&cmh-elapsed={}&cmh-type={}&cmh-target={}&cmh-ua={}",
            pct_encode(&self.measurement_id.to_string()),
            result,
            self.elapsed_ms,
            self.task_type,
            pct_encode(&self.target_url),
            pct_encode(&self.user_agent),
        )
    }

    /// Decode from a submit URL. Returns `None` on malformed input (the
    /// server drops such requests).
    pub fn from_url(url: &str) -> Option<Submission> {
        let q = parse_query(url);
        let id_str = q.get("cmh-id")?;
        let id_hex = id_str.strip_prefix("m-")?;
        let measurement_id = MeasurementId(u64::from_str_radix(id_hex, 16).ok()?);
        let (phase, outcome) = match q.get("cmh-result")?.as_str() {
            "init" => (SubmissionPhase::Init, None),
            "success" => (SubmissionPhase::Result, Some(TaskOutcome::Success)),
            "failure" => (SubmissionPhase::Result, Some(TaskOutcome::Failure)),
            _ => return None,
        };
        let task_type = match q.get("cmh-type")?.as_str() {
            "image" => TaskType::Image,
            "stylesheet" => TaskType::Stylesheet,
            "iframe" => TaskType::Iframe,
            "script" => TaskType::Script,
            _ => return None,
        };
        Some(Submission {
            measurement_id,
            phase,
            outcome,
            elapsed_ms: q.get("cmh-elapsed")?.parse().ok()?,
            task_type,
            target_url: q.get("cmh-target")?.clone(),
            user_agent: q.get("cmh-ua").cloned().unwrap_or_default(),
        })
    }
}

/// A submission as stored server-side, enriched with connection metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredMeasurement {
    /// The submission body.
    pub submission: Submission,
    /// Source address of the connection.
    pub client_ip: Ipv4Addr,
    /// `Referer` header, if the origin site did not strip it.
    pub referer: Option<String>,
    /// Server receive time.
    pub received_at: SimTime,
}

impl StoredMeasurement {
    /// Whether this record came from automated traffic (the §6.2 campus
    /// security scanner, search-engine crawlers, …).
    pub fn is_crawler(&self) -> bool {
        let ua = self.submission.user_agent.to_ascii_lowercase();
        ua.contains("bot") || ua.contains("crawler") || ua.contains("scanner")
    }

    /// Target domain of the measurement.
    pub fn target_domain(&self) -> Option<String> {
        netsim::http::host_of(&self.submission.target_url)
    }
}

/// A plain-data snapshot of a collection store — everything the analysis
/// pipeline needs, detached from the server's `Rc`-shared live store so
/// it can cross thread boundaries and be merged across parallel shards.
///
/// Merging is defined over the *canonical order* (a total order on
/// records): [`merge`](CollectionSnapshot::merge) is associative and
/// commutative with [`CollectionSnapshot::default`] as identity, so the
/// union of per-shard stores is byte-stable no matter how the shards are
/// combined. The §7.2 detector and every report run once over the merged
/// record vector.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CollectionSnapshot {
    /// Stored records, in canonical order.
    pub records: Vec<StoredMeasurement>,
    /// Malformed submissions dropped server-side.
    pub malformed: u64,
}

/// The canonical total order on stored measurements: received time first
/// (the natural analysis order), then every remaining field as a
/// tie-break so the order is deterministic for any record multiset.
/// Compares by reference — no allocation per comparison, which keeps
/// canonicalisation cheap on the hot merge path.
fn canonical_cmp(a: &StoredMeasurement, b: &StoredMeasurement) -> std::cmp::Ordering {
    fn key(r: &StoredMeasurement) -> impl Ord + '_ {
        let s = &r.submission;
        (
            r.received_at,
            u32::from(r.client_ip),
            s.measurement_id,
            s.phase,
            s.outcome,
            s.task_type,
            s.elapsed_ms,
            s.target_url.as_str(),
            s.user_agent.as_str(),
            r.referer.as_deref(),
        )
    }
    key(a).cmp(&key(b))
}

impl CollectionSnapshot {
    /// Sort the records into canonical order. The stable sort is
    /// adaptive, so re-canonicalising a concatenation of already-sorted
    /// runs (the merge path) costs close to one linear pass.
    pub fn canonicalize(&mut self) {
        self.records.sort_by(canonical_cmp);
    }

    /// Merge another snapshot into this one. Associative and commutative
    /// over canonicalised snapshots, with the empty snapshot as identity.
    pub fn merge(mut self, other: &CollectionSnapshot) -> CollectionSnapshot {
        self.records.extend(other.records.iter().cloned());
        self.malformed += other.malformed;
        self.canonicalize();
        self
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct client IPs across the records.
    pub fn distinct_ips(&self) -> usize {
        let mut ips: Vec<_> = self.records.iter().map(|r| r.client_ip).collect();
        ips.sort();
        ips.dedup();
        ips.len()
    }
}

#[derive(Debug, Default)]
struct Store {
    records: Vec<StoredMeasurement>,
    malformed: u64,
}

/// The collection server: an HTTP endpoint accumulating submissions.
#[derive(Clone)]
pub struct CollectionServer {
    /// DNS name clients submit to.
    pub domain: String,
    store: Rc<RefCell<Store>>,
}

struct CollectorHandler {
    store: Rc<RefCell<Store>>,
}

impl HttpHandler for CollectorHandler {
    fn handle(&self, req: &HttpRequest, client_ip: Ipv4Addr, now: SimTime) -> HttpResponse {
        if !req.path().starts_with("/submit") {
            return HttpResponse::not_found();
        }
        match Submission::from_url(&req.url) {
            Some(submission) => {
                self.store.borrow_mut().records.push(StoredMeasurement {
                    submission,
                    client_ip,
                    referer: req.referer.clone(),
                    received_at: now,
                });
                // Tiny CORS-permissive 204-ish response.
                let mut resp = HttpResponse::ok(ContentType::Other, 2).no_store();
                resp.extra_headers
                    .insert("Access-Control-Allow-Origin".into(), "*".into());
                resp
            }
            None => {
                self.store.borrow_mut().malformed += 1;
                HttpResponse::not_found()
            }
        }
    }
}

impl CollectionServer {
    /// Create a collection service for `domain`.
    pub fn new(domain: impl Into<String>) -> CollectionServer {
        CollectionServer {
            domain: domain.into(),
            store: Rc::new(RefCell::new(Store::default())),
        }
    }

    /// Register the endpoint in the network (hosted in `country`).
    pub fn install(&self, net: &mut Network, country: CountryCode) {
        net.add_server(
            &self.domain,
            country,
            Box::new(CollectorHandler {
                store: Rc::clone(&self.store),
            }),
        );
    }

    /// Register an additional mirror domain sharing the same store (§8:
    /// "collection of the results could be distributed across servers
    /// hosted in different domains").
    pub fn install_mirror(&self, net: &mut Network, mirror_domain: &str, country: CountryCode) {
        net.add_server(
            mirror_domain,
            country,
            Box::new(CollectorHandler {
                store: Rc::clone(&self.store),
            }),
        );
    }

    /// The submit URL for a submission (against the primary domain).
    pub fn submit_url(&self, sub: &Submission) -> String {
        format!("http://{}/submit?{}", self.domain, sub.to_query())
    }

    /// The submit URL against an arbitrary (mirror) domain.
    pub fn submit_url_via(&self, domain: &str, sub: &Submission) -> String {
        format!("http://{domain}/submit?{}", sub.to_query())
    }

    /// Snapshot of all stored records.
    pub fn records(&self) -> Vec<StoredMeasurement> {
        self.store.borrow().records.clone()
    }

    /// Detach a canonical, thread-portable snapshot of the store (records
    /// plus the malformed counter) for merging and analysis.
    pub fn snapshot(&self) -> CollectionSnapshot {
        let store = self.store.borrow();
        let mut snap = CollectionSnapshot {
            records: store.records.clone(),
            malformed: store.malformed,
        };
        snap.canonicalize();
        snap
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.store.borrow().records.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of malformed submissions dropped.
    pub fn malformed(&self) -> u64 {
        self.store.borrow().malformed
    }

    /// Distinct client IPs seen (the paper reports "88,260 distinct
    /// IPs").
    pub fn distinct_ips(&self) -> usize {
        let mut ips: Vec<_> = self
            .store
            .borrow()
            .records
            .iter()
            .map(|r| r.client_ip)
            .collect();
        ips.sort();
        ips.dedup();
        ips.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::{country, IspClass, World};
    use sim_core::SimRng;

    fn submission() -> Submission {
        Submission {
            measurement_id: MeasurementId(0xAB),
            phase: SubmissionPhase::Result,
            outcome: Some(TaskOutcome::Failure),
            elapsed_ms: 1_234,
            task_type: TaskType::Image,
            target_url: "http://youtube.com/favicon.ico".into(),
            user_agent: "Chrome".into(),
        }
    }

    #[test]
    fn submission_roundtrips_through_url() {
        let s = submission();
        let url = format!("http://collector.example/submit?{}", s.to_query());
        let back = Submission::from_url(&url).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn init_phase_roundtrips() {
        let s = Submission {
            phase: SubmissionPhase::Init,
            outcome: None,
            elapsed_ms: 0,
            ..submission()
        };
        let url = format!("http://c/submit?{}", s.to_query());
        assert_eq!(
            Submission::from_url(&url).unwrap().phase,
            SubmissionPhase::Init
        );
    }

    #[test]
    fn malformed_submissions_rejected() {
        assert!(Submission::from_url("http://c/submit?cmh-id=garbage").is_none());
        assert!(Submission::from_url("http://c/submit").is_none());
        assert!(Submission::from_url("http://c/submit?cmh-id=m-00ff&cmh-result=banana").is_none());
    }

    #[test]
    fn pct_encoding_roundtrip() {
        let s = "http://a.com/x?q=1&r=%20";
        assert_eq!(pct_decode(&pct_encode(s)), s);
        assert_eq!(pct_encode("a b"), "a%20b");
    }

    #[test]
    fn server_stores_submissions_over_the_network() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.encore-repro.net");
        server.install(&mut net, country("US"));
        let client = net.add_client(country("PK"), IspClass::Residential);
        let mut rng = SimRng::new(1);

        let url = server.submit_url(&submission());
        let req = HttpRequest::get(&url).with_referer("http://origin.example/");
        let out = net.fetch(&client, &req, SimTime::from_secs(10), &mut rng);
        assert!(out.result.is_ok());

        assert_eq!(server.len(), 1);
        let rec = &server.records()[0];
        assert_eq!(rec.client_ip, client.ip);
        assert_eq!(rec.referer.as_deref(), Some("http://origin.example/"));
        assert_eq!(rec.received_at, SimTime::from_secs(10));
        assert_eq!(rec.submission.outcome, Some(TaskOutcome::Failure));
        assert_eq!(rec.target_domain().as_deref(), Some("youtube.com"));
    }

    #[test]
    fn server_counts_malformed() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        net.fetch(
            &client,
            &HttpRequest::get("http://collector.example/submit?junk=1"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(server.len(), 0);
        assert_eq!(server.malformed(), 1);
    }

    #[test]
    fn mirror_shares_the_store() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        server.install_mirror(&mut net, "mirror.example", country("DE"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let url = server.submit_url_via("mirror.example", &submission());
        net.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        assert_eq!(server.len(), 1);
    }

    fn stored(id: u64, ip: [u8; 4], at: u64) -> StoredMeasurement {
        StoredMeasurement {
            submission: Submission {
                measurement_id: MeasurementId(id),
                ..submission()
            },
            client_ip: Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3]),
            referer: None,
            received_at: SimTime::from_secs(at),
        }
    }

    use sim_core::SimTime;
    use std::net::Ipv4Addr;

    #[test]
    fn snapshot_captures_records_and_malformed() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let url = server.submit_url(&submission());
        net.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        net.fetch(
            &client,
            &HttpRequest::get("http://collector.example/submit?junk=1"),
            SimTime::ZERO,
            &mut rng,
        );
        let snap = server.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.malformed, 1);
        assert_eq!(snap.distinct_ips(), 1);
    }

    #[test]
    fn snapshot_merge_is_order_insensitive() {
        let a = CollectionSnapshot {
            records: vec![stored(2, [100, 0, 0, 9], 5), stored(1, [100, 0, 0, 9], 5)],
            malformed: 1,
        };
        let b = CollectionSnapshot {
            records: vec![stored(3, [100, 1, 0, 9], 2)],
            malformed: 2,
        };
        let ab = a.clone().merge(&b);
        let ba = b.clone().merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.malformed, 3);
        // Canonical order: received time first.
        assert_eq!(ab.records[0].submission.measurement_id, MeasurementId(3));
        // Identity element.
        assert_eq!(a.clone().merge(&CollectionSnapshot::default()), {
            let mut c = a.clone();
            c.canonicalize();
            c
        });
    }

    #[test]
    fn crawler_detection() {
        let rec = StoredMeasurement {
            submission: Submission {
                user_agent: "SecurityScanner/2.0".into(),
                ..submission()
            },
            client_ip: Ipv4Addr::new(100, 0, 0, 9),
            referer: None,
            received_at: SimTime::ZERO,
        };
        assert!(rec.is_crawler());
        let human = StoredMeasurement {
            submission: submission(),
            client_ip: Ipv4Addr::new(100, 0, 0, 9),
            referer: None,
            received_at: SimTime::ZERO,
        };
        assert!(!human.is_crawler());
    }

    #[test]
    fn distinct_ip_counting() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        let mut rng = SimRng::new(1);
        for _ in 0..3 {
            let c = net.add_client(country("US"), IspClass::Residential);
            let url = server.submit_url(&submission());
            net.fetch(&c, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
            // Same client submits twice.
            net.fetch(&c, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        }
        assert_eq!(server.len(), 6);
        assert_eq!(server.distinct_ips(), 3);
    }
}
