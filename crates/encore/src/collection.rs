//! The collection server (paper §5.5).
//!
//! "After clients run a measurement task, they submit the result of the
//! task for analysis … by issuing an AJAX request containing the results
//! directly to our collection server." Appendix A shows the wire format:
//! a GET-style request with `cmh-id` / `cmh-result` query parameters; the
//! client also submits an `init` phase "as soon as the client loads the
//! page … even if they don't submit a final result".
//!
//! The server records, with each submission, the client's source address
//! (for geolocation), the `Referer` (unless the origin site strips it —
//! "3/4 of measurements come from sites that elect to strip the Referer
//! header"), and a user-agent tag used to exclude crawler traffic (§7.1:
//! "after excluding erroneously contributed measurements (e.g., from Web
//! crawlers)").

use crate::streaming::{
    CellEntry, CountMinSketch, DropCounters, IngestQueue, ReservoirEntry, ReservoirSample,
    StreamingConfig, StreamingStats, WindowCells,
};
use crate::tasks::{MeasurementId, TaskOutcome, TaskType};
use netsim::geo::CountryCode;
use netsim::http::{ContentType, HttpRequest, HttpResponse, StatusCode};
use netsim::network::{HttpHandler, Network};
use serde::{Deserialize, Serialize};
use sim_core::{
    find_byte, find_either, seeded_hash, splitmix_mix, FxBuildHasher, Interner, SimRng, SimTime,
    Sym,
};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Which of the two submissions this is (Appendix A: an `init` beacon
/// before the measurement, then the result).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SubmissionPhase {
    /// "Indicates which clients attempted to run the measurement."
    Init,
    /// The measurement outcome.
    Result,
}

/// A client-side submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// Measurement ID linking init and result.
    pub measurement_id: MeasurementId,
    /// Init or result.
    pub phase: SubmissionPhase,
    /// Task outcome (None for init).
    pub outcome: Option<TaskOutcome>,
    /// Elapsed task time in milliseconds (0 for init).
    pub elapsed_ms: u64,
    /// Task mechanism.
    pub task_type: TaskType,
    /// The measured URL.
    pub target_url: String,
    /// Browser user agent family (crawlers announce themselves).
    pub user_agent: String,
    /// Whether the client observed a near-source congestion signal on a
    /// failed task (the fetch was shed at an overloaded transit link).
    /// Serialized and wire-encoded only when set, so pre-congestion
    /// submissions keep their exact bytes.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub congested: bool,
}

/// Append `s` percent-encoded (minimal query-value encoding). The byte
/// output is identical to the original per-byte `format!` encoder, but
/// streams straight into `out` with no intermediate allocations — this
/// runs twice per submission on the visit hot path.
fn push_pct_encoded(out: &mut String, s: &str) {
    const HEX: &[u8; 16] = b"0123456789ABCDEF";
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push(HEX[(b >> 4) as usize] as char);
                out.push(HEX[(b & 0x0F) as usize] as char);
            }
        }
    }
}

/// Append `v` as exactly 16 lowercase hex digits (the
/// [`MeasurementId`] display format's payload).
fn push_hex16(out: &mut String, v: u64) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut buf = [0u8; 16];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = HEX[((v >> (4 * (15 - i))) & 0xF) as usize];
    }
    out.push_str(std::str::from_utf8(&buf).expect("hex digits are ASCII"));
}

/// Append `v` in decimal without going through the `fmt` machinery.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Minimal percent-encoding for query values (allocating wrapper over
/// [`push_pct_encoded`]).
#[cfg(test)]
fn pct_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    push_pct_encoded(&mut out, s);
    out
}

/// Inverse of [`pct_encode`]. Malformed escapes pass through verbatim.
/// Operates on raw bytes: slicing by byte offset must never split a
/// multi-byte character. Borrows the input when it contains no escapes
/// (the common case for every field but the target URL and UA).
fn pct_decode_cow(s: &str) -> std::borrow::Cow<'_, str> {
    let bytes = s.as_bytes();
    let Some(pct) = find_byte(bytes, b'%') else {
        return std::borrow::Cow::Borrowed(s);
    };
    let mut out = Vec::with_capacity(bytes.len());
    pct_decode_bytes(bytes, pct, &mut out);
    std::borrow::Cow::Owned(match String::from_utf8(out) {
        Ok(decoded) => decoded,
        Err(err) => String::from_utf8_lossy(err.as_bytes()).into_owned(),
    })
}

/// Inverse of [`pct_encode`] decoding into a caller-owned buffer, so a
/// hot caller can reuse one allocation across calls. Same semantics as
/// [`pct_decode_cow`]; `out` is cleared first.
fn pct_decode_into(out: &mut String, s: &str) {
    out.clear();
    let bytes = s.as_bytes();
    let Some(pct) = find_byte(bytes, b'%') else {
        out.push_str(s);
        return;
    };
    let mut buf = std::mem::take(out).into_bytes();
    pct_decode_bytes(bytes, pct, &mut buf);
    *out = match String::from_utf8(buf) {
        Ok(decoded) => decoded,
        Err(err) => String::from_utf8_lossy(err.as_bytes()).into_owned(),
    };
}

/// Shared decode loop: append the decode of `bytes` to `out`, given the
/// position `pct` of the first `'%'`. Copies whole unescaped runs
/// between `'%'`s instead of byte-at-a-time.
fn pct_decode_bytes(bytes: &[u8], mut pct: usize, out: &mut Vec<u8>) {
    fn hex(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let mut start = 0;
    loop {
        out.extend_from_slice(&bytes[start..pct]);
        start = if pct + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex(bytes[pct + 1]), hex(bytes[pct + 2])) {
                out.push(hi << 4 | lo);
                pct + 3
            } else {
                out.push(b'%');
                pct + 1
            }
        } else {
            out.push(b'%');
            pct + 1
        };
        match find_byte(&bytes[start..], b'%') {
            Some(rel) => pct = start + rel,
            None => {
                out.extend_from_slice(&bytes[start..]);
                break;
            }
        }
    }
}

/// Inverse of [`pct_encode`] (allocating wrapper over [`pct_decode_cow`]).
#[cfg(test)]
fn pct_decode(s: &str) -> String {
    pct_decode_cow(s).into_owned()
}

/// A borrowed view of a submission's fields — what the client-side hot
/// path builds per delivery without owning the target URL / UA strings.
#[derive(Debug, Clone, Copy)]
pub struct SubmissionParts<'a> {
    /// Measurement ID linking init and result.
    pub measurement_id: MeasurementId,
    /// Init or result.
    pub phase: SubmissionPhase,
    /// Task outcome (None for init).
    pub outcome: Option<TaskOutcome>,
    /// Elapsed task time in milliseconds (0 for init).
    pub elapsed_ms: u64,
    /// Task mechanism.
    pub task_type: TaskType,
    /// The measured URL.
    pub target_url: &'a str,
    /// Browser user agent family.
    pub user_agent: &'a str,
    /// Near-source congestion signal observed (failures only).
    pub congested: bool,
}

impl SubmissionParts<'_> {
    /// Append the Appendix A query encoding to `out`. Byte-identical to
    /// the original `format!`-based encoder.
    pub fn write_query(&self, out: &mut String) {
        out.reserve(64 + self.target_url.len() * 3 + self.user_agent.len() * 3);
        out.push_str("cmh-id=m-");
        push_hex16(out, self.measurement_id.0);
        out.push_str("&cmh-result=");
        out.push_str(match (self.phase, self.outcome) {
            (SubmissionPhase::Init, _) => "init",
            (SubmissionPhase::Result, Some(TaskOutcome::Success)) => "success",
            (SubmissionPhase::Result, Some(TaskOutcome::Failure)) => "failure",
            (SubmissionPhase::Result, None) => "unknown",
        });
        out.push_str("&cmh-elapsed=");
        push_u64(out, self.elapsed_ms);
        out.push_str("&cmh-type=");
        out.push_str(self.task_type.as_str());
        out.push_str("&cmh-target=");
        push_pct_encoded(out, self.target_url);
        out.push_str("&cmh-ua=");
        push_pct_encoded(out, self.user_agent);
        if self.congested {
            // Appended last, and only when set: uncongested submissions
            // keep the exact six-key byte shape (and its fast parse);
            // the trailing '&' in the UA field makes the wire fast path
            // fall back to the general parser, which knows the key.
            out.push_str("&cmh-cong=1");
        }
    }

    /// [`SubmissionParts::write_query`] with the two percent-encoded
    /// fields served from `cache`. Byte-identical output; the per-byte
    /// encoder runs once per distinct target URL / user agent instead of
    /// once per submission.
    pub fn write_query_cached(&self, out: &mut String, cache: &mut EncodeCache) {
        out.reserve(64 + self.target_url.len() * 3 + self.user_agent.len() * 3);
        out.push_str("cmh-id=m-");
        push_hex16(out, self.measurement_id.0);
        out.push_str("&cmh-result=");
        out.push_str(match (self.phase, self.outcome) {
            (SubmissionPhase::Init, _) => "init",
            (SubmissionPhase::Result, Some(TaskOutcome::Success)) => "success",
            (SubmissionPhase::Result, Some(TaskOutcome::Failure)) => "failure",
            (SubmissionPhase::Result, None) => "unknown",
        });
        out.push_str("&cmh-elapsed=");
        push_u64(out, self.elapsed_ms);
        out.push_str("&cmh-type=");
        out.push_str(self.task_type.as_str());
        out.push_str("&cmh-target=");
        out.push_str(cache.encoded(self.target_url));
        out.push_str("&cmh-ua=");
        out.push_str(cache.encoded(self.user_agent));
        if self.congested {
            out.push_str("&cmh-cong=1");
        }
    }
}

/// Memo of percent-encoded forms keyed by the raw string. The submit
/// hot path encodes the same few target URLs and user agents millions
/// of times; after the first encounter of each distinct string, one
/// hash lookup replaces the per-byte encoder.
#[derive(Debug, Default)]
pub struct EncodeCache {
    map: HashMap<Box<str>, Box<str>, FxBuildHasher>,
}

impl EncodeCache {
    /// The percent-encoded form of `raw`, encoding on first sight.
    pub fn encoded(&mut self, raw: &str) -> &str {
        if !self.map.contains_key(raw) {
            let mut enc = String::new();
            push_pct_encoded(&mut enc, raw);
            self.map.insert(raw.into(), enc.into_boxed_str());
        }
        &self.map[raw]
    }
}

impl Submission {
    /// Borrowed view of this submission's fields.
    pub fn parts(&self) -> SubmissionParts<'_> {
        SubmissionParts {
            measurement_id: self.measurement_id,
            phase: self.phase,
            outcome: self.outcome,
            elapsed_ms: self.elapsed_ms,
            task_type: self.task_type,
            target_url: &self.target_url,
            user_agent: &self.user_agent,
            congested: self.congested,
        }
    }

    /// Encode as the submit URL's query parameters (Appendix A wire
    /// format).
    pub fn to_query(&self) -> String {
        let mut out = String::new();
        self.parts().write_query(&mut out);
        out
    }

    /// Decode from a submit URL. Returns `None` on malformed input (the
    /// server drops such requests).
    pub fn from_url(url: &str) -> Option<Submission> {
        let parsed = parse_submission(url)?;
        Some(Submission {
            measurement_id: parsed.measurement_id,
            phase: parsed.phase,
            outcome: parsed.outcome,
            elapsed_ms: parsed.elapsed_ms,
            task_type: parsed.task_type,
            target_url: pct_decode_cow(parsed.target_url_raw).into_owned(),
            user_agent: pct_decode_cow(parsed.user_agent_raw).into_owned(),
            congested: parsed.congested,
        })
    }
}

/// A validated submission whose target/user-agent fields are the raw,
/// still-percent-encoded query slices. Decoding them is deferred to the
/// caller — the collection server decodes into a reused scratch buffer
/// and interns the result, so its hot path never materialises an owned
/// `String`.
struct ParsedSubmission<'a> {
    measurement_id: MeasurementId,
    phase: SubmissionPhase,
    outcome: Option<TaskOutcome>,
    elapsed_ms: u64,
    task_type: TaskType,
    target_url_raw: &'a str,
    user_agent_raw: &'a str,
    congested: bool,
}

/// Fast path for the exact wire shape [`SubmissionParts::write_query`]
/// emits: the six keys in fixed order, none of the first four values
/// escaped. Any deviation returns `None` and the caller falls back to
/// the general parser — this function never *rejects* a query, so the
/// two-parser split cannot change which queries count as malformed. It
/// is handed the query *uncut* (everything after the first `'?'`), so
/// every accepted field must provably contain no `'?'`: the id is 16
/// hex digits, the literal/numeric matches reject it, and the target
/// and user agent scans fall back on it explicitly.
///
/// Equivalence with the general parser on every `Some`: literal value
/// matches (`init`, `image`, …) contain no `%`, so decoding is the
/// identity on them; `elapsed` uses the same `str::parse`; target and
/// user agent are passed through raw in both parsers; and requiring the
/// user agent (the final field) to contain no `&` rules out trailing
/// duplicate keys that the general parser would let override earlier
/// ones.
fn parse_submission_wire(q: &str) -> Option<ParsedSubmission<'_>> {
    fn split_field(s: &str) -> Option<(&str, &str)> {
        let amp = find_byte(s.as_bytes(), b'&')?;
        Some((&s[..amp], &s[amp + 1..]))
    }
    let rest = q.strip_prefix("cmh-id=m-")?;
    let hex = rest.get(..16)?;
    let measurement_id = MeasurementId(u64::from_str_radix(hex, 16).ok()?);
    let rest = rest[16..].strip_prefix("&cmh-result=")?;
    let (resval, rest) = split_field(rest)?;
    let (phase, outcome) = match resval {
        "init" => (SubmissionPhase::Init, None),
        "success" => (SubmissionPhase::Result, Some(TaskOutcome::Success)),
        "failure" => (SubmissionPhase::Result, Some(TaskOutcome::Failure)),
        _ => return None,
    };
    let rest = rest.strip_prefix("cmh-elapsed=")?;
    let (elval, rest) = split_field(rest)?;
    let elapsed_ms: u64 = elval.parse().ok()?;
    let rest = rest.strip_prefix("cmh-type=")?;
    let (tyval, rest) = split_field(rest)?;
    let task_type = match tyval {
        "image" => TaskType::Image,
        "stylesheet" => TaskType::Stylesheet,
        "iframe" => TaskType::Iframe,
        "script" => TaskType::Script,
        _ => return None,
    };
    let rest = rest.strip_prefix("cmh-target=")?;
    let (target_url_raw, user_agent_raw) = {
        // Stop at '&' like the general parser; fall back on '?' because
        // this path runs on the *uncut* query (the caller has not yet
        // trimmed at a second '?', which the general parser would).
        let amp = find_either(rest.as_bytes(), b'&', b'?')?;
        if rest.as_bytes()[amp] == b'?' {
            return None;
        }
        (&rest[..amp], rest[amp + 1..].strip_prefix("cmh-ua=")?)
    };
    if find_either(user_agent_raw.as_bytes(), b'&', b'?').is_some() {
        return None;
    }
    Some(ParsedSubmission {
        measurement_id,
        phase,
        outcome,
        elapsed_ms,
        task_type,
        target_url_raw,
        user_agent_raw,
        // The congested wire shape carries '&cmh-cong=1' after the UA,
        // which the no-'&'-in-UA rule above already rejects into the
        // general parser — this fast path only sees uncongested queries.
        congested: false,
    })
}

/// Parse a submit URL's query into a borrowed [`ParsedSubmission`].
///
/// The parser walks the query pairs once (last occurrence of a key wins,
/// pairs without `=` are skipped, unknown keys are ignored — the same
/// semantics as the original map-based parser, without the map).
fn parse_submission(url: &str) -> Option<ParsedSubmission<'_>> {
    // Byte-scan the query out of the URL (equivalent to
    // `url.split('?').nth(1)` — the segment between the first '?' and the
    // next one, if any — without the char-pattern machinery; this parser
    // runs up to twice per task).
    let bytes = url.as_bytes();
    let qstart = find_byte(bytes, b'?')? + 1;
    // Nearly every query the server sees is the exact byte shape
    // `write_query` emits; match that shape directly — on the uncut
    // remainder, skipping the second-'?' scan entirely — before falling
    // back to the order-insensitive parser below.
    if let Some(parsed) = parse_submission_wire(&url[qstart..]) {
        return Some(parsed);
    }
    let qend = find_byte(&bytes[qstart..], b'?').map_or(url.len(), |rel| qstart + rel);
    let q = &url[qstart..qend];
    let mut id = None;
    let mut result = None;
    let mut elapsed = None;
    let mut ty = None;
    let mut target = None;
    let mut ua = None;
    let mut cong = None;
    // Single pass: each query byte is examined exactly once. Pair and
    // '=' boundaries are tracked as the scan goes; a pair is processed
    // when its terminating '&' (or the end of the query) is reached.
    let qb = q.as_bytes();
    let mut i = 0;
    let mut pair_start = 0;
    let mut eq_pos = None;
    loop {
        if i == qb.len() || qb[i] == b'&' {
            if let Some(eq) = eq_pos {
                let (k, v) = (&q[pair_start..eq], &q[eq + 1..i]);
                // Keys as emitted by the client are never escaped;
                // decode only when an escape is actually present so the
                // exotic case still matches what a full decode would.
                let decoded_key;
                let key: &str = if k.as_bytes().contains(&b'%') {
                    decoded_key = pct_decode_cow(k);
                    &decoded_key
                } else {
                    k
                };
                match key {
                    "cmh-id" => id = Some(pct_decode_cow(v)),
                    "cmh-result" => result = Some(pct_decode_cow(v)),
                    "cmh-elapsed" => elapsed = Some(pct_decode_cow(v)),
                    "cmh-type" => ty = Some(pct_decode_cow(v)),
                    "cmh-target" => target = Some(v),
                    "cmh-ua" => ua = Some(v),
                    "cmh-cong" => cong = Some(pct_decode_cow(v)),
                    _ => {}
                }
            }
            if i == qb.len() {
                break;
            }
            pair_start = i + 1;
            eq_pos = None;
        } else if qb[i] == b'=' && eq_pos.is_none() {
            eq_pos = Some(i);
        }
        i += 1;
    }
    let id = id?;
    let id_hex = id.strip_prefix("m-")?;
    let measurement_id = MeasurementId(u64::from_str_radix(id_hex, 16).ok()?);
    let (phase, outcome) = match &*result? {
        "init" => (SubmissionPhase::Init, None),
        "success" => (SubmissionPhase::Result, Some(TaskOutcome::Success)),
        "failure" => (SubmissionPhase::Result, Some(TaskOutcome::Failure)),
        _ => return None,
    };
    let task_type = match &*ty? {
        "image" => TaskType::Image,
        "stylesheet" => TaskType::Stylesheet,
        "iframe" => TaskType::Iframe,
        "script" => TaskType::Script,
        _ => return None,
    };
    Some(ParsedSubmission {
        measurement_id,
        phase,
        outcome,
        elapsed_ms: elapsed?.parse().ok()?,
        task_type,
        target_url_raw: target?,
        user_agent_raw: ua.unwrap_or(""),
        congested: cong.as_deref() == Some("1"),
    })
}

/// A submission as stored server-side, enriched with connection metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredMeasurement {
    /// The submission body.
    pub submission: Submission,
    /// Source address of the connection.
    pub client_ip: Ipv4Addr,
    /// `Referer` header, if the origin site did not strip it.
    pub referer: Option<String>,
    /// Server receive time.
    pub received_at: SimTime,
}

impl StoredMeasurement {
    /// Whether this record came from automated traffic (the §6.2 campus
    /// security scanner, search-engine crawlers, …).
    pub fn is_crawler(&self) -> bool {
        let ua = self.submission.user_agent.to_ascii_lowercase();
        ua.contains("bot") || ua.contains("crawler") || ua.contains("scanner")
    }

    /// Target domain of the measurement.
    pub fn target_domain(&self) -> Option<String> {
        netsim::http::host_of(&self.submission.target_url)
    }
}

/// A plain-data snapshot of a collection store — everything the analysis
/// pipeline needs, detached from the server's `Rc`-shared live store so
/// it can cross thread boundaries and be merged across parallel shards.
///
/// Merging is defined over the *canonical order* (a total order on
/// records): [`merge`](CollectionSnapshot::merge) is associative and
/// commutative with [`CollectionSnapshot::default`] as identity, so the
/// union of per-shard stores is byte-stable no matter how the shards are
/// combined. The §7.2 detector and every report run once over the merged
/// record vector.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CollectionSnapshot {
    /// Stored records, in canonical order. Empty in streaming mode —
    /// the bounded [`StreamingStats`] state stands in for the record
    /// log (the reservoir holds a uniform sample of what the log would
    /// have contained).
    pub records: Vec<StoredMeasurement>,
    /// Malformed submissions dropped server-side.
    pub malformed: u64,
    /// Streaming-mode analytics state. `None` in exact mode, and
    /// skipped from the serialized form, so exact snapshots keep their
    /// exact bytes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub streaming: Option<StreamingStats>,
}

/// Merge two optional streaming states (associative; `None` is identity).
fn merge_streaming_opt(
    a: Option<StreamingStats>,
    b: Option<StreamingStats>,
) -> Option<StreamingStats> {
    match (a, b) {
        (Some(mut x), Some(y)) => {
            x.merge(y);
            Some(x)
        }
        (x, y) => x.or(y),
    }
}

/// The canonical total order on stored measurements: received time first
/// (the natural analysis order), then every remaining field as a
/// tie-break so the order is deterministic for any record multiset.
/// Compares by reference — no allocation per comparison, which keeps
/// canonicalisation cheap on the hot merge path.
pub(crate) fn canonical_cmp(a: &StoredMeasurement, b: &StoredMeasurement) -> std::cmp::Ordering {
    fn key(r: &StoredMeasurement) -> impl Ord + '_ {
        let s = &r.submission;
        (
            r.received_at,
            u32::from(r.client_ip),
            s.measurement_id,
            s.phase,
            s.outcome,
            s.task_type,
            s.elapsed_ms,
            s.target_url.as_str(),
            s.user_agent.as_str(),
            r.referer.as_deref(),
            s.congested,
        )
    }
    key(a).cmp(&key(b))
}

impl CollectionSnapshot {
    /// Sort the records into canonical order. The stable sort is
    /// adaptive, so re-canonicalising a concatenation of already-sorted
    /// runs (the merge path) costs close to one linear pass.
    pub fn canonicalize(&mut self) {
        self.records.sort_by(canonical_cmp);
    }

    /// Merge another snapshot into this one. Associative and commutative
    /// over canonicalised snapshots, with the empty snapshot as identity.
    pub fn merge(mut self, other: &CollectionSnapshot) -> CollectionSnapshot {
        self.records.extend(other.records.iter().cloned());
        self.malformed += other.malformed;
        self.streaming = merge_streaming_opt(self.streaming.take(), other.streaming.clone());
        self.canonicalize();
        self
    }

    /// [`merge`](Self::merge) without the clone: consumes `other`,
    /// moving its records. Prefer this wherever the other snapshot is
    /// owned — on transport-sized stores the record clone costs more
    /// than the binary codec that delivered them.
    pub fn merge_owned(mut self, other: CollectionSnapshot) -> CollectionSnapshot {
        self.malformed += other.malformed;
        self.streaming = merge_streaming_opt(self.streaming.take(), other.streaming);
        // Ordered-append fast path: both inputs are canonical (the
        // documented precondition), so when all of `other` sorts
        // at-or-after all of `self` — every chunk of a shard's in-order
        // record stream — concatenation IS the canonical order and the
        // re-sort is skipped. Keeps the streaming coordinator's
        // per-chunk fold linear instead of sorting per chunk.
        match (self.records.last(), other.records.first()) {
            (Some(a), Some(b)) if canonical_cmp(a, b) != std::cmp::Ordering::Greater => {
                self.records.extend(other.records);
            }
            (None, _) => self.records = other.records,
            (_, None) => {}
            _ => {
                self.records.extend(other.records);
                self.canonicalize();
            }
        }
        self
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct client IPs across the records.
    pub fn distinct_ips(&self) -> usize {
        let mut ips: Vec<_> = self.records.iter().map(|r| r.client_ip).collect();
        ips.sort();
        ips.dedup();
        ips.len()
    }
}

/// Append the full submit URL (`http://<domain>/submit?<query>`) to
/// `out` — the zero-intermediate-allocation form the delivery hot path
/// uses with a reused buffer.
pub fn write_submit_url(out: &mut String, domain: &str, parts: &SubmissionParts<'_>) {
    out.push_str("http://");
    out.push_str(domain);
    out.push_str("/submit?");
    parts.write_query(out);
}

/// [`write_submit_url`] with the encoded fields served from `cache`.
pub fn write_submit_url_cached(
    out: &mut String,
    domain: &str,
    parts: &SubmissionParts<'_>,
    cache: &mut EncodeCache,
) {
    out.push_str("http://");
    out.push_str(domain);
    out.push_str("/submit?");
    parts.write_query_cached(out, cache);
}

/// A stored measurement in the server's internal, interned form: every
/// string field (target URL, user agent, referer) is a dense [`Sym`] into
/// the store's shared table. The visit hot path pushes a couple of these
/// per visit; with the working set of distinct strings interned after the
/// first few submissions, a push performs no string allocation at all.
/// [`Store::resolve`] rehydrates the public [`StoredMeasurement`] form at
/// snapshot time, off the hot path.
#[derive(Debug, Clone)]
struct RawRecord {
    measurement_id: MeasurementId,
    phase: SubmissionPhase,
    outcome: Option<TaskOutcome>,
    elapsed_ms: u64,
    task_type: TaskType,
    congested: bool,
    target_url: Sym,
    user_agent: Sym,
    client_ip: Ipv4Addr,
    referer: Option<Sym>,
    received_at: SimTime,
}

/// Per-`(domain, client_ip)` counting state of one open window: the
/// streaming form of `build_matrix`'s `per_ip` map plus the cell the
/// capped records fold into.
#[derive(Debug, Default, Clone, Copy)]
struct IpCell {
    /// Countable records seen (stops advancing at the per-ip cap, like
    /// the exact detector's first-k rule).
    seen: u64,
    /// Records counted (≤ cap).
    n: u64,
    /// Successes among `n`.
    x: u64,
}

/// One still-open detection window: submissions fold in as they arrive;
/// IPs resolve to countries only when the window closes (the engine
/// passes the allocator's resolver at rollup time).
#[derive(Debug)]
struct OpenWindow {
    window: u64,
    /// Result-phase submissions, before filters.
    measurements: u64,
    cells: HashMap<(Sym, Ipv4Addr), IpCell, FxBuildHasher>,
    /// Hashes of exact wire tuples already accepted this window.
    dedup: HashSet<u64, FxBuildHasher>,
}

/// The collection server's bounded streaming state (`Store.streaming`).
#[derive(Debug)]
struct StreamingState {
    window_micros: u64,
    dedup: bool,
    exclude_crawlers: bool,
    max_per_ip: Option<u64>,
    discount_congestion: bool,
    /// Priority stream for the reservoir (split per shard; the sample
    /// merge is a union, so streams need not match across shards).
    rng: SimRng,
    sketch: CountMinSketch,
    reservoir_capacity: u64,
    reservoir_seen: u64,
    /// Kept ascending by priority (ties broken by receive order).
    reservoir: Vec<(u64, RawRecord)>,
    queue: IngestQueue,
    drops: DropCounters,
    accepted: u64,
    /// Windows below this index are closed and folded; late submissions
    /// for them are dropped as `expired`.
    watermark: u64,
    /// Open windows, sorted by index (at most ~2 between rollups).
    open: Vec<OpenWindow>,
    /// Closed windows, sorted by index.
    closed: Vec<WindowCells>,
    /// Memo: target-URL sym → its domain's sym (None if the URL has no
    /// host). Bounded by distinct target URLs.
    domain_of: HashMap<Sym, Option<Sym>, FxBuildHasher>,
    /// Memo: user-agent sym → crawler flag. Bounded by distinct UAs.
    crawler_of: HashMap<Sym, bool, FxBuildHasher>,
}

impl StreamingState {
    fn new(cfg: &StreamingConfig, sketch_seed: u64, rng: SimRng) -> StreamingState {
        StreamingState {
            window_micros: cfg.window.as_micros().max(1),
            dedup: cfg.dedup,
            exclude_crawlers: cfg.exclude_crawlers,
            max_per_ip: cfg.max_per_ip,
            discount_congestion: cfg.discount_congestion,
            rng,
            sketch: CountMinSketch::new(cfg.sketch_depth, cfg.sketch_width, sketch_seed),
            reservoir_capacity: cfg.reservoir,
            reservoir_seen: 0,
            reservoir: Vec::new(),
            queue: IngestQueue::new(cfg.queue_capacity, cfg.drain_per_sec),
            drops: DropCounters::default(),
            accepted: 0,
            watermark: 0,
            open: Vec::new(),
            closed: Vec::new(),
            domain_of: HashMap::default(),
            crawler_of: HashMap::default(),
        }
    }

    fn open_window_mut(&mut self, window: u64) -> &mut OpenWindow {
        let i = match self.open.binary_search_by_key(&window, |w| w.window) {
            Ok(i) => i,
            Err(i) => {
                self.open.insert(
                    i,
                    OpenWindow {
                        window,
                        measurements: 0,
                        cells: HashMap::default(),
                        dedup: HashSet::default(),
                    },
                );
                i
            }
        };
        &mut self.open[i]
    }
}

/// Hash of a submission's full wire identity (every parsed field plus
/// connection metadata), computed on the borrowed view — the duplicate
/// gate compares these without allocating. A 64-bit collision silently
/// drops one submission; at sim scales (≪ 2³²) that is beyond
/// vanishing, and dedup is switchable off.
fn dedup_key(parsed: &ParsedSubmission<'_>, ip: Ipv4Addr, now: SimTime) -> u64 {
    let mut h = seeded_hash(0x00D5_D00D_F00D_0001, parsed.target_url_raw.as_bytes());
    h = seeded_hash(h, parsed.user_agent_raw.as_bytes());
    h = splitmix_mix(h ^ parsed.measurement_id.0);
    h = splitmix_mix(h ^ u64::from(u32::from(ip)));
    h = splitmix_mix(h ^ now.as_micros());
    h = splitmix_mix(h ^ parsed.elapsed_ms);
    let outcome_tag = match parsed.outcome {
        None => 0u64,
        Some(TaskOutcome::Success) => 1,
        Some(TaskOutcome::Failure) => 2,
    };
    let tag = (parsed.phase as u64)
        | ((parsed.task_type as u64) << 8)
        | (outcome_tag << 16)
        | ((parsed.congested as u64) << 24);
    splitmix_mix(h ^ tag)
}

/// The tiny CORS-permissive response every accepted submission gets
/// (shared by the exact and streaming paths so opting into streaming
/// cannot change response bytes or timing for accepted traffic).
fn accepted_response() -> HttpResponse {
    let mut resp = HttpResponse::ok(ContentType::Other, 2).no_store();
    resp.extra_headers
        .push(("Access-Control-Allow-Origin".into(), "*".into()));
    resp
}

/// 503 backpressure: the ingest queue is full and this submission is
/// shed. Clients react exactly as to any failed submit — they try the
/// collector mirrors, which share the store (and therefore the queue),
/// so a saturated collector sheds deterministically.
fn overloaded_response() -> HttpResponse {
    let mut resp = HttpResponse::ok(ContentType::Other, 2).no_store();
    resp.status = StatusCode(503);
    resp
}

#[derive(Debug, Default)]
struct Store {
    strings: Interner,
    records: Vec<RawRecord>,
    malformed: u64,
    /// Reused percent-decode buffer: the handler decodes each escaped
    /// field here and interns the result, so steady-state submission
    /// handling performs no heap allocation.
    decode_scratch: String,
    /// Memo from a field's *raw* (still-escaped) query slice to the sym
    /// of its decoded form — repeat submissions skip the decode and the
    /// intern hash of the longer decoded string entirely.
    raw_syms: HashMap<Box<str>, Sym, FxBuildHasher>,
    /// Bounded-memory mode: when set, accepted submissions fold into
    /// sketches/reservoirs/window cells instead of `records`.
    streaming: Option<Box<StreamingState>>,
}

/// [`Store::sym_for_raw`] over destructured fields, so the streaming
/// ingest path can hold the streaming state and the interner borrowed
/// at once.
fn sym_for_raw_in(
    strings: &mut Interner,
    decode_scratch: &mut String,
    raw_syms: &mut HashMap<Box<str>, Sym, FxBuildHasher>,
    raw: &str,
) -> Sym {
    if let Some(&sym) = raw_syms.get(raw) {
        return sym;
    }
    pct_decode_into(decode_scratch, raw);
    let sym = strings.intern(decode_scratch);
    raw_syms.insert(raw.into(), sym);
    sym
}

impl Store {
    /// Sym of the decoded form of a raw (possibly escaped) field value,
    /// memoised by the raw text. Decoding is deterministic, so serving a
    /// memo is observationally identical to decode-then-intern; two raw
    /// spellings of the same decoded string still collapse to one sym
    /// via the interner.
    fn sym_for_raw(&mut self, raw: &str) -> Sym {
        sym_for_raw_in(
            &mut self.strings,
            &mut self.decode_scratch,
            &mut self.raw_syms,
            raw,
        )
    }

    /// Streaming-mode ingest. The rejection gates (queue admission,
    /// parse, expiry, dedup) all run on the borrowed wire view — no
    /// interning, decoding into owned strings, or record construction
    /// happens until a submission is definitely accepted, so rejected
    /// and duplicate traffic allocates nothing and grows nothing.
    fn ingest_streaming(
        &mut self,
        req: &HttpRequest,
        client_ip: Ipv4Addr,
        now: SimTime,
    ) -> HttpResponse {
        {
            let st = self.streaming.as_mut().expect("streaming enabled");
            // Gate 1: bounded queue. On overload the server sheds with
            // a 503 before even parsing; the congestion split peeks at
            // the raw query (the flag's wire form is unambiguous).
            if !st.queue.admit(now) {
                st.drops.queue_full += 1;
                if req.url.contains("cmh-cong=1") {
                    st.drops.queue_full_congested += 1;
                }
                return overloaded_response();
            }
        }
        // Gate 2: parse (borrowed view; same acceptance set as exact).
        let Some(parsed) = parse_submission(&req.url) else {
            self.malformed += 1;
            return HttpResponse::not_found();
        };
        {
            let st = self.streaming.as_mut().expect("streaming enabled");
            let window = now.as_micros() / st.window_micros;
            // Gate 3: expired — the window was already closed and
            // folded. Acknowledged (the client did nothing wrong and
            // must not retry mirrors) but counted and discarded.
            if window < st.watermark {
                st.drops.expired += 1;
                return accepted_response();
            }
            // Gate 4: exact wire duplicate within its open window.
            // Idempotent-accept semantics: acknowledged, not re-counted.
            if st.dedup {
                let key = dedup_key(&parsed, client_ip, now);
                if !st.open_window_mut(window).dedup.insert(key) {
                    st.drops.duplicate += 1;
                    return accepted_response();
                }
            }
        }
        // Accepted: from here on interning/allocation is fine.
        let Store {
            strings,
            decode_scratch,
            raw_syms,
            streaming,
            ..
        } = self;
        let st = streaming.as_mut().expect("streaming enabled");
        let target_url = sym_for_raw_in(strings, decode_scratch, raw_syms, parsed.target_url_raw);
        let user_agent = sym_for_raw_in(strings, decode_scratch, raw_syms, parsed.user_agent_raw);
        let referer = req.referer.as_deref().map(|r| strings.intern(r));
        st.accepted += 1;

        // Per-URL / per-origin tallies.
        st.sketch.add_ns(
            CountMinSketch::NS_URL,
            strings.resolve(target_url).as_bytes(),
            1,
        );
        if let Some(origin) = referer {
            st.sketch.add_ns(
                CountMinSketch::NS_ORIGIN,
                strings.resolve(origin).as_bytes(),
                1,
            );
        }

        // Detector-equivalent window fold: the filter cascade below is
        // `FilteringDetector::build_matrix` verbatim (phase → crawler →
        // outcome → congestion discount → domain → per-ip cap), applied
        // at ingest because the raw record will not exist at detect
        // time. Country resolution (which exact mode applies just
        // before the cap) is deferred to window close; with the
        // engine's zero-error GeoDb the two orderings count the same
        // records.
        let domain = *st.domain_of.entry(target_url).or_insert_with(|| {
            netsim::http::host_of(strings.resolve(target_url)).map(|d| strings.intern(&d))
        });
        let crawler = *st.crawler_of.entry(user_agent).or_insert_with(|| {
            let ua = strings.resolve(user_agent).to_ascii_lowercase();
            ua.contains("bot") || ua.contains("crawler") || ua.contains("scanner")
        });
        let window = now.as_micros() / st.window_micros;
        let exclude_crawlers = st.exclude_crawlers;
        let discount_congestion = st.discount_congestion;
        let max_per_ip = st.max_per_ip;
        let open = st.open_window_mut(window);
        if parsed.phase == SubmissionPhase::Result {
            open.measurements += 1;
        }
        let countable = parsed.phase == SubmissionPhase::Result
            && !(exclude_crawlers && crawler)
            && parsed.outcome.is_some()
            && !(discount_congestion
                && parsed.outcome == Some(TaskOutcome::Failure)
                && parsed.congested);
        if countable {
            if let Some(domain) = domain {
                let cell = open.cells.entry((domain, client_ip)).or_default();
                let under_cap = max_per_ip.is_none_or(|cap| cell.seen < cap);
                if under_cap {
                    cell.seen += 1;
                    cell.n += 1;
                    if parsed.outcome == Some(TaskOutcome::Success) {
                        cell.x += 1;
                    }
                }
            }
        }

        // Reservoir: one priority draw per accepted submission; the
        // record is only materialised if it enters the sample.
        st.reservoir_seen += 1;
        let priority = st.rng.next_u64();
        let full = st.reservoir.len() as u64 >= st.reservoir_capacity;
        let admit = !full || st.reservoir.last().is_some_and(|(max, _)| priority < *max);
        if admit && st.reservoir_capacity > 0 {
            let record = RawRecord {
                measurement_id: parsed.measurement_id,
                phase: parsed.phase,
                outcome: parsed.outcome,
                elapsed_ms: parsed.elapsed_ms,
                task_type: parsed.task_type,
                congested: parsed.congested,
                target_url,
                user_agent,
                client_ip,
                referer,
                received_at: now,
            };
            let at = st.reservoir.partition_point(|(p, _)| *p <= priority);
            st.reservoir.insert(at, (priority, record));
            st.reservoir.truncate(st.reservoir_capacity as usize);
        }
        accepted_response()
    }

    /// Close every open window below `boundary`, resolving client IPs
    /// to countries with `resolve` and folding the per-ip cells into
    /// the sorted `(domain, country)` matrix the detector consumes.
    /// Folding is additive, so the hash-map iteration order cannot
    /// affect the result.
    fn close_windows_below(
        &mut self,
        boundary: u64,
        resolve: &mut dyn FnMut(Ipv4Addr) -> Option<CountryCode>,
    ) {
        let Store {
            strings, streaming, ..
        } = self;
        let Some(st) = streaming.as_mut() else {
            return;
        };
        st.watermark = st.watermark.max(boundary);
        while let Some(pos) = st.open.iter().position(|w| w.window < boundary) {
            let ow = st.open.remove(pos);
            let mut folded: BTreeMap<(String, CountryCode), (u64, u64)> = BTreeMap::new();
            for ((domain, ip), cell) in ow.cells {
                if cell.n == 0 {
                    continue;
                }
                let Some(country) = resolve(ip) else {
                    continue;
                };
                let entry = folded
                    .entry((strings.resolve(domain).to_string(), country))
                    .or_default();
                entry.0 += cell.n;
                entry.1 += cell.x;
            }
            let wc = WindowCells {
                window: ow.window,
                measurements: ow.measurements,
                cells: folded
                    .into_iter()
                    .map(|((domain, country), (n, x))| CellEntry {
                        domain,
                        country,
                        n,
                        x,
                    })
                    .collect(),
            };
            match st.closed.binary_search_by_key(&wc.window, |c| c.window) {
                Ok(i) => st.closed[i].merge(wc),
                Err(i) => st.closed.insert(i, wc),
            }
        }
    }

    /// The serialisable streaming state (closed windows only — callers
    /// close open windows first; the engine does so in `finish`).
    fn streaming_stats(&self) -> Option<StreamingStats> {
        let st = self.streaming.as_deref()?;
        let mut entries: Vec<ReservoirEntry> = st
            .reservoir
            .iter()
            .map(|(priority, r)| ReservoirEntry {
                priority: *priority,
                record: self.resolve(r),
            })
            .collect();
        entries.sort_by(|a, b| {
            a.priority
                .cmp(&b.priority)
                .then_with(|| canonical_cmp(&a.record, &b.record))
        });
        Some(StreamingStats {
            window_micros: st.window_micros,
            accepted: st.accepted,
            sketch: st.sketch.clone(),
            reservoir: ReservoirSample {
                capacity: st.reservoir_capacity,
                seen: st.reservoir_seen,
                entries,
            },
            windows: st.closed.clone(),
            drops: st.drops,
        })
    }

    /// Rehydrate an interned record into the public owned form.
    fn resolve(&self, r: &RawRecord) -> StoredMeasurement {
        StoredMeasurement {
            submission: Submission {
                measurement_id: r.measurement_id,
                phase: r.phase,
                outcome: r.outcome,
                elapsed_ms: r.elapsed_ms,
                task_type: r.task_type,
                target_url: self.strings.resolve(r.target_url).to_string(),
                user_agent: self.strings.resolve(r.user_agent).to_string(),
                congested: r.congested,
            },
            client_ip: r.client_ip,
            referer: r.referer.map(|s| self.strings.resolve(s).to_string()),
            received_at: r.received_at,
        }
    }
}

/// The collection server: an HTTP endpoint accumulating submissions.
#[derive(Clone)]
pub struct CollectionServer {
    /// DNS name clients submit to.
    pub domain: String,
    store: Rc<RefCell<Store>>,
}

struct CollectorHandler {
    store: Rc<RefCell<Store>>,
}

impl HttpHandler for CollectorHandler {
    fn handle(&self, req: &HttpRequest, client_ip: Ipv4Addr, now: SimTime) -> HttpResponse {
        if !req.path().starts_with("/submit") {
            return HttpResponse::not_found();
        }
        if self.store.borrow().streaming.is_some() {
            return self
                .store
                .borrow_mut()
                .ingest_streaming(req, client_ip, now);
        }
        match parse_submission(&req.url) {
            Some(parsed) => {
                let mut store = self.store.borrow_mut();
                let target_url = store.sym_for_raw(parsed.target_url_raw);
                let user_agent = store.sym_for_raw(parsed.user_agent_raw);
                let referer = req.referer.as_deref().map(|r| store.strings.intern(r));
                store.records.push(RawRecord {
                    measurement_id: parsed.measurement_id,
                    phase: parsed.phase,
                    outcome: parsed.outcome,
                    elapsed_ms: parsed.elapsed_ms,
                    task_type: parsed.task_type,
                    congested: parsed.congested,
                    target_url,
                    user_agent,
                    client_ip,
                    referer,
                    received_at: now,
                });
                // Tiny CORS-permissive 204-ish response.
                accepted_response()
            }
            None => {
                self.store.borrow_mut().malformed += 1;
                HttpResponse::not_found()
            }
        }
    }
}

impl CollectionServer {
    /// Create a collection service for `domain`.
    pub fn new(domain: impl Into<String>) -> CollectionServer {
        CollectionServer {
            domain: domain.into(),
            store: Rc::new(RefCell::new(Store::default())),
        }
    }

    /// Register the endpoint in the network (hosted in `country`).
    pub fn install(&self, net: &mut Network, country: CountryCode) {
        net.add_server(
            &self.domain,
            country,
            Box::new(CollectorHandler {
                store: Rc::clone(&self.store),
            }),
        );
    }

    /// Register an additional mirror domain sharing the same store (§8:
    /// "collection of the results could be distributed across servers
    /// hosted in different domains").
    pub fn install_mirror(&self, net: &mut Network, mirror_domain: &str, country: CountryCode) {
        net.add_server(
            mirror_domain,
            country,
            Box::new(CollectorHandler {
                store: Rc::clone(&self.store),
            }),
        );
    }

    /// The submit URL for a submission (against the primary domain).
    pub fn submit_url(&self, sub: &Submission) -> String {
        let mut url = String::new();
        write_submit_url(&mut url, &self.domain, &sub.parts());
        url
    }

    /// The submit URL against an arbitrary (mirror) domain.
    pub fn submit_url_via(&self, domain: &str, sub: &Submission) -> String {
        let mut url = String::new();
        write_submit_url(&mut url, domain, &sub.parts());
        url
    }

    /// Switch this server into bounded streaming mode. Must be called
    /// before any submission arrives; `sketch_seed` must be identical
    /// on every shard (it defines the sketch's hash functions, which
    /// element-wise merging relies on), while `rng` should be a
    /// per-shard fork (reservoir priority streams merge by union).
    pub fn enable_streaming(&self, cfg: &StreamingConfig, sketch_seed: u64, rng: SimRng) {
        let mut store = self.store.borrow_mut();
        assert!(
            store.records.is_empty(),
            "enable_streaming must precede ingest"
        );
        store.streaming = Some(Box::new(StreamingState::new(cfg, sketch_seed, rng)));
    }

    /// Whether this server is in streaming mode.
    pub fn streaming_enabled(&self) -> bool {
        self.store.borrow().streaming.is_some()
    }

    /// Close all detection windows that end at or before `up_to`,
    /// resolving client IPs to countries with `resolve`. The engine
    /// calls this as sim time crosses rollup boundaries; submissions
    /// arriving for a closed window afterwards are dropped as expired.
    /// No-op in exact mode.
    pub fn close_windows(
        &self,
        up_to: SimTime,
        mut resolve: impl FnMut(Ipv4Addr) -> Option<CountryCode>,
    ) {
        let mut store = self.store.borrow_mut();
        let Some(st) = store.streaming.as_deref() else {
            return;
        };
        let boundary = up_to.as_micros() / st.window_micros;
        store.close_windows_below(boundary, &mut resolve);
    }

    /// Close every window, open or not (end of run). No-op in exact mode.
    pub fn close_all_windows(&self, mut resolve: impl FnMut(Ipv4Addr) -> Option<CountryCode>) {
        self.store
            .borrow_mut()
            .close_windows_below(u64::MAX, &mut resolve);
    }

    /// Per-cause drop counters (zero in exact mode, which never drops).
    pub fn drops(&self) -> DropCounters {
        self.store
            .borrow()
            .streaming
            .as_deref()
            .map(|st| st.drops)
            .unwrap_or_default()
    }

    /// Approximate resident bytes of the analytics state: in exact mode
    /// the record log (which grows with every visit); in streaming mode
    /// the sketch + reservoir + window cells + open-window state (which
    /// do not). The `memory_scale` gate graphs this across visit counts.
    pub fn resident_analytics_bytes(&self) -> usize {
        let store = self.store.borrow();
        match store.streaming.as_deref() {
            None => store.records.capacity() * std::mem::size_of::<RawRecord>(),
            Some(st) => {
                let open: usize = st
                    .open
                    .iter()
                    .map(|w| {
                        w.cells.len()
                            * (std::mem::size_of::<(Sym, Ipv4Addr)>()
                                + std::mem::size_of::<IpCell>())
                            + w.dedup.len() * std::mem::size_of::<u64>()
                    })
                    .sum();
                let closed: usize = st
                    .closed
                    .iter()
                    .map(|w| {
                        std::mem::size_of::<WindowCells>()
                            + w.cells
                                .iter()
                                .map(|c| std::mem::size_of::<CellEntry>() + c.domain.len())
                                .sum::<usize>()
                    })
                    .sum();
                st.sketch.resident_bytes()
                    + st.reservoir.capacity() * std::mem::size_of::<(u64, RawRecord)>()
                    + open
                    + closed
            }
        }
    }

    /// Snapshot of all stored records (resolving interned strings back to
    /// owned form — serialization and analysis see the same bytes as the
    /// pre-interning store produced). In streaming mode the record log
    /// does not exist; this returns the reservoir sample's records in
    /// canonical order.
    pub fn records(&self) -> Vec<StoredMeasurement> {
        let store = self.store.borrow();
        if let Some(st) = store.streaming.as_deref() {
            let mut records: Vec<StoredMeasurement> =
                st.reservoir.iter().map(|(_, r)| store.resolve(r)).collect();
            records.sort_by(canonical_cmp);
            return records;
        }
        store.records.iter().map(|r| store.resolve(r)).collect()
    }

    /// Detach a canonical, thread-portable snapshot of the store (records
    /// plus the malformed counter) for merging and analysis. In streaming
    /// mode `records` is empty and `streaming` carries the bounded state;
    /// only windows already closed are included, so callers close windows
    /// (the engine's `finish` does) before snapshotting.
    pub fn snapshot(&self) -> CollectionSnapshot {
        let store = self.store.borrow();
        if let Some(stats) = store.streaming_stats() {
            return CollectionSnapshot {
                records: Vec::new(),
                malformed: store.malformed,
                streaming: Some(stats),
            };
        }
        let mut snap = CollectionSnapshot {
            records: store.records.iter().map(|r| store.resolve(r)).collect(),
            malformed: store.malformed,
            streaming: None,
        };
        snap.canonicalize();
        snap
    }

    /// Number of stored records; in streaming mode, the number of
    /// accepted submissions (the record log's length had it existed,
    /// minus drops — identical whenever nothing was dropped).
    pub fn len(&self) -> usize {
        let store = self.store.borrow();
        match store.streaming.as_deref() {
            Some(st) => st.accepted as usize,
            None => store.records.len(),
        }
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of malformed submissions dropped.
    pub fn malformed(&self) -> u64 {
        self.store.borrow().malformed
    }

    /// Distinct client IPs seen (the paper reports "88,260 distinct
    /// IPs").
    pub fn distinct_ips(&self) -> usize {
        let mut ips: Vec<_> = self
            .store
            .borrow()
            .records
            .iter()
            .map(|r| r.client_ip)
            .collect();
        ips.sort();
        ips.dedup();
        ips.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::{country, IspClass, World};
    use sim_core::SimRng;

    fn submission() -> Submission {
        Submission {
            measurement_id: MeasurementId(0xAB),
            phase: SubmissionPhase::Result,
            outcome: Some(TaskOutcome::Failure),
            elapsed_ms: 1_234,
            task_type: TaskType::Image,
            target_url: "http://youtube.com/favicon.ico".into(),
            user_agent: "Chrome".into(),
            congested: false,
        }
    }

    #[test]
    fn submission_roundtrips_through_url() {
        let s = submission();
        let url = format!("http://collector.example/submit?{}", s.to_query());
        let back = Submission::from_url(&url).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn init_phase_roundtrips() {
        let s = Submission {
            phase: SubmissionPhase::Init,
            outcome: None,
            elapsed_ms: 0,
            ..submission()
        };
        let url = format!("http://c/submit?{}", s.to_query());
        assert_eq!(
            Submission::from_url(&url).unwrap().phase,
            SubmissionPhase::Init
        );
    }

    #[test]
    fn congested_submission_roundtrips_and_plain_wire_is_unchanged() {
        let plain = submission();
        assert!(
            !plain.to_query().contains("cmh-cong"),
            "uncongested submissions must keep the pre-congestion bytes"
        );
        let congested = Submission {
            congested: true,
            ..submission()
        };
        let q = congested.to_query();
        assert!(q.ends_with("&cmh-cong=1"));
        let back = Submission::from_url(&format!("http://c/submit?{q}")).unwrap();
        assert_eq!(congested, back);
    }

    #[test]
    fn server_stores_congested_flag() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let sub = Submission {
            congested: true,
            ..submission()
        };
        let url = server.submit_url(&sub);
        net.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        assert_eq!(server.len(), 1);
        assert!(server.records()[0].submission.congested);
    }

    #[test]
    fn malformed_submissions_rejected() {
        assert!(Submission::from_url("http://c/submit?cmh-id=garbage").is_none());
        assert!(Submission::from_url("http://c/submit").is_none());
        assert!(Submission::from_url("http://c/submit?cmh-id=m-00ff&cmh-result=banana").is_none());
    }

    #[test]
    fn pct_encoding_roundtrip() {
        let s = "http://a.com/x?q=1&r=%20";
        assert_eq!(pct_decode(&pct_encode(s)), s);
        assert_eq!(pct_encode("a b"), "a%20b");
    }

    #[test]
    fn server_stores_submissions_over_the_network() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.encore-repro.net");
        server.install(&mut net, country("US"));
        let client = net.add_client(country("PK"), IspClass::Residential);
        let mut rng = SimRng::new(1);

        let url = server.submit_url(&submission());
        let req = HttpRequest::get(&url).with_referer("http://origin.example/");
        let out = net.fetch(&client, &req, SimTime::from_secs(10), &mut rng);
        assert!(out.result.is_ok());

        assert_eq!(server.len(), 1);
        let rec = &server.records()[0];
        assert_eq!(rec.client_ip, client.ip);
        assert_eq!(rec.referer.as_deref(), Some("http://origin.example/"));
        assert_eq!(rec.received_at, SimTime::from_secs(10));
        assert_eq!(rec.submission.outcome, Some(TaskOutcome::Failure));
        assert_eq!(rec.target_domain().as_deref(), Some("youtube.com"));
    }

    #[test]
    fn server_counts_malformed() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        net.fetch(
            &client,
            &HttpRequest::get("http://collector.example/submit?junk=1"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(server.len(), 0);
        assert_eq!(server.malformed(), 1);
    }

    #[test]
    fn mirror_shares_the_store() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        server.install_mirror(&mut net, "mirror.example", country("DE"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let url = server.submit_url_via("mirror.example", &submission());
        net.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        assert_eq!(server.len(), 1);
    }

    fn stored(id: u64, ip: [u8; 4], at: u64) -> StoredMeasurement {
        StoredMeasurement {
            submission: Submission {
                measurement_id: MeasurementId(id),
                ..submission()
            },
            client_ip: Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3]),
            referer: None,
            received_at: SimTime::from_secs(at),
        }
    }

    use sim_core::SimTime;
    use std::net::Ipv4Addr;

    #[test]
    fn snapshot_captures_records_and_malformed() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let url = server.submit_url(&submission());
        net.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        net.fetch(
            &client,
            &HttpRequest::get("http://collector.example/submit?junk=1"),
            SimTime::ZERO,
            &mut rng,
        );
        let snap = server.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.malformed, 1);
        assert_eq!(snap.distinct_ips(), 1);
    }

    #[test]
    fn snapshot_merge_is_order_insensitive() {
        let a = CollectionSnapshot {
            records: vec![stored(2, [100, 0, 0, 9], 5), stored(1, [100, 0, 0, 9], 5)],
            malformed: 1,
            streaming: None,
        };
        let b = CollectionSnapshot {
            records: vec![stored(3, [100, 1, 0, 9], 2)],
            malformed: 2,
            streaming: None,
        };
        let ab = a.clone().merge(&b);
        let ba = b.clone().merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.malformed, 3);
        // Canonical order: received time first.
        assert_eq!(ab.records[0].submission.measurement_id, MeasurementId(3));
        // Identity element.
        assert_eq!(a.clone().merge(&CollectionSnapshot::default()), {
            let mut c = a.clone();
            c.canonicalize();
            c
        });
    }

    #[test]
    fn crawler_detection() {
        let rec = StoredMeasurement {
            submission: Submission {
                user_agent: "SecurityScanner/2.0".into(),
                ..submission()
            },
            client_ip: Ipv4Addr::new(100, 0, 0, 9),
            referer: None,
            received_at: SimTime::ZERO,
        };
        assert!(rec.is_crawler());
        let human = StoredMeasurement {
            submission: submission(),
            client_ip: Ipv4Addr::new(100, 0, 0, 9),
            referer: None,
            received_at: SimTime::ZERO,
        };
        assert!(!human.is_crawler());
    }

    fn streaming_server(net: &mut Network, cfg: &StreamingConfig) -> CollectionServer {
        let server = CollectionServer::new("collector.example");
        server.install(net, country("US"));
        server.enable_streaming(cfg, 0x00C0_FFEE, SimRng::new(99));
        server
    }

    #[test]
    fn streaming_counts_accepted_and_samples() {
        let mut net = Network::ideal(World::builtin());
        let server = streaming_server(&mut net, &StreamingConfig::default());
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        for i in 0..5u64 {
            let sub = Submission {
                measurement_id: MeasurementId(i),
                ..submission()
            };
            let url = server.submit_url(&sub);
            net.fetch(
                &client,
                &HttpRequest::get(&url),
                SimTime::from_secs(i),
                &mut rng,
            );
        }
        assert!(server.streaming_enabled());
        assert_eq!(server.len(), 5, "len() counts accepted submissions");
        assert_eq!(server.records().len(), 5, "reservoir holds the sample");
        let snap = server.snapshot();
        let stats = snap.streaming.expect("streaming stats");
        assert_eq!(stats.accepted, 5);
        assert_eq!(stats.reservoir.seen, 5);
        assert_eq!(
            stats
                .sketch
                .estimate_ns(CountMinSketch::NS_URL, b"http://youtube.com/favicon.ico"),
            5
        );
        assert!(snap.records.is_empty(), "no record log in streaming mode");
        assert_eq!(stats.drops.total(), 0);
    }

    #[test]
    fn streaming_duplicate_rejected_without_growth() {
        let mut net = Network::ideal(World::builtin());
        let server = streaming_server(&mut net, &StreamingConfig::default());
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let url = server.submit_url(&submission());
        // Same wire tuple, same instant, same ip: the second is an exact
        // duplicate and must be acknowledged but not re-counted.
        net.fetch(
            &client,
            &HttpRequest::get(&url),
            SimTime::from_secs(3),
            &mut rng,
        );
        let before = server.snapshot();
        let out = net.fetch(
            &client,
            &HttpRequest::get(&url),
            SimTime::from_secs(3),
            &mut rng,
        );
        assert!(out.result.is_ok_and(|r| r.status.is_success()));
        let after = server.snapshot();
        assert_eq!(server.drops().duplicate, 1);
        assert_eq!(after.streaming.as_ref().unwrap().accepted, 1);
        assert_eq!(
            before.streaming.as_ref().unwrap().sketch,
            after.streaming.as_ref().unwrap().sketch,
            "a rejected duplicate must not touch the analytics state"
        );
        // A later identical tuple at a different instant is NOT a
        // duplicate (received_at is part of the wire identity).
        net.fetch(
            &client,
            &HttpRequest::get(&url),
            SimTime::from_secs(4),
            &mut rng,
        );
        assert_eq!(server.len(), 2);
    }

    #[test]
    fn streaming_expired_submissions_dropped() {
        let mut net = Network::ideal(World::builtin());
        let cfg = StreamingConfig::with_window(sim_core::SimDuration::from_secs(10));
        let server = streaming_server(&mut net, &cfg);
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let url = server.submit_url(&submission());
        net.fetch(
            &client,
            &HttpRequest::get(&url),
            SimTime::from_secs(5),
            &mut rng,
        );
        // Close windows [0, 10): watermark advances past window 0.
        server.close_windows(SimTime::from_secs(10), |_| Some(country("US")));
        // A straggler for the closed window arrives afterwards.
        net.fetch(
            &client,
            &HttpRequest::get(&url),
            SimTime::from_secs(9),
            &mut rng,
        );
        assert_eq!(server.drops().expired, 1);
        assert_eq!(server.len(), 1);
        let stats = server.snapshot().streaming.unwrap();
        assert_eq!(stats.windows.len(), 1);
        assert_eq!(stats.windows[0].measurements, 1);
    }

    #[test]
    fn streaming_queue_full_sheds_with_backpressure() {
        let mut net = Network::ideal(World::builtin());
        let cfg = StreamingConfig {
            queue_capacity: 1,
            drain_per_sec: 0,
            ..StreamingConfig::default()
        };
        let server = streaming_server(&mut net, &cfg);
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let url = server.submit_url(&submission());
        let first = net.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        assert!(first.result.is_ok_and(|r| r.status.is_success()));
        let congested_url = server.submit_url(&Submission {
            congested: true,
            ..submission()
        });
        let shed = net.fetch(
            &client,
            &HttpRequest::get(&congested_url),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(
            shed.result.is_ok_and(|r| r.status == StatusCode(503)),
            "overload must answer 503, not silently accept"
        );
        let drops = server.drops();
        assert_eq!(drops.queue_full, 1);
        assert_eq!(drops.queue_full_congested, 1);
        assert_eq!(server.len(), 1);
    }

    #[test]
    fn streaming_verdicts_match_exact_on_identical_traffic() {
        use crate::geo::GeoDb;
        use crate::inference::FilteringDetector;
        let window = sim_core::SimDuration::from_secs(100);
        let mut net = Network::ideal(World::builtin());
        let exact = CollectionServer::new("exact.example");
        exact.install(&mut net, country("US"));
        let streaming = CollectionServer::new("collector.example");
        streaming.install(&mut net, country("US"));
        streaming.enable_streaming(
            &StreamingConfig::with_window(window),
            0x00C0_FFEE,
            SimRng::new(99),
        );
        let mut rng = SimRng::new(2);
        let mut clients = Vec::new();
        for cc in ["TR", "TR", "TR", "US", "US", "US"] {
            clients.push(net.add_client(country(cc), IspClass::Residential));
        }
        let mut id = 0u64;
        let submit = |net: &mut Network, c: usize, sub: Submission, at: u64, rng: &mut SimRng| {
            for domain in ["exact.example", "collector.example"] {
                let mut url = String::new();
                write_submit_url(&mut url, domain, &sub.parts());
                let req = HttpRequest::get(&url).with_referer("http://origin.example/");
                net.fetch(&clients[c], &req, SimTime::from_secs(at), rng);
            }
        };
        // Two windows: TR fails in the second window only; US always
        // succeeds; crawler + congested noise sprinkled in; one TR
        // client floods past the per-ip cap.
        for w in 0..2u64 {
            for rep in 0..12u64 {
                for c in 0..clients.len() {
                    id += 1;
                    let tr = c < 3;
                    let outcome = if tr && w == 1 {
                        TaskOutcome::Failure
                    } else {
                        TaskOutcome::Success
                    };
                    let sub = Submission {
                        measurement_id: MeasurementId(id),
                        outcome: Some(outcome),
                        user_agent: if rep == 7 {
                            "GoogleBot".into()
                        } else {
                            "Chrome".into()
                        },
                        congested: rep == 5 && outcome == TaskOutcome::Failure,
                        ..submission()
                    };
                    submit(&mut net, c, sub, w * 100 + rep * 3, &mut rng);
                }
            }
            // Flood: one TR client repeats far past the cap of 10.
            for _ in 0..40 {
                id += 1;
                let sub = Submission {
                    measurement_id: MeasurementId(id),
                    outcome: Some(TaskOutcome::Failure),
                    ..submission()
                };
                submit(&mut net, 0, sub, w * 100 + 50, &mut rng);
            }
        }
        let geo = GeoDb::from_allocator(&net.allocator);
        let detector = FilteringDetector::default();
        let exact_reports = detector.detect_windows(&exact.records(), &geo, window);
        let alloc = net.allocator.clone();
        streaming.close_all_windows(|ip| alloc.country_of(ip));
        let stats = streaming.snapshot().streaming.unwrap();
        let streamed_reports = detector.judge_streamed(&stats);
        assert_eq!(
            exact_reports, streamed_reports,
            "streamed fold must reproduce the exact per-window verdicts"
        );
        assert!(
            !streamed_reports[1].detections.is_empty(),
            "fixture should actually detect the TR block"
        );
    }

    #[test]
    fn streaming_resident_bytes_do_not_scale_with_accepted() {
        let mut net = Network::ideal(World::builtin());
        let server = streaming_server(&mut net, &StreamingConfig::default());
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let mut feed = |n: u64, base: u64, server: &CollectionServer| {
            for i in 0..n {
                let sub = Submission {
                    measurement_id: MeasurementId(base + i),
                    elapsed_ms: i,
                    ..submission()
                };
                let url = server.submit_url(&sub);
                net.fetch(
                    &client,
                    &HttpRequest::get(&url),
                    SimTime::from_secs(base + i),
                    &mut rng,
                );
            }
        };
        feed(600, 0, &server);
        let at_600 = server.resident_analytics_bytes();
        feed(3000, 600, &server);
        let at_3600 = server.resident_analytics_bytes();
        // Reservoir is full by 600; further growth is only open-window
        // cell state (bounded by distinct (domain, ip) pairs — one here)
        // plus dedup hashes for the open window.
        assert!(
            at_3600 < at_600 + 64 * 1024,
            "streaming state must stay bounded: {at_600} -> {at_3600}"
        );
    }

    #[test]
    fn distinct_ip_counting() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        let mut rng = SimRng::new(1);
        for _ in 0..3 {
            let c = net.add_client(country("US"), IspClass::Residential);
            let url = server.submit_url(&submission());
            net.fetch(&c, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
            // Same client submits twice.
            net.fetch(&c, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        }
        assert_eq!(server.len(), 6);
        assert_eq!(server.distinct_ips(), 3);
    }
}
