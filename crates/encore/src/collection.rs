//! The collection server (paper §5.5).
//!
//! "After clients run a measurement task, they submit the result of the
//! task for analysis … by issuing an AJAX request containing the results
//! directly to our collection server." Appendix A shows the wire format:
//! a GET-style request with `cmh-id` / `cmh-result` query parameters; the
//! client also submits an `init` phase "as soon as the client loads the
//! page … even if they don't submit a final result".
//!
//! The server records, with each submission, the client's source address
//! (for geolocation), the `Referer` (unless the origin site strips it —
//! "3/4 of measurements come from sites that elect to strip the Referer
//! header"), and a user-agent tag used to exclude crawler traffic (§7.1:
//! "after excluding erroneously contributed measurements (e.g., from Web
//! crawlers)").

use crate::tasks::{MeasurementId, TaskOutcome, TaskType};
use netsim::geo::CountryCode;
use netsim::http::{ContentType, HttpRequest, HttpResponse};
use netsim::network::{HttpHandler, Network};
use serde::{Deserialize, Serialize};
use sim_core::{find_byte, find_either, FxBuildHasher, Interner, SimTime, Sym};
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Which of the two submissions this is (Appendix A: an `init` beacon
/// before the measurement, then the result).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SubmissionPhase {
    /// "Indicates which clients attempted to run the measurement."
    Init,
    /// The measurement outcome.
    Result,
}

/// A client-side submission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submission {
    /// Measurement ID linking init and result.
    pub measurement_id: MeasurementId,
    /// Init or result.
    pub phase: SubmissionPhase,
    /// Task outcome (None for init).
    pub outcome: Option<TaskOutcome>,
    /// Elapsed task time in milliseconds (0 for init).
    pub elapsed_ms: u64,
    /// Task mechanism.
    pub task_type: TaskType,
    /// The measured URL.
    pub target_url: String,
    /// Browser user agent family (crawlers announce themselves).
    pub user_agent: String,
    /// Whether the client observed a near-source congestion signal on a
    /// failed task (the fetch was shed at an overloaded transit link).
    /// Serialized and wire-encoded only when set, so pre-congestion
    /// submissions keep their exact bytes.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub congested: bool,
}

/// Append `s` percent-encoded (minimal query-value encoding). The byte
/// output is identical to the original per-byte `format!` encoder, but
/// streams straight into `out` with no intermediate allocations — this
/// runs twice per submission on the visit hot path.
fn push_pct_encoded(out: &mut String, s: &str) {
    const HEX: &[u8; 16] = b"0123456789ABCDEF";
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => {
                out.push('%');
                out.push(HEX[(b >> 4) as usize] as char);
                out.push(HEX[(b & 0x0F) as usize] as char);
            }
        }
    }
}

/// Append `v` as exactly 16 lowercase hex digits (the
/// [`MeasurementId`] display format's payload).
fn push_hex16(out: &mut String, v: u64) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut buf = [0u8; 16];
    for (i, b) in buf.iter_mut().enumerate() {
        *b = HEX[((v >> (4 * (15 - i))) & 0xF) as usize];
    }
    out.push_str(std::str::from_utf8(&buf).expect("hex digits are ASCII"));
}

/// Append `v` in decimal without going through the `fmt` machinery.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Minimal percent-encoding for query values (allocating wrapper over
/// [`push_pct_encoded`]).
#[cfg(test)]
fn pct_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    push_pct_encoded(&mut out, s);
    out
}

/// Inverse of [`pct_encode`]. Malformed escapes pass through verbatim.
/// Operates on raw bytes: slicing by byte offset must never split a
/// multi-byte character. Borrows the input when it contains no escapes
/// (the common case for every field but the target URL and UA).
fn pct_decode_cow(s: &str) -> std::borrow::Cow<'_, str> {
    let bytes = s.as_bytes();
    let Some(pct) = find_byte(bytes, b'%') else {
        return std::borrow::Cow::Borrowed(s);
    };
    let mut out = Vec::with_capacity(bytes.len());
    pct_decode_bytes(bytes, pct, &mut out);
    std::borrow::Cow::Owned(match String::from_utf8(out) {
        Ok(decoded) => decoded,
        Err(err) => String::from_utf8_lossy(err.as_bytes()).into_owned(),
    })
}

/// Inverse of [`pct_encode`] decoding into a caller-owned buffer, so a
/// hot caller can reuse one allocation across calls. Same semantics as
/// [`pct_decode_cow`]; `out` is cleared first.
fn pct_decode_into(out: &mut String, s: &str) {
    out.clear();
    let bytes = s.as_bytes();
    let Some(pct) = find_byte(bytes, b'%') else {
        out.push_str(s);
        return;
    };
    let mut buf = std::mem::take(out).into_bytes();
    pct_decode_bytes(bytes, pct, &mut buf);
    *out = match String::from_utf8(buf) {
        Ok(decoded) => decoded,
        Err(err) => String::from_utf8_lossy(err.as_bytes()).into_owned(),
    };
}

/// Shared decode loop: append the decode of `bytes` to `out`, given the
/// position `pct` of the first `'%'`. Copies whole unescaped runs
/// between `'%'`s instead of byte-at-a-time.
fn pct_decode_bytes(bytes: &[u8], mut pct: usize, out: &mut Vec<u8>) {
    fn hex(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let mut start = 0;
    loop {
        out.extend_from_slice(&bytes[start..pct]);
        start = if pct + 2 < bytes.len() {
            if let (Some(hi), Some(lo)) = (hex(bytes[pct + 1]), hex(bytes[pct + 2])) {
                out.push(hi << 4 | lo);
                pct + 3
            } else {
                out.push(b'%');
                pct + 1
            }
        } else {
            out.push(b'%');
            pct + 1
        };
        match find_byte(&bytes[start..], b'%') {
            Some(rel) => pct = start + rel,
            None => {
                out.extend_from_slice(&bytes[start..]);
                break;
            }
        }
    }
}

/// Inverse of [`pct_encode`] (allocating wrapper over [`pct_decode_cow`]).
#[cfg(test)]
fn pct_decode(s: &str) -> String {
    pct_decode_cow(s).into_owned()
}

/// A borrowed view of a submission's fields — what the client-side hot
/// path builds per delivery without owning the target URL / UA strings.
#[derive(Debug, Clone, Copy)]
pub struct SubmissionParts<'a> {
    /// Measurement ID linking init and result.
    pub measurement_id: MeasurementId,
    /// Init or result.
    pub phase: SubmissionPhase,
    /// Task outcome (None for init).
    pub outcome: Option<TaskOutcome>,
    /// Elapsed task time in milliseconds (0 for init).
    pub elapsed_ms: u64,
    /// Task mechanism.
    pub task_type: TaskType,
    /// The measured URL.
    pub target_url: &'a str,
    /// Browser user agent family.
    pub user_agent: &'a str,
    /// Near-source congestion signal observed (failures only).
    pub congested: bool,
}

impl SubmissionParts<'_> {
    /// Append the Appendix A query encoding to `out`. Byte-identical to
    /// the original `format!`-based encoder.
    pub fn write_query(&self, out: &mut String) {
        out.reserve(64 + self.target_url.len() * 3 + self.user_agent.len() * 3);
        out.push_str("cmh-id=m-");
        push_hex16(out, self.measurement_id.0);
        out.push_str("&cmh-result=");
        out.push_str(match (self.phase, self.outcome) {
            (SubmissionPhase::Init, _) => "init",
            (SubmissionPhase::Result, Some(TaskOutcome::Success)) => "success",
            (SubmissionPhase::Result, Some(TaskOutcome::Failure)) => "failure",
            (SubmissionPhase::Result, None) => "unknown",
        });
        out.push_str("&cmh-elapsed=");
        push_u64(out, self.elapsed_ms);
        out.push_str("&cmh-type=");
        out.push_str(self.task_type.as_str());
        out.push_str("&cmh-target=");
        push_pct_encoded(out, self.target_url);
        out.push_str("&cmh-ua=");
        push_pct_encoded(out, self.user_agent);
        if self.congested {
            // Appended last, and only when set: uncongested submissions
            // keep the exact six-key byte shape (and its fast parse);
            // the trailing '&' in the UA field makes the wire fast path
            // fall back to the general parser, which knows the key.
            out.push_str("&cmh-cong=1");
        }
    }

    /// [`SubmissionParts::write_query`] with the two percent-encoded
    /// fields served from `cache`. Byte-identical output; the per-byte
    /// encoder runs once per distinct target URL / user agent instead of
    /// once per submission.
    pub fn write_query_cached(&self, out: &mut String, cache: &mut EncodeCache) {
        out.reserve(64 + self.target_url.len() * 3 + self.user_agent.len() * 3);
        out.push_str("cmh-id=m-");
        push_hex16(out, self.measurement_id.0);
        out.push_str("&cmh-result=");
        out.push_str(match (self.phase, self.outcome) {
            (SubmissionPhase::Init, _) => "init",
            (SubmissionPhase::Result, Some(TaskOutcome::Success)) => "success",
            (SubmissionPhase::Result, Some(TaskOutcome::Failure)) => "failure",
            (SubmissionPhase::Result, None) => "unknown",
        });
        out.push_str("&cmh-elapsed=");
        push_u64(out, self.elapsed_ms);
        out.push_str("&cmh-type=");
        out.push_str(self.task_type.as_str());
        out.push_str("&cmh-target=");
        out.push_str(cache.encoded(self.target_url));
        out.push_str("&cmh-ua=");
        out.push_str(cache.encoded(self.user_agent));
        if self.congested {
            out.push_str("&cmh-cong=1");
        }
    }
}

/// Memo of percent-encoded forms keyed by the raw string. The submit
/// hot path encodes the same few target URLs and user agents millions
/// of times; after the first encounter of each distinct string, one
/// hash lookup replaces the per-byte encoder.
#[derive(Debug, Default)]
pub struct EncodeCache {
    map: HashMap<Box<str>, Box<str>, FxBuildHasher>,
}

impl EncodeCache {
    /// The percent-encoded form of `raw`, encoding on first sight.
    pub fn encoded(&mut self, raw: &str) -> &str {
        if !self.map.contains_key(raw) {
            let mut enc = String::new();
            push_pct_encoded(&mut enc, raw);
            self.map.insert(raw.into(), enc.into_boxed_str());
        }
        &self.map[raw]
    }
}

impl Submission {
    /// Borrowed view of this submission's fields.
    pub fn parts(&self) -> SubmissionParts<'_> {
        SubmissionParts {
            measurement_id: self.measurement_id,
            phase: self.phase,
            outcome: self.outcome,
            elapsed_ms: self.elapsed_ms,
            task_type: self.task_type,
            target_url: &self.target_url,
            user_agent: &self.user_agent,
            congested: self.congested,
        }
    }

    /// Encode as the submit URL's query parameters (Appendix A wire
    /// format).
    pub fn to_query(&self) -> String {
        let mut out = String::new();
        self.parts().write_query(&mut out);
        out
    }

    /// Decode from a submit URL. Returns `None` on malformed input (the
    /// server drops such requests).
    pub fn from_url(url: &str) -> Option<Submission> {
        let parsed = parse_submission(url)?;
        Some(Submission {
            measurement_id: parsed.measurement_id,
            phase: parsed.phase,
            outcome: parsed.outcome,
            elapsed_ms: parsed.elapsed_ms,
            task_type: parsed.task_type,
            target_url: pct_decode_cow(parsed.target_url_raw).into_owned(),
            user_agent: pct_decode_cow(parsed.user_agent_raw).into_owned(),
            congested: parsed.congested,
        })
    }
}

/// A validated submission whose target/user-agent fields are the raw,
/// still-percent-encoded query slices. Decoding them is deferred to the
/// caller — the collection server decodes into a reused scratch buffer
/// and interns the result, so its hot path never materialises an owned
/// `String`.
struct ParsedSubmission<'a> {
    measurement_id: MeasurementId,
    phase: SubmissionPhase,
    outcome: Option<TaskOutcome>,
    elapsed_ms: u64,
    task_type: TaskType,
    target_url_raw: &'a str,
    user_agent_raw: &'a str,
    congested: bool,
}

/// Fast path for the exact wire shape [`SubmissionParts::write_query`]
/// emits: the six keys in fixed order, none of the first four values
/// escaped. Any deviation returns `None` and the caller falls back to
/// the general parser — this function never *rejects* a query, so the
/// two-parser split cannot change which queries count as malformed. It
/// is handed the query *uncut* (everything after the first `'?'`), so
/// every accepted field must provably contain no `'?'`: the id is 16
/// hex digits, the literal/numeric matches reject it, and the target
/// and user agent scans fall back on it explicitly.
///
/// Equivalence with the general parser on every `Some`: literal value
/// matches (`init`, `image`, …) contain no `%`, so decoding is the
/// identity on them; `elapsed` uses the same `str::parse`; target and
/// user agent are passed through raw in both parsers; and requiring the
/// user agent (the final field) to contain no `&` rules out trailing
/// duplicate keys that the general parser would let override earlier
/// ones.
fn parse_submission_wire(q: &str) -> Option<ParsedSubmission<'_>> {
    fn split_field(s: &str) -> Option<(&str, &str)> {
        let amp = find_byte(s.as_bytes(), b'&')?;
        Some((&s[..amp], &s[amp + 1..]))
    }
    let rest = q.strip_prefix("cmh-id=m-")?;
    let hex = rest.get(..16)?;
    let measurement_id = MeasurementId(u64::from_str_radix(hex, 16).ok()?);
    let rest = rest[16..].strip_prefix("&cmh-result=")?;
    let (resval, rest) = split_field(rest)?;
    let (phase, outcome) = match resval {
        "init" => (SubmissionPhase::Init, None),
        "success" => (SubmissionPhase::Result, Some(TaskOutcome::Success)),
        "failure" => (SubmissionPhase::Result, Some(TaskOutcome::Failure)),
        _ => return None,
    };
    let rest = rest.strip_prefix("cmh-elapsed=")?;
    let (elval, rest) = split_field(rest)?;
    let elapsed_ms: u64 = elval.parse().ok()?;
    let rest = rest.strip_prefix("cmh-type=")?;
    let (tyval, rest) = split_field(rest)?;
    let task_type = match tyval {
        "image" => TaskType::Image,
        "stylesheet" => TaskType::Stylesheet,
        "iframe" => TaskType::Iframe,
        "script" => TaskType::Script,
        _ => return None,
    };
    let rest = rest.strip_prefix("cmh-target=")?;
    let (target_url_raw, user_agent_raw) = {
        // Stop at '&' like the general parser; fall back on '?' because
        // this path runs on the *uncut* query (the caller has not yet
        // trimmed at a second '?', which the general parser would).
        let amp = find_either(rest.as_bytes(), b'&', b'?')?;
        if rest.as_bytes()[amp] == b'?' {
            return None;
        }
        (&rest[..amp], rest[amp + 1..].strip_prefix("cmh-ua=")?)
    };
    if find_either(user_agent_raw.as_bytes(), b'&', b'?').is_some() {
        return None;
    }
    Some(ParsedSubmission {
        measurement_id,
        phase,
        outcome,
        elapsed_ms,
        task_type,
        target_url_raw,
        user_agent_raw,
        // The congested wire shape carries '&cmh-cong=1' after the UA,
        // which the no-'&'-in-UA rule above already rejects into the
        // general parser — this fast path only sees uncongested queries.
        congested: false,
    })
}

/// Parse a submit URL's query into a borrowed [`ParsedSubmission`].
///
/// The parser walks the query pairs once (last occurrence of a key wins,
/// pairs without `=` are skipped, unknown keys are ignored — the same
/// semantics as the original map-based parser, without the map).
fn parse_submission(url: &str) -> Option<ParsedSubmission<'_>> {
    // Byte-scan the query out of the URL (equivalent to
    // `url.split('?').nth(1)` — the segment between the first '?' and the
    // next one, if any — without the char-pattern machinery; this parser
    // runs up to twice per task).
    let bytes = url.as_bytes();
    let qstart = find_byte(bytes, b'?')? + 1;
    // Nearly every query the server sees is the exact byte shape
    // `write_query` emits; match that shape directly — on the uncut
    // remainder, skipping the second-'?' scan entirely — before falling
    // back to the order-insensitive parser below.
    if let Some(parsed) = parse_submission_wire(&url[qstart..]) {
        return Some(parsed);
    }
    let qend = find_byte(&bytes[qstart..], b'?').map_or(url.len(), |rel| qstart + rel);
    let q = &url[qstart..qend];
    let mut id = None;
    let mut result = None;
    let mut elapsed = None;
    let mut ty = None;
    let mut target = None;
    let mut ua = None;
    let mut cong = None;
    // Single pass: each query byte is examined exactly once. Pair and
    // '=' boundaries are tracked as the scan goes; a pair is processed
    // when its terminating '&' (or the end of the query) is reached.
    let qb = q.as_bytes();
    let mut i = 0;
    let mut pair_start = 0;
    let mut eq_pos = None;
    loop {
        if i == qb.len() || qb[i] == b'&' {
            if let Some(eq) = eq_pos {
                let (k, v) = (&q[pair_start..eq], &q[eq + 1..i]);
                // Keys as emitted by the client are never escaped;
                // decode only when an escape is actually present so the
                // exotic case still matches what a full decode would.
                let decoded_key;
                let key: &str = if k.as_bytes().contains(&b'%') {
                    decoded_key = pct_decode_cow(k);
                    &decoded_key
                } else {
                    k
                };
                match key {
                    "cmh-id" => id = Some(pct_decode_cow(v)),
                    "cmh-result" => result = Some(pct_decode_cow(v)),
                    "cmh-elapsed" => elapsed = Some(pct_decode_cow(v)),
                    "cmh-type" => ty = Some(pct_decode_cow(v)),
                    "cmh-target" => target = Some(v),
                    "cmh-ua" => ua = Some(v),
                    "cmh-cong" => cong = Some(pct_decode_cow(v)),
                    _ => {}
                }
            }
            if i == qb.len() {
                break;
            }
            pair_start = i + 1;
            eq_pos = None;
        } else if qb[i] == b'=' && eq_pos.is_none() {
            eq_pos = Some(i);
        }
        i += 1;
    }
    let id = id?;
    let id_hex = id.strip_prefix("m-")?;
    let measurement_id = MeasurementId(u64::from_str_radix(id_hex, 16).ok()?);
    let (phase, outcome) = match &*result? {
        "init" => (SubmissionPhase::Init, None),
        "success" => (SubmissionPhase::Result, Some(TaskOutcome::Success)),
        "failure" => (SubmissionPhase::Result, Some(TaskOutcome::Failure)),
        _ => return None,
    };
    let task_type = match &*ty? {
        "image" => TaskType::Image,
        "stylesheet" => TaskType::Stylesheet,
        "iframe" => TaskType::Iframe,
        "script" => TaskType::Script,
        _ => return None,
    };
    Some(ParsedSubmission {
        measurement_id,
        phase,
        outcome,
        elapsed_ms: elapsed?.parse().ok()?,
        task_type,
        target_url_raw: target?,
        user_agent_raw: ua.unwrap_or(""),
        congested: cong.as_deref() == Some("1"),
    })
}

/// A submission as stored server-side, enriched with connection metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredMeasurement {
    /// The submission body.
    pub submission: Submission,
    /// Source address of the connection.
    pub client_ip: Ipv4Addr,
    /// `Referer` header, if the origin site did not strip it.
    pub referer: Option<String>,
    /// Server receive time.
    pub received_at: SimTime,
}

impl StoredMeasurement {
    /// Whether this record came from automated traffic (the §6.2 campus
    /// security scanner, search-engine crawlers, …).
    pub fn is_crawler(&self) -> bool {
        let ua = self.submission.user_agent.to_ascii_lowercase();
        ua.contains("bot") || ua.contains("crawler") || ua.contains("scanner")
    }

    /// Target domain of the measurement.
    pub fn target_domain(&self) -> Option<String> {
        netsim::http::host_of(&self.submission.target_url)
    }
}

/// A plain-data snapshot of a collection store — everything the analysis
/// pipeline needs, detached from the server's `Rc`-shared live store so
/// it can cross thread boundaries and be merged across parallel shards.
///
/// Merging is defined over the *canonical order* (a total order on
/// records): [`merge`](CollectionSnapshot::merge) is associative and
/// commutative with [`CollectionSnapshot::default`] as identity, so the
/// union of per-shard stores is byte-stable no matter how the shards are
/// combined. The §7.2 detector and every report run once over the merged
/// record vector.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CollectionSnapshot {
    /// Stored records, in canonical order.
    pub records: Vec<StoredMeasurement>,
    /// Malformed submissions dropped server-side.
    pub malformed: u64,
}

/// The canonical total order on stored measurements: received time first
/// (the natural analysis order), then every remaining field as a
/// tie-break so the order is deterministic for any record multiset.
/// Compares by reference — no allocation per comparison, which keeps
/// canonicalisation cheap on the hot merge path.
fn canonical_cmp(a: &StoredMeasurement, b: &StoredMeasurement) -> std::cmp::Ordering {
    fn key(r: &StoredMeasurement) -> impl Ord + '_ {
        let s = &r.submission;
        (
            r.received_at,
            u32::from(r.client_ip),
            s.measurement_id,
            s.phase,
            s.outcome,
            s.task_type,
            s.elapsed_ms,
            s.target_url.as_str(),
            s.user_agent.as_str(),
            r.referer.as_deref(),
            s.congested,
        )
    }
    key(a).cmp(&key(b))
}

impl CollectionSnapshot {
    /// Sort the records into canonical order. The stable sort is
    /// adaptive, so re-canonicalising a concatenation of already-sorted
    /// runs (the merge path) costs close to one linear pass.
    pub fn canonicalize(&mut self) {
        self.records.sort_by(canonical_cmp);
    }

    /// Merge another snapshot into this one. Associative and commutative
    /// over canonicalised snapshots, with the empty snapshot as identity.
    pub fn merge(mut self, other: &CollectionSnapshot) -> CollectionSnapshot {
        self.records.extend(other.records.iter().cloned());
        self.malformed += other.malformed;
        self.canonicalize();
        self
    }

    /// [`merge`](Self::merge) without the clone: consumes `other`,
    /// moving its records. Prefer this wherever the other snapshot is
    /// owned — on transport-sized stores the record clone costs more
    /// than the binary codec that delivered them.
    pub fn merge_owned(mut self, other: CollectionSnapshot) -> CollectionSnapshot {
        self.malformed += other.malformed;
        // Ordered-append fast path: both inputs are canonical (the
        // documented precondition), so when all of `other` sorts
        // at-or-after all of `self` — every chunk of a shard's in-order
        // record stream — concatenation IS the canonical order and the
        // re-sort is skipped. Keeps the streaming coordinator's
        // per-chunk fold linear instead of sorting per chunk.
        match (self.records.last(), other.records.first()) {
            (Some(a), Some(b)) if canonical_cmp(a, b) != std::cmp::Ordering::Greater => {
                self.records.extend(other.records);
            }
            (None, _) => self.records = other.records,
            (_, None) => {}
            _ => {
                self.records.extend(other.records);
                self.canonicalize();
            }
        }
        self
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Distinct client IPs across the records.
    pub fn distinct_ips(&self) -> usize {
        let mut ips: Vec<_> = self.records.iter().map(|r| r.client_ip).collect();
        ips.sort();
        ips.dedup();
        ips.len()
    }
}

/// Append the full submit URL (`http://<domain>/submit?<query>`) to
/// `out` — the zero-intermediate-allocation form the delivery hot path
/// uses with a reused buffer.
pub fn write_submit_url(out: &mut String, domain: &str, parts: &SubmissionParts<'_>) {
    out.push_str("http://");
    out.push_str(domain);
    out.push_str("/submit?");
    parts.write_query(out);
}

/// [`write_submit_url`] with the encoded fields served from `cache`.
pub fn write_submit_url_cached(
    out: &mut String,
    domain: &str,
    parts: &SubmissionParts<'_>,
    cache: &mut EncodeCache,
) {
    out.push_str("http://");
    out.push_str(domain);
    out.push_str("/submit?");
    parts.write_query_cached(out, cache);
}

/// A stored measurement in the server's internal, interned form: every
/// string field (target URL, user agent, referer) is a dense [`Sym`] into
/// the store's shared table. The visit hot path pushes a couple of these
/// per visit; with the working set of distinct strings interned after the
/// first few submissions, a push performs no string allocation at all.
/// [`Store::resolve`] rehydrates the public [`StoredMeasurement`] form at
/// snapshot time, off the hot path.
#[derive(Debug, Clone)]
struct RawRecord {
    measurement_id: MeasurementId,
    phase: SubmissionPhase,
    outcome: Option<TaskOutcome>,
    elapsed_ms: u64,
    task_type: TaskType,
    congested: bool,
    target_url: Sym,
    user_agent: Sym,
    client_ip: Ipv4Addr,
    referer: Option<Sym>,
    received_at: SimTime,
}

#[derive(Debug, Default)]
struct Store {
    strings: Interner,
    records: Vec<RawRecord>,
    malformed: u64,
    /// Reused percent-decode buffer: the handler decodes each escaped
    /// field here and interns the result, so steady-state submission
    /// handling performs no heap allocation.
    decode_scratch: String,
    /// Memo from a field's *raw* (still-escaped) query slice to the sym
    /// of its decoded form — repeat submissions skip the decode and the
    /// intern hash of the longer decoded string entirely.
    raw_syms: HashMap<Box<str>, Sym, FxBuildHasher>,
}

impl Store {
    /// Sym of the decoded form of a raw (possibly escaped) field value,
    /// memoised by the raw text. Decoding is deterministic, so serving a
    /// memo is observationally identical to decode-then-intern; two raw
    /// spellings of the same decoded string still collapse to one sym
    /// via the interner.
    fn sym_for_raw(&mut self, raw: &str) -> Sym {
        if let Some(&sym) = self.raw_syms.get(raw) {
            return sym;
        }
        pct_decode_into(&mut self.decode_scratch, raw);
        let sym = self.strings.intern(&self.decode_scratch);
        self.raw_syms.insert(raw.into(), sym);
        sym
    }

    /// Rehydrate an interned record into the public owned form.
    fn resolve(&self, r: &RawRecord) -> StoredMeasurement {
        StoredMeasurement {
            submission: Submission {
                measurement_id: r.measurement_id,
                phase: r.phase,
                outcome: r.outcome,
                elapsed_ms: r.elapsed_ms,
                task_type: r.task_type,
                target_url: self.strings.resolve(r.target_url).to_string(),
                user_agent: self.strings.resolve(r.user_agent).to_string(),
                congested: r.congested,
            },
            client_ip: r.client_ip,
            referer: r.referer.map(|s| self.strings.resolve(s).to_string()),
            received_at: r.received_at,
        }
    }
}

/// The collection server: an HTTP endpoint accumulating submissions.
#[derive(Clone)]
pub struct CollectionServer {
    /// DNS name clients submit to.
    pub domain: String,
    store: Rc<RefCell<Store>>,
}

struct CollectorHandler {
    store: Rc<RefCell<Store>>,
}

impl HttpHandler for CollectorHandler {
    fn handle(&self, req: &HttpRequest, client_ip: Ipv4Addr, now: SimTime) -> HttpResponse {
        if !req.path().starts_with("/submit") {
            return HttpResponse::not_found();
        }
        match parse_submission(&req.url) {
            Some(parsed) => {
                let mut store = self.store.borrow_mut();
                let target_url = store.sym_for_raw(parsed.target_url_raw);
                let user_agent = store.sym_for_raw(parsed.user_agent_raw);
                let referer = req.referer.as_deref().map(|r| store.strings.intern(r));
                store.records.push(RawRecord {
                    measurement_id: parsed.measurement_id,
                    phase: parsed.phase,
                    outcome: parsed.outcome,
                    elapsed_ms: parsed.elapsed_ms,
                    task_type: parsed.task_type,
                    congested: parsed.congested,
                    target_url,
                    user_agent,
                    client_ip,
                    referer,
                    received_at: now,
                });
                // Tiny CORS-permissive 204-ish response.
                let mut resp = HttpResponse::ok(ContentType::Other, 2).no_store();
                resp.extra_headers
                    .push(("Access-Control-Allow-Origin".into(), "*".into()));
                resp
            }
            None => {
                self.store.borrow_mut().malformed += 1;
                HttpResponse::not_found()
            }
        }
    }
}

impl CollectionServer {
    /// Create a collection service for `domain`.
    pub fn new(domain: impl Into<String>) -> CollectionServer {
        CollectionServer {
            domain: domain.into(),
            store: Rc::new(RefCell::new(Store::default())),
        }
    }

    /// Register the endpoint in the network (hosted in `country`).
    pub fn install(&self, net: &mut Network, country: CountryCode) {
        net.add_server(
            &self.domain,
            country,
            Box::new(CollectorHandler {
                store: Rc::clone(&self.store),
            }),
        );
    }

    /// Register an additional mirror domain sharing the same store (§8:
    /// "collection of the results could be distributed across servers
    /// hosted in different domains").
    pub fn install_mirror(&self, net: &mut Network, mirror_domain: &str, country: CountryCode) {
        net.add_server(
            mirror_domain,
            country,
            Box::new(CollectorHandler {
                store: Rc::clone(&self.store),
            }),
        );
    }

    /// The submit URL for a submission (against the primary domain).
    pub fn submit_url(&self, sub: &Submission) -> String {
        let mut url = String::new();
        write_submit_url(&mut url, &self.domain, &sub.parts());
        url
    }

    /// The submit URL against an arbitrary (mirror) domain.
    pub fn submit_url_via(&self, domain: &str, sub: &Submission) -> String {
        let mut url = String::new();
        write_submit_url(&mut url, domain, &sub.parts());
        url
    }

    /// Snapshot of all stored records (resolving interned strings back to
    /// owned form — serialization and analysis see the same bytes as the
    /// pre-interning store produced).
    pub fn records(&self) -> Vec<StoredMeasurement> {
        let store = self.store.borrow();
        store.records.iter().map(|r| store.resolve(r)).collect()
    }

    /// Detach a canonical, thread-portable snapshot of the store (records
    /// plus the malformed counter) for merging and analysis.
    pub fn snapshot(&self) -> CollectionSnapshot {
        let store = self.store.borrow();
        let mut snap = CollectionSnapshot {
            records: store.records.iter().map(|r| store.resolve(r)).collect(),
            malformed: store.malformed,
        };
        snap.canonicalize();
        snap
    }

    /// Number of stored records.
    pub fn len(&self) -> usize {
        self.store.borrow().records.len()
    }

    /// Whether nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Count of malformed submissions dropped.
    pub fn malformed(&self) -> u64 {
        self.store.borrow().malformed
    }

    /// Distinct client IPs seen (the paper reports "88,260 distinct
    /// IPs").
    pub fn distinct_ips(&self) -> usize {
        let mut ips: Vec<_> = self
            .store
            .borrow()
            .records
            .iter()
            .map(|r| r.client_ip)
            .collect();
        ips.sort();
        ips.dedup();
        ips.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::{country, IspClass, World};
    use sim_core::SimRng;

    fn submission() -> Submission {
        Submission {
            measurement_id: MeasurementId(0xAB),
            phase: SubmissionPhase::Result,
            outcome: Some(TaskOutcome::Failure),
            elapsed_ms: 1_234,
            task_type: TaskType::Image,
            target_url: "http://youtube.com/favicon.ico".into(),
            user_agent: "Chrome".into(),
            congested: false,
        }
    }

    #[test]
    fn submission_roundtrips_through_url() {
        let s = submission();
        let url = format!("http://collector.example/submit?{}", s.to_query());
        let back = Submission::from_url(&url).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn init_phase_roundtrips() {
        let s = Submission {
            phase: SubmissionPhase::Init,
            outcome: None,
            elapsed_ms: 0,
            ..submission()
        };
        let url = format!("http://c/submit?{}", s.to_query());
        assert_eq!(
            Submission::from_url(&url).unwrap().phase,
            SubmissionPhase::Init
        );
    }

    #[test]
    fn congested_submission_roundtrips_and_plain_wire_is_unchanged() {
        let plain = submission();
        assert!(
            !plain.to_query().contains("cmh-cong"),
            "uncongested submissions must keep the pre-congestion bytes"
        );
        let congested = Submission {
            congested: true,
            ..submission()
        };
        let q = congested.to_query();
        assert!(q.ends_with("&cmh-cong=1"));
        let back = Submission::from_url(&format!("http://c/submit?{q}")).unwrap();
        assert_eq!(congested, back);
    }

    #[test]
    fn server_stores_congested_flag() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let sub = Submission {
            congested: true,
            ..submission()
        };
        let url = server.submit_url(&sub);
        net.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        assert_eq!(server.len(), 1);
        assert!(server.records()[0].submission.congested);
    }

    #[test]
    fn malformed_submissions_rejected() {
        assert!(Submission::from_url("http://c/submit?cmh-id=garbage").is_none());
        assert!(Submission::from_url("http://c/submit").is_none());
        assert!(Submission::from_url("http://c/submit?cmh-id=m-00ff&cmh-result=banana").is_none());
    }

    #[test]
    fn pct_encoding_roundtrip() {
        let s = "http://a.com/x?q=1&r=%20";
        assert_eq!(pct_decode(&pct_encode(s)), s);
        assert_eq!(pct_encode("a b"), "a%20b");
    }

    #[test]
    fn server_stores_submissions_over_the_network() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.encore-repro.net");
        server.install(&mut net, country("US"));
        let client = net.add_client(country("PK"), IspClass::Residential);
        let mut rng = SimRng::new(1);

        let url = server.submit_url(&submission());
        let req = HttpRequest::get(&url).with_referer("http://origin.example/");
        let out = net.fetch(&client, &req, SimTime::from_secs(10), &mut rng);
        assert!(out.result.is_ok());

        assert_eq!(server.len(), 1);
        let rec = &server.records()[0];
        assert_eq!(rec.client_ip, client.ip);
        assert_eq!(rec.referer.as_deref(), Some("http://origin.example/"));
        assert_eq!(rec.received_at, SimTime::from_secs(10));
        assert_eq!(rec.submission.outcome, Some(TaskOutcome::Failure));
        assert_eq!(rec.target_domain().as_deref(), Some("youtube.com"));
    }

    #[test]
    fn server_counts_malformed() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        net.fetch(
            &client,
            &HttpRequest::get("http://collector.example/submit?junk=1"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(server.len(), 0);
        assert_eq!(server.malformed(), 1);
    }

    #[test]
    fn mirror_shares_the_store() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        server.install_mirror(&mut net, "mirror.example", country("DE"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let url = server.submit_url_via("mirror.example", &submission());
        net.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        assert_eq!(server.len(), 1);
    }

    fn stored(id: u64, ip: [u8; 4], at: u64) -> StoredMeasurement {
        StoredMeasurement {
            submission: Submission {
                measurement_id: MeasurementId(id),
                ..submission()
            },
            client_ip: Ipv4Addr::new(ip[0], ip[1], ip[2], ip[3]),
            referer: None,
            received_at: SimTime::from_secs(at),
        }
    }

    use sim_core::SimTime;
    use std::net::Ipv4Addr;

    #[test]
    fn snapshot_captures_records_and_malformed() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let url = server.submit_url(&submission());
        net.fetch(&client, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        net.fetch(
            &client,
            &HttpRequest::get("http://collector.example/submit?junk=1"),
            SimTime::ZERO,
            &mut rng,
        );
        let snap = server.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.malformed, 1);
        assert_eq!(snap.distinct_ips(), 1);
    }

    #[test]
    fn snapshot_merge_is_order_insensitive() {
        let a = CollectionSnapshot {
            records: vec![stored(2, [100, 0, 0, 9], 5), stored(1, [100, 0, 0, 9], 5)],
            malformed: 1,
        };
        let b = CollectionSnapshot {
            records: vec![stored(3, [100, 1, 0, 9], 2)],
            malformed: 2,
        };
        let ab = a.clone().merge(&b);
        let ba = b.clone().merge(&a);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.malformed, 3);
        // Canonical order: received time first.
        assert_eq!(ab.records[0].submission.measurement_id, MeasurementId(3));
        // Identity element.
        assert_eq!(a.clone().merge(&CollectionSnapshot::default()), {
            let mut c = a.clone();
            c.canonicalize();
            c
        });
    }

    #[test]
    fn crawler_detection() {
        let rec = StoredMeasurement {
            submission: Submission {
                user_agent: "SecurityScanner/2.0".into(),
                ..submission()
            },
            client_ip: Ipv4Addr::new(100, 0, 0, 9),
            referer: None,
            received_at: SimTime::ZERO,
        };
        assert!(rec.is_crawler());
        let human = StoredMeasurement {
            submission: submission(),
            client_ip: Ipv4Addr::new(100, 0, 0, 9),
            referer: None,
            received_at: SimTime::ZERO,
        };
        assert!(!human.is_crawler());
    }

    #[test]
    fn distinct_ip_counting() {
        let mut net = Network::ideal(World::builtin());
        let server = CollectionServer::new("collector.example");
        server.install(&mut net, country("US"));
        let mut rng = SimRng::new(1);
        for _ in 0..3 {
            let c = net.add_client(country("US"), IspClass::Residential);
            let url = server.submit_url(&submission());
            net.fetch(&c, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
            // Same client submits twice.
            net.fetch(&c, &HttpRequest::get(&url), SimTime::ZERO, &mut rng);
        }
        assert_eq!(server.len(), 6);
        assert_eq!(server.distinct_ips(), 3);
    }
}
