//! Task delivery: how webmasters install Encore and how clients obtain
//! tasks (paper §5.4, §8).
//!
//! "A webmaster can enable Encore in several ways. The simplest method is
//! to add a single `<iframe>` tag that directs clients to load an
//! external JavaScript directly from the coordination server. …
//! Unfortunately, this method is also easiest for censors to fingerprint
//! and disrupt: a censor can simply block access to the coordination
//! server." §8 adds the robust variant: "webmasters could contact the
//! coordination server on behalf of clients (e.g., with a WordPress
//! plugin or Django package) … including the returned measurement task
//! directly in the page it serves".

use crate::tasks::{MeasurementTask, TaskSpec};
use netsim::geo::CountryCode;
use netsim::http::{ContentType, HttpRequest, HttpResponse};
use netsim::network::{HttpHandler, Network};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// The snippet overhead the paper reports: "our prototype adds only 100
/// bytes to each origin page".
pub const SNIPPET_BYTES: u64 = 100;

/// How an origin site includes Encore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InstallMethod {
    /// One `<script>`/`<iframe>` tag pointing at the coordination server;
    /// the client fetches the task itself. Blockable by censoring the
    /// coordination server.
    Tag,
    /// The webmaster's server fetches tasks from the coordination server
    /// and inlines them (the §8 WordPress-plugin model); clients never
    /// contact Encore infrastructure directly, so blocking the
    /// coordination server does not stop measurement — only collection
    /// remains exposed.
    ServerSideInline,
}

/// A volunteer origin site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OriginSite {
    /// The site's domain.
    pub domain: String,
    /// How Encore is installed.
    pub install_method: InstallMethod,
    /// Whether the site strips `Referer` from outgoing requests (the
    /// paper observed ¾ of measurements arrived referrer-less).
    pub strip_referer: bool,
    /// Relative share of world traffic this origin receives.
    pub popularity_weight: f64,
    /// Size of the origin page's own HTML, bytes.
    pub page_bytes: u64,
}

impl OriginSite {
    /// A small personal/academic page (the §6.2 pilot deployment).
    pub fn academic(domain: impl Into<String>) -> OriginSite {
        OriginSite {
            domain: domain.into(),
            install_method: InstallMethod::Tag,
            strip_referer: false,
            popularity_weight: 1.0,
            page_bytes: 24_000,
        }
    }

    /// Builder: set install method.
    pub fn with_install(mut self, m: InstallMethod) -> OriginSite {
        self.install_method = m;
        self
    }

    /// Builder: strip referer.
    pub fn with_referer_stripping(mut self) -> OriginSite {
        self.strip_referer = true;
        self
    }

    /// Builder: popularity weight.
    pub fn with_popularity(mut self, w: f64) -> OriginSite {
        self.popularity_weight = w;
        self
    }

    /// The origin page URL.
    pub fn page_url(&self) -> String {
        format!("http://{}/", self.domain)
    }

    /// Register the origin site's web server.
    pub fn install(&self, net: &mut Network, country: CountryCode) {
        net.add_server(
            &self.domain,
            country,
            Box::new(OriginHandler {
                page_bytes: self.page_bytes + SNIPPET_BYTES,
            }),
        );
    }
}

struct OriginHandler {
    page_bytes: u64,
}

impl HttpHandler for OriginHandler {
    fn handle(&self, req: &HttpRequest, _ip: Ipv4Addr, _now: sim_core::SimTime) -> HttpResponse {
        if req.path() == "/" {
            HttpResponse::ok(ContentType::Html, self.page_bytes).no_store()
        } else {
            HttpResponse::not_found()
        }
    }
}

/// An online advertising network, as a possible Encore delivery vector
/// (paper §5.4: "we have explored the possibility of purchasing online
/// advertisements and delivering Encore measurement tasks inside them …
/// Unfortunately for us, this idea works poorly in practice because most
/// ad networks prevent advertisements from running custom JavaScript and
/// loading resources from remote origins").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdNetwork {
    /// Network name.
    pub name: String,
    /// Whether ads may run arbitrary JavaScript.
    pub allows_custom_js: bool,
    /// Whether ads may fetch resources from arbitrary remote origins.
    pub allows_remote_origins: bool,
    /// Whether advertisers can target specific countries (useful to
    /// Encore, were delivery possible).
    pub supports_geo_targeting: bool,
}

/// Why an ad network cannot carry Encore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdPolicyViolation {
    /// The network forbids custom JavaScript in creatives.
    NoCustomJs,
    /// The network forbids cross-origin resource loads from creatives.
    NoRemoteOrigins,
}

impl AdNetwork {
    /// A 2014-style major network: sandboxed creatives, no custom JS.
    pub fn mainstream(name: &str) -> AdNetwork {
        AdNetwork {
            name: name.to_string(),
            allows_custom_js: false,
            allows_remote_origins: false,
            supports_geo_targeting: true,
        }
    }

    /// One of the "few niche ad networks capable of hosting Encore".
    pub fn niche(name: &str) -> AdNetwork {
        AdNetwork {
            name: name.to_string(),
            allows_custom_js: true,
            allows_remote_origins: true,
            supports_geo_targeting: false,
        }
    }

    /// Whether an Encore measurement task could ship inside this
    /// network's creatives.
    pub fn can_deliver_encore(&self) -> Result<(), AdPolicyViolation> {
        if !self.allows_custom_js {
            return Err(AdPolicyViolation::NoCustomJs);
        }
        if !self.allows_remote_origins {
            return Err(AdPolicyViolation::NoRemoteOrigins);
        }
        Ok(())
    }
}

/// Render the one-line install snippet a webmaster adds to their page.
/// Its length is the per-page overhead the paper quantifies.
pub fn render_snippet(coordinator_domain: &str) -> String {
    format!(
        "<iframe src=\"//{coordinator_domain}/task\" width=\"0\" height=\"0\" style=\"display:none\"></iframe>"
    )
}

/// Render (a compact form of) the Appendix A measurement-task JavaScript
/// that the coordination server would serve for `task`. Used for byte
/// accounting and documentation; the simulation executes task semantics
/// natively.
pub fn render_task_js(task: &MeasurementTask, collector_domain: &str) -> String {
    let mid = task.id.to_string();
    let submit = format!("//{collector_domain}/submit?cmh-id={mid}&cmh-result=");
    match &task.spec {
        TaskSpec::Image { url } => format!(
            "var M={{}};M.id='{mid}';M.s=function(r){{new Image().src='{submit}'+r;}};\
             M.m=function(){{var i=new Image();i.style.display='none';\
             i.onload=function(){{M.s('success')}};i.onerror=function(){{M.s('failure')}};\
             i.src='{url}';document.body.appendChild(i);}};M.s('init');M.m();"
        ),
        TaskSpec::Stylesheet { url } => format!(
            "var M={{}};M.id='{mid}';M.s=function(r){{new Image().src='{submit}'+r;}};\
             M.m=function(){{var f=document.createElement('iframe');f.style.display='none';\
             var l=document.createElement('link');l.rel='stylesheet';l.href='{url}';\
             l.onload=function(){{var p=f.contentDocument.createElement('p');\
             M.s(getComputedStyle(p).color=='rgb(0, 0, 255)'?'success':'failure');}};\
             l.onerror=function(){{M.s('failure')}};}};M.s('init');M.m();"
        ),
        TaskSpec::Script { url } => format!(
            "var M={{}};M.id='{mid}';M.s=function(r){{new Image().src='{submit}'+r;}};\
             M.m=function(){{var s=document.createElement('script');\
             s.onload=function(){{M.s('success')}};s.onerror=function(){{M.s('failure')}};\
             s.src='{url}';document.head.appendChild(s);}};M.s('init');M.m();"
        ),
        TaskSpec::Iframe {
            page_url,
            probe_image_url,
            threshold,
        } => format!(
            "var M={{}};M.id='{mid}';M.s=function(r){{new Image().src='{submit}'+r;}};\
             M.m=function(){{var f=document.createElement('iframe');f.style.display='none';\
             f.onload=function(){{var t=Date.now();var i=new Image();\
             i.onload=function(){{M.s(Date.now()-t<{}?'success':'failure')}};\
             i.onerror=function(){{M.s('failure')}};i.src='{probe_image_url}';}};\
             f.src='{page_url}';document.body.appendChild(f);}};M.s('init');M.m();",
            threshold.as_millis()
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{MeasurementId, IFRAME_CACHE_THRESHOLD};
    use netsim::geo::{country, IspClass, World};
    use sim_core::{SimRng, SimTime};

    #[test]
    fn snippet_is_about_100_bytes() {
        let s = render_snippet("coordinator.encore-repro.net");
        // §6.3: "our prototype adds only 100 bytes to each origin page".
        assert!(
            (80..=130).contains(&s.len()),
            "snippet is {} bytes: {s}",
            s.len()
        );
    }

    #[test]
    fn origin_page_includes_snippet_overhead() {
        let mut net = Network::ideal(World::builtin());
        let origin = OriginSite::academic("prof.university.edu");
        origin.install(&mut net, country("US"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = net.fetch(
            &client,
            &HttpRequest::get(origin.page_url()),
            SimTime::ZERO,
            &mut rng,
        );
        let resp = out.result.unwrap();
        assert_eq!(resp.body_bytes, 24_000 + SNIPPET_BYTES);
    }

    #[test]
    fn task_js_contains_target_and_id() {
        let t = MeasurementTask {
            id: MeasurementId(0x42),
            spec: TaskSpec::Image {
                url: "http://censored.com/favicon.ico".into(),
            },
        };
        let js = render_task_js(&t, "collector.example");
        assert!(js.contains("http://censored.com/favicon.ico"));
        assert!(js.contains("m-0000000000000042"));
        assert!(js.contains("init"), "must submit init beacon");
        assert!(js.contains("onerror"));
    }

    #[test]
    fn iframe_js_embeds_threshold() {
        let t = MeasurementTask {
            id: MeasurementId(1),
            spec: TaskSpec::Iframe {
                page_url: "http://x.com/p".into(),
                probe_image_url: "http://x.com/i.png".into(),
                threshold: IFRAME_CACHE_THRESHOLD,
            },
        };
        let js = render_task_js(&t, "c.example");
        assert!(js.contains("<50") || js.contains("50?"), "{js}");
    }

    #[test]
    fn builders_compose() {
        let o = OriginSite::academic("blog.example")
            .with_install(InstallMethod::ServerSideInline)
            .with_referer_stripping()
            .with_popularity(5.0);
        assert_eq!(o.install_method, InstallMethod::ServerSideInline);
        assert!(o.strip_referer);
        assert_eq!(o.popularity_weight, 5.0);
    }

    #[test]
    fn mainstream_ad_networks_refuse_encore() {
        // §5.4's negative result, as an executable fact.
        let major = AdNetwork::mainstream("BigAds");
        assert_eq!(
            major.can_deliver_encore(),
            Err(AdPolicyViolation::NoCustomJs)
        );
        let half_open = AdNetwork {
            allows_custom_js: true,
            ..AdNetwork::mainstream("HalfOpen")
        };
        assert_eq!(
            half_open.can_deliver_encore(),
            Err(AdPolicyViolation::NoRemoteOrigins)
        );
        let niche = AdNetwork::niche("TinyAds");
        assert_eq!(niche.can_deliver_encore(), Ok(()));
        // The irony the paper notes: the networks that *could* carry
        // Encore lack the geo-targeting that made ads attractive.
        assert!(!niche.supports_geo_targeting);
        assert!(major.supports_geo_targeting);
    }

    #[test]
    fn origin_404s_other_paths() {
        let mut net = Network::ideal(World::builtin());
        OriginSite::academic("prof.example").install(&mut net, country("US"));
        let client = net.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = net.fetch(
            &client,
            &HttpRequest::get("http://prof.example/secret"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(
            out.result.unwrap().status,
            netsim::http::StatusCode::NOT_FOUND
        );
    }
}
