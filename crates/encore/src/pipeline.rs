//! The task-generation pipeline of Figure 3:
//!
//! ```text
//! patterns --PatternExpander--> URLs --TargetFetcher--> HARs
//!          --TaskGenerator--> measurement tasks
//! ```
//!
//! * [`PatternExpander`] — "expands URL patterns to a sample of up to 50
//!   URLs by scraping site-specific results … from a popular search
//!   engine" (§5.2).
//! * [`TargetFetcher`] — renders each URL in a headless browser from an
//!   unfiltered vantage point and records a HAR.
//! * [`TaskGenerator`] — "examines each HAR file to determine which of
//!   Encore's measurement task types, if any, can measure each resource"
//!   (§5.2), applying the Table 1 constraints: image size caps, non-empty
//!   stylesheets, nosniff scripts, the 100 KB page limit, and manual
//!   verification for iframe tasks.

use crate::tasks::{MeasurementId, MeasurementTask, TaskSpec, IFRAME_CACHE_THRESHOLD};
use browser::BrowserClient;
use netsim::http::{host_of, ContentType};
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};
use websim::har::Har;
use websim::{SearchIndex, UrlPattern};

/// Expands URL patterns into concrete URLs via the search index.
pub struct PatternExpander<'a> {
    index: &'a SearchIndex,
    /// Result cap per pattern (paper: 50).
    pub limit: usize,
}

impl<'a> PatternExpander<'a> {
    /// Expander over `index` with the paper's 50-URL cap.
    pub fn new(index: &'a SearchIndex) -> PatternExpander<'a> {
        PatternExpander { index, limit: 50 }
    }

    /// Expand one pattern.
    pub fn expand(&self, pattern: &UrlPattern) -> Vec<String> {
        self.index.query(pattern, self.limit)
    }

    /// Expand a whole target list, flattening (order: list order, then
    /// rank order).
    pub fn expand_all(&self, patterns: &[UrlPattern]) -> Vec<String> {
        patterns.iter().flat_map(|p| self.expand(p)).collect()
    }
}

/// Renders URLs to HARs from an unfiltered vantage point (the paper used
/// PhantomJS at Georgia Tech; "to the best of our knowledge, Georgia Tech
/// does not filter Web requests").
pub struct TargetFetcher {
    /// The headless browser.
    pub browser: BrowserClient,
}

impl TargetFetcher {
    /// Wrap a browser client (place it on an academic/datacenter network
    /// in an unfiltered country for fidelity).
    pub fn new(browser: BrowserClient) -> TargetFetcher {
        TargetFetcher { browser }
    }

    /// Fetch one URL to a HAR.
    pub fn fetch(&mut self, net: &mut Network, url: &str, now: SimTime) -> Har {
        self.browser.render_har(net, url, now)
    }

    /// Fetch a batch; each render starts at `now` (the fetcher's wall
    /// time does not gate the simulation).
    pub fn fetch_all(&mut self, net: &mut Network, urls: &[String], now: SimTime) -> Vec<Har> {
        urls.iter().map(|u| self.fetch(net, u, now)).collect()
    }
}

/// Task Generator configuration (the §5.2/§6.1 thresholds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationConfig {
    /// Maximum image size for image tasks. The paper analyses both 1 KB
    /// ("fit within a single packet") and 5 KB caps; the prototype favours
    /// small icons. Default 1 KB (conservative).
    pub max_image_bytes: u64,
    /// Maximum total page weight for iframe tasks ("our prototype only
    /// permits measurement tasks to load pages smaller than 100 KB").
    pub max_page_bytes: u64,
    /// Maximum single-object size before a page is excluded ("excludes
    /// pages that load flash applets, videos, or any other large
    /// objects").
    pub max_object_bytes: u64,
    /// Maximum script size for script tasks.
    pub max_script_bytes: u64,
    /// Whether to emit script tasks at all (they are Chrome-only and
    /// need nosniff targets).
    pub allow_script_tasks: bool,
    /// Whether to emit iframe tasks (they are expensive and "require
    /// manual verification of pages before deployment").
    pub allow_iframe_tasks: bool,
    /// Cache-probe threshold baked into iframe tasks.
    pub iframe_threshold: SimDuration,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        GenerationConfig {
            max_image_bytes: 1_000,
            max_page_bytes: 100_000,
            max_object_bytes: 100_000,
            max_script_bytes: 100_000,
            allow_script_tasks: true,
            allow_iframe_tasks: true,
            iframe_threshold: IFRAME_CACHE_THRESHOLD,
        }
    }
}

/// Statistics extracted from one HAR — the "modified version of the Task
/// Generator that emits statistics about sizes of accepted resources and
/// pages" used for the §6.1 feasibility analysis (Figures 4–6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarAnalysis {
    /// The analysed page URL.
    pub page_url: String,
    /// Whether the page itself loaded.
    pub page_ok: bool,
    /// Total page weight (Figure 5's metric).
    pub total_bytes: u64,
    /// Same-site images: `(url, bytes, cacheable)`.
    pub images: Vec<(String, u64, bool)>,
    /// Number of cacheable same-site images (Figure 6's metric).
    pub cacheable_images: usize,
    /// Whether any object exceeds the large-object bound.
    pub has_large_object: bool,
}

/// The Task Generator.
#[derive(Debug, Clone, Default)]
pub struct TaskGenerator {
    /// Thresholds.
    pub config: GenerationConfig,
    next_id: u64,
    /// URLs already emitted (dedup across HARs).
    seen: std::collections::BTreeSet<String>,
}

impl TaskGenerator {
    /// Generator with the given thresholds.
    pub fn new(config: GenerationConfig) -> TaskGenerator {
        TaskGenerator {
            config,
            next_id: 0,
            seen: std::collections::BTreeSet::new(),
        }
    }

    fn fresh_id(&mut self) -> MeasurementId {
        let id = MeasurementId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Extract the §6.1 statistics from a HAR (no tasks emitted).
    pub fn analyze(&self, har: &Har) -> HarAnalysis {
        let page_host = host_of(&har.page_url);
        let mut images = Vec::new();
        for e in &har.entries {
            if e.is_image() && host_of(&e.url) == page_host {
                images.push((e.url.clone(), e.body_bytes, e.cacheable));
            }
        }
        let cacheable_images = images.iter().filter(|(_, _, c)| *c).count();
        HarAnalysis {
            page_url: har.page_url.clone(),
            page_ok: har.page_ok,
            total_bytes: har.total_bytes(),
            images,
            cacheable_images,
            has_large_object: har.has_object_larger_than(self.config.max_object_bytes),
        }
    }

    /// Generate every task the Table 1 constraints permit for one HAR.
    ///
    /// `manually_verified` is consulted for iframe tasks only — the §5.2
    /// human-review stand-in ("requires manual verification of pages
    /// before deployment"). Pass `|_| true` to skip review, or a
    /// ground-truth-aware closure to emulate a careful operator rejecting
    /// pages with side effects.
    pub fn generate(
        &mut self,
        har: &Har,
        manually_verified: impl Fn(&str) -> bool,
    ) -> Vec<MeasurementTask> {
        let mut tasks = Vec::new();
        if !har.page_ok {
            return tasks;
        }
        let page_host = match host_of(&har.page_url) {
            Some(h) => h,
            None => return tasks,
        };

        for e in &har.entries {
            // Only resources hosted by the measurement target itself can
            // indicate that target's reachability.
            if host_of(&e.url).as_deref() != Some(page_host.as_str()) {
                continue;
            }
            if !e.ok {
                continue;
            }
            if self.seen.contains(&e.url) {
                continue;
            }
            let spec = match e.content_type {
                ContentType::Image if e.body_bytes <= self.config.max_image_bytes => {
                    Some(TaskSpec::Image { url: e.url.clone() })
                }
                ContentType::Stylesheet if e.body_bytes > 0 => {
                    Some(TaskSpec::Stylesheet { url: e.url.clone() })
                }
                ContentType::Script
                    if self.config.allow_script_tasks
                        && e.nosniff
                        && e.body_bytes <= self.config.max_script_bytes =>
                {
                    Some(TaskSpec::Script { url: e.url.clone() })
                }
                _ => None,
            };
            if let Some(spec) = spec {
                self.seen.insert(e.url.clone());
                tasks.push(MeasurementTask {
                    id: self.fresh_id(),
                    spec,
                });
            }
        }

        // Iframe task for the page itself.
        if self.config.allow_iframe_tasks && !self.seen.contains(&har.page_url) {
            let analysis = self.analyze(har);
            let small_enough =
                analysis.total_bytes <= self.config.max_page_bytes && !analysis.has_large_object;
            // Prefer a page-specific cacheable image (not the sitewide
            // favicon/logo, which other pages may already have cached —
            // the "Facebook thumbs-up" pitfall of §4.3.2).
            let probe = analysis
                .images
                .iter()
                .filter(|(_, _, cacheable)| *cacheable)
                .filter(|(url, _, _)| !url.ends_with("/favicon.ico") && !url.ends_with("/logo.png"))
                .map(|(url, _, _)| url.clone())
                .next()
                .or_else(|| {
                    analysis
                        .images
                        .iter()
                        .filter(|(_, _, c)| *c)
                        .map(|(u, _, _)| u.clone())
                        .next()
                });
            if small_enough {
                if let Some(probe_image_url) = probe {
                    if manually_verified(&har.page_url) {
                        self.seen.insert(har.page_url.clone());
                        tasks.push(MeasurementTask {
                            id: self.fresh_id(),
                            spec: TaskSpec::Iframe {
                                page_url: har.page_url.clone(),
                                probe_image_url,
                                threshold: self.config.iframe_threshold,
                            },
                        });
                    }
                }
            }
        }
        tasks
    }

    /// Run the generator over many HARs.
    pub fn generate_all(
        &mut self,
        hars: &[Har],
        manually_verified: impl Fn(&str) -> bool + Copy,
    ) -> Vec<MeasurementTask> {
        hars.iter()
            .flat_map(|h| self.generate(h, manually_verified))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::TaskType;
    use browser::Engine;
    use netsim::geo::{country, IspClass, World};
    use sim_core::SimRng;
    use websim::generator::{SyntheticWeb, WebConfig};
    use websim::har::HarEntry;

    fn har_entry(
        url: &str,
        ct: ContentType,
        bytes: u64,
        cacheable: bool,
        nosniff: bool,
    ) -> HarEntry {
        HarEntry {
            url: url.into(),
            status: 200,
            content_type: ct,
            body_bytes: bytes,
            cacheable,
            nosniff,
            time: SimDuration::from_millis(50),
            ok: true,
        }
    }

    fn small_page_har() -> Har {
        Har {
            page_url: "http://target.org/page.html".into(),
            entries: vec![
                har_entry(
                    "http://target.org/page.html",
                    ContentType::Html,
                    30_000,
                    false,
                    false,
                ),
                har_entry(
                    "http://target.org/favicon.ico",
                    ContentType::Image,
                    400,
                    true,
                    false,
                ),
                har_entry(
                    "http://target.org/photo.png",
                    ContentType::Image,
                    3_000,
                    true,
                    false,
                ),
                har_entry(
                    "http://target.org/style.css",
                    ContentType::Stylesheet,
                    2_000,
                    true,
                    false,
                ),
                har_entry(
                    "http://target.org/app.js",
                    ContentType::Script,
                    20_000,
                    true,
                    true,
                ),
                har_entry(
                    "http://cdn.example/like.png",
                    ContentType::Image,
                    700,
                    true,
                    false,
                ),
            ],
            page_ok: true,
        }
    }

    #[test]
    fn generates_all_four_task_types() {
        let mut generator = TaskGenerator::new(GenerationConfig::default());
        let tasks = generator.generate(&small_page_har(), |_| true);
        let types: std::collections::BTreeSet<_> =
            tasks.iter().map(|t| t.spec.task_type()).collect();
        assert!(types.contains(&TaskType::Image));
        assert!(types.contains(&TaskType::Stylesheet));
        assert!(types.contains(&TaskType::Script));
        assert!(types.contains(&TaskType::Iframe));
    }

    #[test]
    fn image_cap_excludes_large_images() {
        let mut generator = TaskGenerator::new(GenerationConfig::default());
        let tasks = generator.generate(&small_page_har(), |_| true);
        // photo.png (3 KB) exceeds the 1 KB default; favicon passes.
        let image_urls: Vec<_> = tasks
            .iter()
            .filter(|t| t.spec.task_type() == TaskType::Image)
            .map(|t| t.spec.target_url().to_string())
            .collect();
        assert_eq!(image_urls, vec!["http://target.org/favicon.ico"]);
    }

    #[test]
    fn relaxed_image_cap_admits_more() {
        let mut generator = TaskGenerator::new(GenerationConfig {
            max_image_bytes: 5_000,
            ..GenerationConfig::default()
        });
        let tasks = generator.generate(&small_page_har(), |_| true);
        let n_images = tasks
            .iter()
            .filter(|t| t.spec.task_type() == TaskType::Image)
            .count();
        assert_eq!(n_images, 2);
    }

    #[test]
    fn cross_origin_resources_never_become_tasks() {
        let mut generator = TaskGenerator::new(GenerationConfig {
            max_image_bytes: 5_000,
            ..GenerationConfig::default()
        });
        let tasks = generator.generate(&small_page_har(), |_| true);
        assert!(tasks
            .iter()
            .all(|t| !t.spec.target_url().contains("cdn.example")));
    }

    #[test]
    fn scripts_require_nosniff() {
        let mut har = small_page_har();
        // Strip nosniff from the script.
        for e in &mut har.entries {
            e.nosniff = false;
        }
        let mut generator = TaskGenerator::new(GenerationConfig::default());
        let tasks = generator.generate(&har, |_| true);
        assert!(tasks.iter().all(|t| t.spec.task_type() != TaskType::Script));
    }

    #[test]
    fn heavy_pages_get_no_iframe_task() {
        let mut har = small_page_har();
        har.entries.push(har_entry(
            "http://target.org/video.bin",
            ContentType::Other,
            900_000,
            false,
            false,
        ));
        let mut generator = TaskGenerator::new(GenerationConfig::default());
        let tasks = generator.generate(&har, |_| true);
        assert!(tasks.iter().all(|t| t.spec.task_type() != TaskType::Iframe));
    }

    #[test]
    fn manual_verification_gates_iframe_tasks() {
        let mut generator = TaskGenerator::new(GenerationConfig::default());
        let tasks = generator.generate(&small_page_har(), |_| false);
        assert!(tasks.iter().all(|t| t.spec.task_type() != TaskType::Iframe));
    }

    #[test]
    fn iframe_probe_avoids_sitewide_assets() {
        let mut generator = TaskGenerator::new(GenerationConfig::default());
        let tasks = generator.generate(&small_page_har(), |_| true);
        let iframe = tasks
            .iter()
            .find(|t| t.spec.task_type() == TaskType::Iframe)
            .expect("iframe task");
        match &iframe.spec {
            TaskSpec::Iframe {
                probe_image_url, ..
            } => {
                assert_eq!(probe_image_url, "http://target.org/photo.png");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn failed_pages_generate_nothing() {
        let mut har = small_page_har();
        har.page_ok = false;
        let mut generator = TaskGenerator::new(GenerationConfig::default());
        assert!(generator.generate(&har, |_| true).is_empty());
    }

    #[test]
    fn duplicate_resources_deduplicated_across_hars() {
        let mut generator = TaskGenerator::new(GenerationConfig::default());
        let a = generator.generate(&small_page_har(), |_| true);
        let b = generator.generate(&small_page_har(), |_| true);
        assert!(!a.is_empty());
        // Second HAR for the same page: resources already covered; only
        // the page URL dedup also blocks the iframe task.
        assert!(b.is_empty());
    }

    #[test]
    fn measurement_ids_are_unique() {
        let mut generator = TaskGenerator::new(GenerationConfig {
            max_image_bytes: 5_000,
            ..GenerationConfig::default()
        });
        let tasks = generator.generate(&small_page_har(), |_| true);
        let mut ids: Vec<_> = tasks.iter().map(|t| t.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), tasks.len());
    }

    #[test]
    fn analysis_counts_same_site_images_only() {
        let generator = TaskGenerator::new(GenerationConfig::default());
        let a = generator.analyze(&small_page_har());
        assert_eq!(a.images.len(), 2, "cdn image excluded");
        assert_eq!(a.cacheable_images, 2);
        assert!(a.page_ok);
        assert_eq!(a.total_bytes, 30_000 + 400 + 3_000 + 2_000 + 20_000 + 700);
    }

    #[test]
    fn end_to_end_pipeline_over_synthetic_web() {
        // patterns → URLs → HARs → tasks, over a real (small) corpus.
        let mut rng = SimRng::new(0x99);
        let web = SyntheticWeb::generate(&WebConfig::small(), &mut rng);
        let mut net = Network::ideal(World::builtin());
        web.install(&mut net, &mut rng);
        let index = SearchIndex::build(&web);
        let expander = PatternExpander::new(&index);

        let patterns: Vec<UrlPattern> = web.domains().into_iter().map(UrlPattern::Domain).collect();
        let urls = expander.expand_all(&patterns);
        assert!(!urls.is_empty());
        assert!(urls.len() <= patterns.len() * 50);

        let root = SimRng::new(1);
        let fetcher_browser = BrowserClient::new(
            &mut net,
            country("US"),
            IspClass::Academic,
            Engine::Chrome,
            &root,
        );
        let mut fetcher = TargetFetcher::new(fetcher_browser);
        let hars = fetcher.fetch_all(&mut net, &urls[..40.min(urls.len())], SimTime::ZERO);
        let mut generator = TaskGenerator::new(GenerationConfig {
            max_image_bytes: 5_000,
            ..GenerationConfig::default()
        });
        let tasks = generator.generate_all(&hars, |_| true);
        assert!(
            !tasks.is_empty(),
            "a 40-page sample of the corpus must yield tasks"
        );
        // All tasks target corpus domains.
        for t in &tasks {
            let d = t.spec.target_domain().unwrap();
            assert!(web.site(&d).is_some(), "task targets unknown domain {d}");
        }
    }
}
