//! Measurement-target lists and ethics staging.
//!
//! §5.1: "During initial deployment, Encore relies on third parties to
//! provide lists of URLs to test for Web filtering" — Herdict, GreatFire,
//! Filbaan. Our built-in list mirrors the *kinds* of entries on Herdict's
//! "high value" list: likely filtering targets (rights groups, press
//! freedom, circumvention) plus high-collateral services (social media).
//!
//! Table 2 documents how ethical review progressively restricted what
//! Encore measures: from 300+ arbitrary URLs, to favicons only, to
//! favicons on a few high-collateral sites. [`EthicsStage`] reproduces
//! those restrictions as a filter over generated tasks, and the §7
//! experiments run at [`EthicsStage::FaviconsFewSites`] exactly as the
//! paper's final data collection did.

use crate::tasks::{MeasurementTask, TaskSpec, TaskType};
use serde::{Deserialize, Serialize};
use websim::UrlPattern;

/// A list of measurement-target patterns.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TargetList {
    /// Human-readable provenance, e.g. `"herdict-high-value"`.
    pub source: String,
    /// The patterns.
    pub patterns: Vec<UrlPattern>,
}

impl TargetList {
    /// An empty list with a source tag.
    pub fn named(source: impl Into<String>) -> TargetList {
        TargetList {
            source: source.into(),
            patterns: Vec::new(),
        }
    }

    /// Build the Herdict-style list over a corpus of domains: every corpus
    /// domain plus the three high-collateral social sites.
    pub fn herdict_style(corpus_domains: &[String]) -> TargetList {
        let mut list = TargetList::named("herdict-high-value");
        for d in corpus_domains {
            list.patterns.push(UrlPattern::Domain(d.clone()));
        }
        for d in censor::registry::SAFE_TARGETS {
            list.patterns.push(UrlPattern::Domain(d.to_string()));
        }
        list
    }

    /// Only the §7.2 "safe" targets (facebook/youtube/twitter).
    pub fn safe_targets_only() -> TargetList {
        let mut list = TargetList::named("safe-targets");
        for d in censor::registry::SAFE_TARGETS {
            list.patterns.push(UrlPattern::Domain(d.to_string()));
        }
        list
    }

    /// Parse a list from the textual format curated lists circulate in
    /// (one entry per line; `#` comments; blank lines ignored; entries
    /// are domains, exact URLs, or `…/*` prefixes — paper §5.1's three
    /// pattern kinds). Duplicate patterns are dropped, preserving first
    /// occurrence.
    pub fn parse_text(source: impl Into<String>, text: &str) -> TargetList {
        let mut list = TargetList::named(source);
        let mut seen = std::collections::BTreeSet::new();
        for line in text.lines() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let pattern = UrlPattern::parse(line);
            if seen.insert(pattern.to_string()) {
                list.patterns.push(pattern);
            }
        }
        list
    }

    /// Append a pattern.
    pub fn push(&mut self, p: UrlPattern) {
        self.patterns.push(p);
    }

    /// Merge another list's patterns (webmaster reciprocity, §6.3: "in
    /// exchange for installing our measurement scripts, webmasters could
    /// add their own site to Encore's list of targets"). Duplicates are
    /// dropped.
    pub fn merge(&mut self, other: &TargetList) {
        let existing: std::collections::BTreeSet<String> =
            self.patterns.iter().map(|p| p.to_string()).collect();
        for p in &other.patterns {
            if !existing.contains(&p.to_string()) {
                self.patterns.push(p.clone());
            }
        }
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

/// The Table 2 deployment stages, most permissive first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EthicsStage {
    /// March 2014: "over 300 URLs", all task types.
    Unrestricted,
    /// April 2014: "we configure Encore to only measure favicons".
    FaviconsOnly,
    /// May 2014: "restrict Encore to measure favicons on only a few
    /// sites" (the high-collateral social-media trio).
    FaviconsFewSites,
}

impl EthicsStage {
    /// Whether a generated task is permitted at this stage.
    pub fn permits(&self, task: &MeasurementTask) -> bool {
        match self {
            EthicsStage::Unrestricted => true,
            EthicsStage::FaviconsOnly => is_favicon_image_task(&task.spec),
            EthicsStage::FaviconsFewSites => {
                is_favicon_image_task(&task.spec)
                    && task.spec.target_domain().is_some_and(|d| {
                        censor::registry::SAFE_TARGETS
                            .iter()
                            .any(|s| d == *s || d.ends_with(&format!(".{s}")))
                    })
            }
        }
    }

    /// Filter a task set down to what this stage permits.
    pub fn filter(&self, tasks: Vec<MeasurementTask>) -> Vec<MeasurementTask> {
        tasks.into_iter().filter(|t| self.permits(t)).collect()
    }
}

fn is_favicon_image_task(spec: &TaskSpec) -> bool {
    spec.task_type() == TaskType::Image && spec.target_url().ends_with("/favicon.ico")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::MeasurementId;

    fn task(spec: TaskSpec) -> MeasurementTask {
        MeasurementTask {
            id: MeasurementId(0),
            spec,
        }
    }

    #[test]
    fn herdict_style_includes_corpus_and_social() {
        let list = TargetList::herdict_style(&["rights-watch-0.org".to_string()]);
        assert_eq!(list.len(), 4);
        assert!(list
            .patterns
            .contains(&UrlPattern::Domain("youtube.com".into())));
        assert!(list
            .patterns
            .contains(&UrlPattern::Domain("rights-watch-0.org".into())));
    }

    #[test]
    fn parse_text_handles_comments_blanks_and_kinds() {
        let text = "\
# Herdict-style high value list
youtube.com           # social media
http://blog.example/politics/*   # a section
http://news.example/article-42.html

twitter.com
youtube.com           # duplicate, dropped
";
        let list = TargetList::parse_text("test-list", text);
        assert_eq!(list.len(), 4);
        assert_eq!(list.patterns[0], UrlPattern::Domain("youtube.com".into()));
        assert!(matches!(list.patterns[1], UrlPattern::Prefix(_)));
        assert!(matches!(list.patterns[2], UrlPattern::Exact(_)));
        assert_eq!(list.patterns[3], UrlPattern::Domain("twitter.com".into()));
    }

    #[test]
    fn parse_text_empty_input() {
        let list = TargetList::parse_text("empty", "\n# only a comment\n");
        assert!(list.is_empty());
    }

    #[test]
    fn merge_deduplicates() {
        let mut a = TargetList::parse_text("a", "youtube.com\nx.org");
        let b = TargetList::parse_text("b", "x.org\nwebmaster-site.net");
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert!(a
            .patterns
            .contains(&UrlPattern::Domain("webmaster-site.net".into())));
    }

    #[test]
    fn unrestricted_permits_everything() {
        let t = task(TaskSpec::Iframe {
            page_url: "http://x.com/p".into(),
            probe_image_url: "http://x.com/i.png".into(),
            threshold: crate::tasks::IFRAME_CACHE_THRESHOLD,
        });
        assert!(EthicsStage::Unrestricted.permits(&t));
    }

    #[test]
    fn favicons_only_rejects_other_tasks() {
        let stage = EthicsStage::FaviconsOnly;
        assert!(stage.permits(&task(TaskSpec::Image {
            url: "http://any-site.org/favicon.ico".into()
        })));
        assert!(!stage.permits(&task(TaskSpec::Image {
            url: "http://any-site.org/logo.png".into()
        })));
        assert!(!stage.permits(&task(TaskSpec::Stylesheet {
            url: "http://any-site.org/style.css".into()
        })));
    }

    #[test]
    fn final_stage_limits_to_safe_sites() {
        let stage = EthicsStage::FaviconsFewSites;
        assert!(stage.permits(&task(TaskSpec::Image {
            url: "http://youtube.com/favicon.ico".into()
        })));
        assert!(stage.permits(&task(TaskSpec::Image {
            url: "http://www.facebook.com/favicon.ico".into()
        })));
        assert!(!stage.permits(&task(TaskSpec::Image {
            url: "http://rights-watch-0.org/favicon.ico".into()
        })));
        assert!(!stage.permits(&task(TaskSpec::Image {
            url: "http://youtube.com/logo.png".into()
        })));
    }

    #[test]
    fn stages_are_ordered_by_restrictiveness() {
        assert!(EthicsStage::Unrestricted < EthicsStage::FaviconsOnly);
        assert!(EthicsStage::FaviconsOnly < EthicsStage::FaviconsFewSites);
    }

    #[test]
    fn filter_retains_only_permitted() {
        let tasks = vec![
            task(TaskSpec::Image {
                url: "http://youtube.com/favicon.ico".into(),
            }),
            task(TaskSpec::Image {
                url: "http://obscure-site.org/favicon.ico".into(),
            }),
            task(TaskSpec::Script {
                url: "http://youtube.com/base.js".into(),
            }),
        ];
        let kept = EthicsStage::FaviconsFewSites.filter(tasks);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].spec.target_url(), "http://youtube.com/favicon.ico");
    }
}
