//! The assembled Encore deployment — the full Figure 2 flow.
//!
//! ```text
//! 1. origin serves page to client (with the Encore snippet)
//! 2. client fetches the measurement task from the coordination server
//! 3. task issues a cross-origin request to the measurement target
//! 4. a censor may filter the request or response
//! 5. client submits init + result to the collection server
//! ```
//!
//! Every arrow in that diagram is a real fetch through the simulated
//! network — so a censor can block the origin, the coordination server,
//! the target, or the collection server, and the system degrades exactly
//! as §8 describes.

use crate::collection::{
    write_submit_url_cached, CollectionServer, EncodeCache, SubmissionParts, SubmissionPhase,
};
use crate::coordination::{ClientProfile, CoordinationServer, SchedulingStrategy};
use crate::delivery::{InstallMethod, OriginSite};
use crate::geo::GeoDb;
use crate::inference::{Detection, FilteringDetector};
use crate::tasks::{execute_task, MeasurementTask, TaskExecution};
use browser::BrowserClient;
use netsim::geo::{country, CountryCode};
use netsim::http::{ContentType, HttpRequest, HttpResponse};
use netsim::network::{ConstHandler, Network};
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

/// Minimum dwell time to *attempt* a task: the page's JavaScript must
/// have run. The Appendix A snippet submits its `init` beacon and starts
/// measuring as soon as the page loads, so even short visits attempt one
/// task (§6.2: 999 of 1,171 visits attempted a measurement; dwell over
/// ten seconds is "more than sufficient", not necessary).
pub const MIN_DWELL_FOR_TASK: SimDuration = SimDuration::from_secs(2);

/// Dwell time per additional task (§6.2: "the 35% of visitors who
/// remained for longer than a minute could easily run multiple
/// measurement tasks").
pub const DWELL_PER_EXTRA_TASK: SimDuration = SimDuration::from_secs(60);

/// What happened during one client visit to an origin page.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VisitOutcome {
    /// Did the origin page itself load?
    pub origin_loaded: bool,
    /// Did the client obtain a measurement task (coordination server
    /// reachable, pool non-empty, compatible task available)?
    pub got_task: bool,
    /// Tasks executed with their observable results.
    pub executed: Vec<(MeasurementTask, TaskExecution)>,
    /// Init beacons that reached the collection server.
    pub inits_delivered: usize,
    /// Results that reached the collection server.
    pub results_delivered: usize,
}

impl VisitOutcome {
    fn empty() -> VisitOutcome {
        VisitOutcome {
            origin_loaded: false,
            got_task: false,
            executed: Vec::new(),
            inits_delivered: 0,
            results_delivered: 0,
        }
    }
}

/// A deployed Encore instance.
pub struct EncoreSystem {
    /// Coordination server domain.
    pub coordinator_domain: String,
    /// The scheduler.
    pub coordination: CoordinationServer,
    /// The collection service.
    pub collection: CollectionServer,
    /// Collection mirror domains, tried in order when the primary is
    /// unreachable (§8: "collection of the results could be distributed
    /// across servers hosted in different domains, to ensure that
    /// collection is not blocked").
    pub collector_mirrors: Vec<String>,
    /// Participating origin sites.
    pub origins: Vec<OriginSite>,
    /// Cap on tasks per visit.
    pub max_tasks_per_visit: usize,
    /// Precomputed `http://<coordinator>/task` URL (hot path).
    task_url: String,
    /// Reused scratch request for submissions — the delivery hot path
    /// rewrites its URL/referer buffers in place instead of allocating a
    /// fresh request per submission.
    submit_req: HttpRequest,
    /// Reused scratch buffer for the origin page URL.
    page_url_buf: String,
    /// Memo of percent-encoded target/user-agent fields for the submit
    /// URL builder.
    encode_cache: EncodeCache,
}

impl EncoreSystem {
    /// Deploy Encore: registers the coordination and collection servers
    /// (hosted in `infra_country`) and the given origin sites.
    pub fn deploy(
        net: &mut Network,
        tasks: Vec<MeasurementTask>,
        strategy: SchedulingStrategy,
        origins: Vec<OriginSite>,
        infra_country: CountryCode,
    ) -> EncoreSystem {
        let coordinator_domain = "coordinator.encore-repro.net".to_string();
        // The coordination endpoint serves the measurement-task JS: a
        // small script response.
        net.add_server(
            &coordinator_domain,
            infra_country,
            Box::new(ConstHandler(
                HttpResponse::ok(ContentType::Script, 3_000).no_store(),
            )),
        );
        let collection = CollectionServer::new("collector.encore-repro.net");
        collection.install(net, infra_country);
        for o in &origins {
            o.install(net, infra_country);
        }
        let task_url = format!("http://{coordinator_domain}/task");
        EncoreSystem {
            coordinator_domain,
            coordination: CoordinationServer::new(tasks, strategy),
            collection,
            collector_mirrors: Vec::new(),
            origins,
            max_tasks_per_visit: 4,
            task_url,
            submit_req: HttpRequest::get(String::new()),
            page_url_buf: String::new(),
            encode_cache: EncodeCache::default(),
        }
    }

    /// Add a collection mirror in `country` (shares the primary's store).
    /// Clients fall back to mirrors when the primary collector is
    /// blocked.
    pub fn add_collector_mirror(&mut self, net: &mut Network, domain: &str, country: CountryCode) {
        self.collection.install_mirror(net, domain, country);
        self.collector_mirrors.push(domain.to_string());
    }

    /// How many tasks a visit of length `dwell` can run.
    pub fn tasks_for_dwell(&self, dwell: SimDuration) -> usize {
        if dwell < MIN_DWELL_FOR_TASK {
            return 0;
        }
        let extra = (dwell.as_secs() / DWELL_PER_EXTRA_TASK.as_secs()) as usize;
        (1 + extra).min(self.max_tasks_per_visit)
    }

    /// Simulate one client visiting `origin` and staying `dwell`.
    ///
    /// Every step is a real network fetch subject to censorship. The
    /// `user_agent` is what the client self-reports (crawlers announce
    /// themselves).
    pub fn run_visit(
        &mut self,
        net: &mut Network,
        client: &mut BrowserClient,
        origin: &OriginSite,
        dwell: SimDuration,
        now: SimTime,
        user_agent: &str,
    ) -> VisitOutcome {
        // Build the page URL in the reused scratch buffer (taken out of
        // self for the duration of the visit so it can be borrowed
        // alongside `&mut self` calls below).
        let mut page_url = std::mem::take(&mut self.page_url_buf);
        page_url.clear();
        page_url.push_str("http://");
        page_url.push_str(&origin.domain);
        page_url.push('/');
        let outcome =
            self.visit_with_page_url(net, client, origin, dwell, now, user_agent, &page_url);
        self.page_url_buf = page_url;
        outcome
    }

    #[allow(clippy::too_many_arguments)]
    fn visit_with_page_url(
        &mut self,
        net: &mut Network,
        client: &mut BrowserClient,
        origin: &OriginSite,
        dwell: SimDuration,
        now: SimTime,
        user_agent: &str,
        page_url: &str,
    ) -> VisitOutcome {
        let mut outcome = VisitOutcome::empty();

        // 1. Load the origin page.
        let (page, page_time) = client.fetch_following_redirects(net, page_url, None, now);
        if !page.as_ref().is_ok_and(|r| r.status.is_success()) {
            return outcome;
        }
        outcome.origin_loaded = true;
        let mut t = now + page_time;

        // 2. Obtain the measurement task.
        match origin.install_method {
            InstallMethod::Tag => {
                let (resp, fetch_time) =
                    client.fetch_following_redirects(net, &self.task_url, Some(page_url), t);
                t += fetch_time;
                if !resp.as_ref().is_ok_and(|r| r.status.is_success()) {
                    // §5.4: "a censor can simply block access to the
                    // coordination server".
                    return outcome;
                }
            }
            InstallMethod::ServerSideInline => {
                // The webmaster's server already inlined the task; no
                // client-side fetch to block.
            }
        }

        let n_tasks = self.tasks_for_dwell(dwell);
        let profile = ClientProfile {
            engine: client.engine,
        };
        let referer = if origin.strip_referer {
            None
        } else {
            Some(page_url)
        };

        for _ in 0..n_tasks {
            let Some(task) = self.coordination.next_task(profile, t, &mut client.rng) else {
                break;
            };
            outcome.got_task = true;

            // 3. Submit the init beacon (Appendix A: "Submit to the
            // server as soon as the client loads the page").
            let init = SubmissionParts {
                measurement_id: task.id,
                phase: SubmissionPhase::Init,
                outcome: None,
                elapsed_ms: 0,
                task_type: task.spec.task_type(),
                target_url: task.spec.target_url(),
                user_agent,
                congested: false,
            };
            if self.deliver(net, client, &init, referer, t) {
                outcome.inits_delivered += 1;
            }

            // 4. Execute the measurement.
            let exec = execute_task(&task, client, net, t);
            t += exec.elapsed;

            // 5. Submit the result.
            let result = SubmissionParts {
                measurement_id: task.id,
                phase: SubmissionPhase::Result,
                outcome: Some(exec.outcome),
                elapsed_ms: exec.elapsed.as_millis(),
                task_type: task.spec.task_type(),
                target_url: task.spec.target_url(),
                user_agent,
                congested: exec.congested,
            };
            if self.deliver(net, client, &result, referer, t) {
                outcome.results_delivered += 1;
            }
            outcome.executed.push((task, exec));
        }
        outcome
    }

    /// Submit to the collection server, falling back to mirrors if the
    /// primary is unreachable; true if any endpoint accepted it. The
    /// request is assembled in a reused scratch buffer: the hot path
    /// allocates nothing once the buffers have grown to steady state.
    fn deliver(
        &mut self,
        net: &mut Network,
        client: &mut BrowserClient,
        parts: &SubmissionParts<'_>,
        referer: Option<&str>,
        now: SimTime,
    ) -> bool {
        let mut req = std::mem::replace(&mut self.submit_req, HttpRequest::get(String::new()));
        let mut delivered = false;
        for i in 0..=self.collector_mirrors.len() {
            let domain: &str = if i == 0 {
                &self.collection.domain
            } else {
                &self.collector_mirrors[i - 1]
            };
            req.url.clear();
            write_submit_url_cached(&mut req.url, domain, parts, &mut self.encode_cache);
            match (referer, &mut req.referer) {
                (Some(r), Some(buf)) => {
                    buf.clear();
                    buf.push_str(r);
                }
                (Some(r), slot @ None) => *slot = Some(r.to_string()),
                (None, slot) => *slot = None,
            }
            let out = client.fetch_once(net, &req, now);
            if out.result.is_ok_and(|r| r.status.is_success()) {
                delivered = true;
                break;
            }
        }
        self.submit_req = req;
        delivered
    }

    /// Run the §7.2 detector over everything collected so far.
    pub fn detect(&self, geo: &GeoDb, detector: &FilteringDetector) -> Vec<Detection> {
        detector.detect(&self.collection.records(), geo)
    }

    /// Convenience: deploy in the US (where the paper's infrastructure
    /// lived).
    pub fn default_infra_country() -> CountryCode {
        country("US")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{MeasurementId, TaskOutcome, TaskSpec};
    use browser::Engine;
    use censor::national::NationalCensor;
    use censor::policy::{CensorPolicy, Mechanism};
    use netsim::geo::{IspClass, World};
    use netsim::network::ConstHandler;
    use sim_core::SimRng;

    fn target_tasks() -> Vec<MeasurementTask> {
        vec![MeasurementTask {
            id: MeasurementId(0),
            spec: TaskSpec::Image {
                url: "http://target.example/favicon.ico".into(),
            },
        }]
    }

    fn base_network() -> Network {
        let mut net = Network::ideal(World::builtin());
        net.add_server(
            "target.example",
            country("US"),
            Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
        );
        net
    }

    fn client(net: &mut Network, cc: &str) -> BrowserClient {
        let root = SimRng::new(0x51);
        BrowserClient::new(
            net,
            country(cc),
            IspClass::Residential,
            Engine::Chrome,
            &root,
        )
    }

    #[test]
    fn full_visit_flow_collects_a_measurement() {
        let mut net = base_network();
        let origin = OriginSite::academic("prof.example");
        let mut sys = EncoreSystem::deploy(
            &mut net,
            target_tasks(),
            SchedulingStrategy::RoundRobin,
            vec![origin.clone()],
            country("US"),
        );
        let mut c = client(&mut net, "DE");
        let out = sys.run_visit(
            &mut net,
            &mut c,
            &origin,
            SimDuration::from_secs(30),
            SimTime::ZERO,
            "Chrome",
        );
        assert!(out.origin_loaded);
        assert!(out.got_task);
        assert_eq!(out.executed.len(), 1);
        assert_eq!(out.executed[0].1.outcome, TaskOutcome::Success);
        assert_eq!(out.inits_delivered, 1);
        assert_eq!(out.results_delivered, 1);
        // Collector saw init + result.
        assert_eq!(sys.collection.len(), 2);
    }

    #[test]
    fn short_dwell_runs_no_task() {
        let mut net = base_network();
        let origin = OriginSite::academic("prof.example");
        let mut sys = EncoreSystem::deploy(
            &mut net,
            target_tasks(),
            SchedulingStrategy::RoundRobin,
            vec![origin.clone()],
            country("US"),
        );
        let mut c = client(&mut net, "DE");
        let out = sys.run_visit(
            &mut net,
            &mut c,
            &origin,
            SimDuration::from_millis(800),
            SimTime::ZERO,
            "Chrome",
        );
        assert!(out.origin_loaded);
        assert!(out.executed.is_empty());
        assert_eq!(sys.collection.len(), 0);
    }

    #[test]
    fn long_dwell_runs_multiple_tasks() {
        let mut net = base_network();
        let origin = OriginSite::academic("prof.example");
        let mut sys = EncoreSystem::deploy(
            &mut net,
            target_tasks(),
            SchedulingStrategy::RoundRobin,
            vec![origin.clone()],
            country("US"),
        );
        assert_eq!(sys.tasks_for_dwell(SimDuration::from_secs(1)), 0);
        assert_eq!(sys.tasks_for_dwell(SimDuration::from_secs(5)), 1);
        assert_eq!(sys.tasks_for_dwell(SimDuration::from_secs(30)), 1);
        assert_eq!(sys.tasks_for_dwell(SimDuration::from_secs(90)), 2);
        assert_eq!(sys.tasks_for_dwell(SimDuration::from_secs(600)), 4); // capped
        let mut c = client(&mut net, "DE");
        let out = sys.run_visit(
            &mut net,
            &mut c,
            &origin,
            SimDuration::from_secs(150),
            SimTime::ZERO,
            "Chrome",
        );
        assert_eq!(out.executed.len(), 3);
    }

    #[test]
    fn measurement_of_blocked_target_reports_failure() {
        let mut net = base_network();
        let policy =
            CensorPolicy::named("censor").block_domain("target.example", Mechanism::DnsNxDomain);
        net.add_middlebox(Box::new(NationalCensor::new(country("PK"), policy)));
        let origin = OriginSite::academic("prof.example");
        let mut sys = EncoreSystem::deploy(
            &mut net,
            target_tasks(),
            SchedulingStrategy::RoundRobin,
            vec![origin.clone()],
            country("US"),
        );
        let mut c = client(&mut net, "PK");
        let out = sys.run_visit(
            &mut net,
            &mut c,
            &origin,
            SimDuration::from_secs(30),
            SimTime::ZERO,
            "Chrome",
        );
        assert_eq!(out.executed[0].1.outcome, TaskOutcome::Failure);
        // The failure made it to the collector — filtering the target
        // does not stop result submission.
        assert_eq!(out.results_delivered, 1);
    }

    #[test]
    fn blocking_the_coordinator_stops_tag_installs() {
        let mut net = base_network();
        let policy = CensorPolicy::named("anti-encore")
            .block_domain("coordinator.encore-repro.net", Mechanism::DnsNxDomain);
        net.add_middlebox(Box::new(NationalCensor::new(country("PK"), policy)));
        let origin = OriginSite::academic("prof.example");
        let mut sys = EncoreSystem::deploy(
            &mut net,
            target_tasks(),
            SchedulingStrategy::RoundRobin,
            vec![origin.clone()],
            country("US"),
        );
        let mut c = client(&mut net, "PK");
        let out = sys.run_visit(
            &mut net,
            &mut c,
            &origin,
            SimDuration::from_secs(30),
            SimTime::ZERO,
            "Chrome",
        );
        assert!(out.origin_loaded);
        assert!(!out.got_task, "censor blocked the coordination server");
        assert!(out.executed.is_empty());
    }

    #[test]
    fn server_side_inline_survives_coordinator_blocking() {
        let mut net = base_network();
        let policy = CensorPolicy::named("anti-encore")
            .block_domain("coordinator.encore-repro.net", Mechanism::DnsNxDomain);
        net.add_middlebox(Box::new(NationalCensor::new(country("PK"), policy)));
        let origin =
            OriginSite::academic("robust.example").with_install(InstallMethod::ServerSideInline);
        let mut sys = EncoreSystem::deploy(
            &mut net,
            target_tasks(),
            SchedulingStrategy::RoundRobin,
            vec![origin.clone()],
            country("US"),
        );
        let mut c = client(&mut net, "PK");
        let out = sys.run_visit(
            &mut net,
            &mut c,
            &origin,
            SimDuration::from_secs(30),
            SimTime::ZERO,
            "Chrome",
        );
        // §8: the inline install path keeps measuring.
        assert!(out.got_task);
        assert_eq!(out.executed.len(), 1);
    }

    #[test]
    fn referer_stripping_respected() {
        let mut net = base_network();
        let origin = OriginSite::academic("private.example").with_referer_stripping();
        let mut sys = EncoreSystem::deploy(
            &mut net,
            target_tasks(),
            SchedulingStrategy::RoundRobin,
            vec![origin.clone()],
            country("US"),
        );
        let mut c = client(&mut net, "DE");
        sys.run_visit(
            &mut net,
            &mut c,
            &origin,
            SimDuration::from_secs(30),
            SimTime::ZERO,
            "Chrome",
        );
        assert!(sys.collection.records().iter().all(|r| r.referer.is_none()));
    }

    #[test]
    fn end_to_end_detection_of_regional_filtering() {
        let mut net = base_network();
        let policy =
            CensorPolicy::named("censor").block_domain("target.example", Mechanism::TcpReset);
        let mut censor = NationalCensor::new(country("IR"), policy);
        censor.resolve_ip_rules(&net.dns);
        net.add_middlebox(Box::new(censor));

        let origin = OriginSite::academic("prof.example");
        let mut sys = EncoreSystem::deploy(
            &mut net,
            target_tasks(),
            SchedulingStrategy::RoundRobin,
            vec![origin.clone()],
            country("US"),
        );
        // 15 Iranian and 15 German clients visit.
        for cc in ["IR", "DE"] {
            for _ in 0..15 {
                let mut c = client(&mut net, cc);
                sys.run_visit(
                    &mut net,
                    &mut c,
                    &origin,
                    SimDuration::from_secs(30),
                    SimTime::from_secs(60),
                    "Chrome",
                );
            }
        }
        let geo = GeoDb::from_allocator(&net.allocator);
        let detections = sys.detect(&geo, &FilteringDetector::default());
        assert_eq!(detections.len(), 1);
        assert_eq!(detections[0].country, country("IR"));
        assert_eq!(detections[0].domain, "target.example");
    }
}
