//! Property tests for the Encore system crate.

use browser::Engine;
use encore::coordination::{ClientProfile, CoordinationServer, SchedulingStrategy};
use encore::delivery::render_task_js;
use encore::targets::EthicsStage;
use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec, IFRAME_CACHE_THRESHOLD};
use proptest::prelude::*;
use sim_core::{SimDuration, SimRng, SimTime};

fn arb_spec() -> impl Strategy<Value = TaskSpec> {
    let url = "http://[a-z]{1,10}\\.(com|org)/[a-z0-9/._-]{0,30}";
    prop_oneof![
        url.prop_map(|u| TaskSpec::Image { url: u }),
        url.prop_map(|u| TaskSpec::Stylesheet { url: u }),
        url.prop_map(|u| TaskSpec::Script { url: u }),
        (url, url).prop_map(|(p, i)| TaskSpec::Iframe {
            page_url: p,
            probe_image_url: i,
            threshold: IFRAME_CACHE_THRESHOLD,
        }),
    ]
}

proptest! {
    /// The Table 2 stages are strictly nested: anything the final stage
    /// permits, earlier stages permit too.
    #[test]
    fn ethics_stages_are_nested(spec in arb_spec()) {
        let task = MeasurementTask {
            id: MeasurementId(0),
            spec,
        };
        if EthicsStage::FaviconsFewSites.permits(&task) {
            prop_assert!(EthicsStage::FaviconsOnly.permits(&task));
        }
        if EthicsStage::FaviconsOnly.permits(&task) {
            prop_assert!(EthicsStage::Unrestricted.permits(&task));
        }
    }

    /// The scheduler never hands a client an incompatible task, under
    /// any strategy, engine, pool or timing.
    #[test]
    fn scheduler_respects_engine_constraints(
        specs in proptest::collection::vec(arb_spec(), 1..12),
        engine_idx in 0usize..4,
        strategy_idx in 0usize..3,
        times in proptest::collection::vec(0u64..100_000, 1..30),
        seed in any::<u64>(),
    ) {
        let tasks: Vec<MeasurementTask> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| MeasurementTask {
                id: MeasurementId(i as u64),
                spec,
            })
            .collect();
        let strategy = [
            SchedulingStrategy::Random,
            SchedulingStrategy::RoundRobin,
            SchedulingStrategy::CoordinatedBursts {
                window: SimDuration::from_secs(60),
            },
        ][strategy_idx];
        let engine = Engine::ALL[engine_idx];
        let mut server = CoordinationServer::new(tasks, strategy);
        let mut rng = SimRng::new(seed);
        let profile = ClientProfile { engine };
        for t in times {
            if let Some(task) = server.next_task(profile, SimTime::from_millis(t), &mut rng) {
                prop_assert!(task.spec.compatible_with(engine));
            }
        }
    }

    /// Assignment IDs are unique across any sequence of requests.
    #[test]
    fn scheduler_ids_unique(
        n in 1usize..100,
        seed in any::<u64>(),
    ) {
        let tasks = vec![MeasurementTask {
            id: MeasurementId(0),
            spec: TaskSpec::Image {
                url: "http://t.com/favicon.ico".into(),
            },
        }];
        let mut server = CoordinationServer::new(tasks, SchedulingStrategy::Random);
        let mut rng = SimRng::new(seed);
        let mut ids = std::collections::BTreeSet::new();
        for _ in 0..n {
            let t = server
                .next_task(ClientProfile { engine: Engine::Chrome }, SimTime::ZERO, &mut rng)
                .unwrap();
            prop_assert!(ids.insert(t.id), "duplicate id {:?}", t.id);
        }
    }

    /// The rendered JavaScript always embeds the measurement ID, the
    /// target URL, the init beacon, and both event handlers.
    #[test]
    fn task_js_always_complete(spec in arb_spec(), id in 0u64..u64::MAX) {
        let task = MeasurementTask {
            id: MeasurementId(id),
            spec,
        };
        let js = render_task_js(&task, "collector.example");
        prop_assert!(js.contains(&task.id.to_string()));
        prop_assert!(js.contains(task.spec.target_url()));
        prop_assert!(js.contains("init"));
        prop_assert!(js.contains("failure"));
        prop_assert!(js.contains("success"));
    }
}
