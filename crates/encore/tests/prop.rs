//! Property tests for the Encore system crate.

use browser::Engine;
use encore::coordination::{ClientProfile, CoordinationServer, SchedulingStrategy};
use encore::delivery::render_task_js;
use encore::targets::EthicsStage;
use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec, IFRAME_CACHE_THRESHOLD};
use proptest::prelude::*;
use sim_core::{SimDuration, SimRng, SimTime};

fn arb_spec() -> impl Strategy<Value = TaskSpec> {
    let url = "http://[a-z]{1,10}\\.(com|org)/[a-z0-9/._-]{0,30}";
    prop_oneof![
        url.prop_map(|u| TaskSpec::Image { url: u }),
        url.prop_map(|u| TaskSpec::Stylesheet { url: u }),
        url.prop_map(|u| TaskSpec::Script { url: u }),
        (url, url).prop_map(|(p, i)| TaskSpec::Iframe {
            page_url: p,
            probe_image_url: i,
            threshold: IFRAME_CACHE_THRESHOLD,
        }),
    ]
}

proptest! {
    /// The Table 2 stages are strictly nested: anything the final stage
    /// permits, earlier stages permit too.
    #[test]
    fn ethics_stages_are_nested(spec in arb_spec()) {
        let task = MeasurementTask {
            id: MeasurementId(0),
            spec,
        };
        if EthicsStage::FaviconsFewSites.permits(&task) {
            prop_assert!(EthicsStage::FaviconsOnly.permits(&task));
        }
        if EthicsStage::FaviconsOnly.permits(&task) {
            prop_assert!(EthicsStage::Unrestricted.permits(&task));
        }
    }

    /// The scheduler never hands a client an incompatible task, under
    /// any strategy, engine, pool or timing.
    #[test]
    fn scheduler_respects_engine_constraints(
        specs in proptest::collection::vec(arb_spec(), 1..12),
        engine_idx in 0usize..4,
        strategy_idx in 0usize..3,
        times in proptest::collection::vec(0u64..100_000, 1..30),
        seed in any::<u64>(),
    ) {
        let tasks: Vec<MeasurementTask> = specs
            .into_iter()
            .enumerate()
            .map(|(i, spec)| MeasurementTask {
                id: MeasurementId(i as u64),
                spec,
            })
            .collect();
        let strategy = [
            SchedulingStrategy::Random,
            SchedulingStrategy::RoundRobin,
            SchedulingStrategy::CoordinatedBursts {
                window: SimDuration::from_secs(60),
            },
        ][strategy_idx];
        let engine = Engine::ALL[engine_idx];
        let mut server = CoordinationServer::new(tasks, strategy);
        let mut rng = SimRng::new(seed);
        let profile = ClientProfile { engine };
        for t in times {
            if let Some(task) = server.next_task(profile, SimTime::from_millis(t), &mut rng) {
                prop_assert!(task.spec.compatible_with(engine));
            }
        }
    }

    /// Assignment IDs are unique across any sequence of requests.
    #[test]
    fn scheduler_ids_unique(
        n in 1usize..100,
        seed in any::<u64>(),
    ) {
        let tasks = vec![MeasurementTask {
            id: MeasurementId(0),
            spec: TaskSpec::Image {
                url: "http://t.com/favicon.ico".into(),
            },
        }];
        let mut server = CoordinationServer::new(tasks, SchedulingStrategy::Random);
        let mut rng = SimRng::new(seed);
        let mut ids = std::collections::BTreeSet::new();
        for _ in 0..n {
            let t = server
                .next_task(ClientProfile { engine: Engine::Chrome }, SimTime::ZERO, &mut rng)
                .unwrap();
            prop_assert!(ids.insert(t.id), "duplicate id {:?}", t.id);
        }
    }

    /// The rendered JavaScript always embeds the measurement ID, the
    /// target URL, the init beacon, and both event handlers.
    #[test]
    fn task_js_always_complete(spec in arb_spec(), id in 0u64..u64::MAX) {
        let task = MeasurementTask {
            id: MeasurementId(id),
            spec,
        };
        let js = render_task_js(&task, "collector.example");
        prop_assert!(js.contains(&task.id.to_string()));
        prop_assert!(js.contains(task.spec.target_url()));
        prop_assert!(js.contains("init"));
        prop_assert!(js.contains("failure"));
        prop_assert!(js.contains("success"));
    }
}

/// Laws the streaming analytics structures must satisfy for the
/// bounded-memory pipeline to be sound: the sketch never under-counts
/// (serially or across shard merges) and stays inside the ε·N error
/// envelope, and the reservoir's bottom-k merge is a commutative
/// monoid that agrees with serial sampling under any stream split.
mod streaming_props {
    use super::*;
    use encore::collection::{StoredMeasurement, Submission, SubmissionPhase};
    use encore::streaming::{CountMinSketch, ReservoirSample};
    use encore::tasks::{TaskOutcome, TaskType};
    use std::collections::BTreeMap;
    use std::net::Ipv4Addr;

    /// An arbitrary workload of (namespace, key, count) additions drawn
    /// from a small key universe so streams genuinely revisit keys.
    fn arb_workload() -> impl Strategy<Value = Vec<(u8, u64, u64)>> {
        proptest::collection::vec((0u8..2, 0u64..24, 1u64..50), 1..40).prop_map(|v| {
            v.into_iter()
                .map(|(ns, key, count)| ([b'u', b'o'][ns as usize], key, count))
                .collect()
        })
    }

    fn exact_counts(workload: &[(u8, u64, u64)]) -> BTreeMap<(u8, u64), u64> {
        let mut exact = BTreeMap::new();
        for &(ns, key, count) in workload {
            *exact.entry((ns, key)).or_insert(0u64) += count;
        }
        exact
    }

    /// A structurally arbitrary record (the reservoir treats records as
    /// opaque payloads; only the canonical tie-break order ever looks
    /// inside).
    fn meas(id: u64) -> StoredMeasurement {
        StoredMeasurement {
            submission: Submission {
                measurement_id: MeasurementId(id),
                phase: SubmissionPhase::Result,
                outcome: Some(TaskOutcome::Success),
                elapsed_ms: id % 900,
                task_type: TaskType::Image,
                target_url: format!("http://d{}.example/favicon.ico", id % 7),
                user_agent: "Firefox".into(),
                congested: false,
            },
            client_ip: Ipv4Addr::new(10, (id >> 16) as u8, (id >> 8) as u8, id as u8),
            referer: None,
            received_at: SimTime::from_millis(id),
        }
    }

    /// Distinct priorities for `n` offers — unique by construction so
    /// the split/serial comparison cannot hinge on tie-break order.
    fn priorities(seed: u64, n: usize) -> Vec<u64> {
        let mut rng = SimRng::new(seed);
        (0..n as u64)
            .map(|i| (rng.range_u64(0, 1 << 40) << 12) | i)
            .collect()
    }

    proptest! {
        /// Count-min never under-counts, and over-counts by at most
        /// ε·N with ε = e/width (the classic bound; conservative
        /// update only tightens it).
        #[test]
        fn sketch_never_undercounts_and_respects_epsilon_n(
            workload in arb_workload(),
            seed in any::<u64>(),
        ) {
            let mut sketch = CountMinSketch::new(4, 1024, seed);
            for &(ns, key, count) in &workload {
                sketch.add_ns(ns, &key.to_le_bytes(), count);
            }
            let exact = exact_counts(&workload);
            let n: u64 = exact.values().sum();
            prop_assert_eq!(sketch.items(), n);
            let slack = (std::f64::consts::E / f64::from(sketch.width()) * n as f64).ceil() as u64;
            for (&(ns, key), &true_count) in &exact {
                let est = sketch.estimate_ns(ns, &key.to_le_bytes());
                prop_assert!(est >= true_count, "undercount: {est} < {true_count}");
                prop_assert!(
                    est <= true_count + slack,
                    "over ε·N: {est} > {true_count} + {slack}"
                );
            }
        }

        /// Splitting a stream across shards and merging the per-shard
        /// sketches keeps the no-undercount guarantee and the exact
        /// item total, and the element-wise merge is associative and
        /// commutative with the empty sketch as identity.
        #[test]
        fn sketch_merge_is_sound_and_monoidal(
            workload in arb_workload(),
            mask in any::<u64>(),
            seed in any::<u64>(),
        ) {
            let dims = |w: &[(u8, u64, u64)]| {
                let mut s = CountMinSketch::new(4, 1024, seed);
                for &(ns, key, count) in w {
                    s.add_ns(ns, &key.to_le_bytes(), count);
                }
                s
            };
            let (a, b): (Vec<_>, Vec<_>) = workload
                .iter()
                .enumerate()
                .partition(|(i, _)| mask >> (i % 64) & 1 == 0);
            let strip = |v: Vec<(usize, &(u8, u64, u64))>| {
                v.into_iter().map(|(_, e)| *e).collect::<Vec<_>>()
            };
            let (sa, sb) = (dims(&strip(a)), dims(&strip(b)));
            let mut merged = sa.clone();
            merged.merge(&sb);
            let exact = exact_counts(&workload);
            prop_assert_eq!(merged.items(), exact.values().sum::<u64>());
            for (&(ns, key), &true_count) in &exact {
                prop_assert!(merged.estimate_ns(ns, &key.to_le_bytes()) >= true_count);
            }
            // Monoid laws on the counter arrays themselves.
            let mut ab = sa.clone();
            ab.merge(&sb);
            let mut ba = sb.clone();
            ba.merge(&sa);
            prop_assert_eq!(&ab, &ba, "commutativity");
            let sc = dims(&workload);
            let mut left = ab.clone();
            left.merge(&sc);
            let mut bc = sb.clone();
            bc.merge(&sc);
            let mut right = sa.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right, "associativity");
            let mut with_id = sa.clone();
            with_id.merge(&CountMinSketch::new(4, 1024, seed));
            prop_assert_eq!(&with_id, &sa, "identity");
        }

        /// Bottom-k reservoir merge is associative and commutative with
        /// the empty sample as identity, and merging per-shard samples
        /// of any stream split reproduces the serial sample exactly.
        #[test]
        fn reservoir_merge_is_monoidal_and_split_invariant(
            n in 1usize..60,
            capacity in 1u64..12,
            mask in any::<u64>(),
            seed in any::<u64>(),
        ) {
            let prio = priorities(seed, n);
            let mut serial = ReservoirSample::new(capacity);
            let mut parts = [ReservoirSample::new(capacity), ReservoirSample::new(capacity)];
            for i in 0..n {
                serial.offer(prio[i], meas(i as u64));
                parts[(mask >> (i % 64) & 1) as usize].offer(prio[i], meas(i as u64));
            }
            let [pa, pb] = parts;
            let mut split = pa.clone();
            split.merge(pb.clone());
            prop_assert_eq!(&split, &serial, "split == serial");
            prop_assert_eq!(serial.seen, n as u64);
            prop_assert!(serial.len() as u64 <= capacity);
            // Monoid laws.
            let mut ab = pa.clone();
            ab.merge(pb.clone());
            let mut ba = pb.clone();
            ba.merge(pa.clone());
            prop_assert_eq!(&ab, &ba, "commutativity");
            let mut left = ab.clone();
            left.merge(serial.clone());
            let mut bc = pb.clone();
            bc.merge(serial.clone());
            let mut right = pa.clone();
            right.merge(bc);
            prop_assert_eq!(&left, &right, "associativity");
            let mut with_id = pa.clone();
            with_id.merge(ReservoirSample::new(capacity));
            prop_assert_eq!(&with_id, &pa, "identity");
        }
    }
}
