//! Sharded-engine throughput: serial batch driver vs the multi-core
//! shard engine at 2 and 8 shards.
//!
//! Each iteration runs a full censored-world deployment (three social
//! targets, the 2014 national censors, world audience) end to end, so
//! the numbers track the real production path: visit arrival → session
//! fetches → censor pipeline → collection. On multi-core hardware the
//! 8-shard case should approach the hardware's parallelism; on a single
//! core it documents the (small) thread orchestration overhead.

use bench::shard_fixture::{batch as fixture_batch, build_censored as build};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsim::geo::World;
use population::shard::ShardContext;
use population::{run_sharded_batch, run_visit_batch, Audience, BatchConfig, ShardedBatchConfig};
use sim_core::SimRng;

const VISITS: u64 = 20_000;

fn batch() -> BatchConfig {
    fixture_batch(VISITS)
}

fn bench_scale(c: &mut Criterion) {
    let audience = Audience::world(&World::builtin());
    let mut group = c.benchmark_group("scale");
    group.sample_size(10);

    group.bench_function("serial_20k_visits", |b| {
        b.iter(|| {
            let (mut net, mut sys) = build(ShardContext {
                index: 0,
                shards: 1,
            });
            let mut rng = SimRng::new(0x5CA1E);
            let report = run_visit_batch(&mut net, &mut sys, &audience, &batch(), &mut rng);
            assert_eq!(report.visits, VISITS);
            black_box(report)
        })
    });

    for (shards, id) in [
        (2usize, "sharded_2x_20k_visits"),
        (8, "sharded_8x_20k_visits"),
    ] {
        group.bench_function(id, |b| {
            b.iter(|| {
                let config = ShardedBatchConfig {
                    shards,
                    batch: batch(),
                };
                let run = run_sharded_batch(&build, &audience, &config, 0x5CA1E);
                assert_eq!(run.report.visits, VISITS);
                black_box(run.report)
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_scale);
criterion_main!(benches);
