//! Ablation performance benchmarks: how design choices change the cost
//! of the pipeline. (The *quality* ablations — detection accuracy as
//! parameters sweep — live in `src/bin/ablations.rs`, since they report
//! accuracy rather than time.)

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use encore::pipeline::{GenerationConfig, TaskGenerator};
use netsim::http::ContentType;
use websim::har::{Har, HarEntry};

fn corpus_har(images: usize) -> Har {
    Har {
        page_url: "http://t.org/p.html".into(),
        entries: (0..images)
            .map(|i| HarEntry {
                url: format!("http://t.org/img{i}.png"),
                status: 200,
                content_type: ContentType::Image,
                body_bytes: (200 + i * 173 % 8_000) as u64,
                cacheable: i % 3 != 0,
                nosniff: false,
                time: sim_core::SimDuration::from_millis(40),
                ok: true,
            })
            .collect(),
        page_ok: true,
    }
}

/// Task-generation cost as the image-size cap sweeps (the Figure 4
/// 1 KB-vs-5 KB trade-off): larger caps admit more resources and emit
/// more tasks.
fn bench_image_cap_sweep(c: &mut Criterion) {
    let har = corpus_har(200);
    let mut group = c.benchmark_group("taskgen_image_cap");
    for cap in [500u64, 1_000, 5_000, 50_000] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let mut generator = TaskGenerator::new(GenerationConfig {
                    max_image_bytes: cap,
                    ..GenerationConfig::default()
                });
                black_box(generator.generate(&har, |_| true))
            })
        });
    }
    group.finish();
}

/// Inference cost as the per-cell minimum sample size sweeps.
fn bench_detector_min_measurements(c: &mut Criterion) {
    use encore::collection::{StoredMeasurement, Submission, SubmissionPhase};
    use encore::tasks::{MeasurementId, TaskOutcome, TaskType};
    use encore::{DetectorConfig, FilteringDetector, GeoDb};
    use netsim::geo::country;
    use netsim::ip::IpAllocator;
    use sim_core::SimTime;

    let mut alloc = IpAllocator::new();
    let records: Vec<StoredMeasurement> = (0..20_000)
        .map(|i| {
            let cc = ["US", "CN", "PK", "DE"][i % 4];
            StoredMeasurement {
                submission: Submission {
                    measurement_id: MeasurementId(i as u64),
                    phase: SubmissionPhase::Result,
                    outcome: Some(TaskOutcome::Success),
                    elapsed_ms: 100,
                    task_type: TaskType::Image,
                    target_url: format!("http://s{}.example/favicon.ico", i % 50),
                    user_agent: "Chrome".into(),
                    congested: false,
                },
                client_ip: alloc.allocate(country(cc)),
                referer: None,
                received_at: SimTime::ZERO,
            }
        })
        .collect();
    let geo = GeoDb::from_allocator(&alloc);

    let mut group = c.benchmark_group("detector_min_measurements");
    for min in [1u64, 5, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(min), &min, |b, &min| {
            let detector = FilteringDetector::new(DetectorConfig {
                min_measurements: min,
                ..DetectorConfig::default()
            });
            b.iter(|| black_box(detector.detect(&records, &geo)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_image_cap_sweep,
    bench_detector_min_measurements
);
criterion_main!(benches);
