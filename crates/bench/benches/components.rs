//! Component performance benchmarks (Criterion).
//!
//! Not a paper table — these keep the simulator itself honest: event
//! queue throughput, the binomial test, browser loads, HAR capture, task
//! generation, end-to-end visits, and inference over large record sets.

use browser::{BrowserClient, Engine};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use encore::collection::{StoredMeasurement, Submission, SubmissionPhase};
use encore::pipeline::{GenerationConfig, TaskGenerator};
use encore::tasks::{MeasurementId, TaskOutcome, TaskType};
use encore::{DetectorConfig, FilteringDetector, GeoDb};
use netsim::geo::{country, IspClass, World};
use netsim::http::{ContentType, HttpRequest, HttpResponse};
use netsim::ip::IpAllocator;
use netsim::network::{ConstHandler, Network};
use sim_core::{binomial_sf, EventQueue, SimRng, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_micros((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum = sum.wrapping_add(e);
            }
            black_box(sum)
        })
    });
}

fn bench_binomial(c: &mut Criterion) {
    c.bench_function("binomial_cdf_n1000", |b| {
        b.iter(|| black_box(binomial_sf(1_000, 0.7, 650)))
    });
}

fn bench_network_fetch(c: &mut Criterion) {
    let mut net = Network::new(World::builtin());
    net.add_server(
        "bench.example",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
    );
    let client = net.add_client(country("DE"), IspClass::Residential);
    let mut rng = SimRng::new(1);
    let req = HttpRequest::get("http://bench.example/favicon.ico");
    c.bench_function("network_fetch", |b| {
        b.iter(|| black_box(net.fetch(&client, &req, SimTime::ZERO, &mut rng)))
    });
}

fn bench_browser_image_load(c: &mut Criterion) {
    let mut net = Network::new(World::builtin());
    net.add_server(
        "bench.example",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
    );
    let root = SimRng::new(2);
    let mut client = BrowserClient::new(
        &mut net,
        country("DE"),
        IspClass::Residential,
        Engine::Chrome,
        &root,
    );
    let mut i = 0u64;
    c.bench_function("browser_image_load_cold", |b| {
        b.iter(|| {
            i += 1;
            // Unique URL each iteration: always a cold load.
            let url = format!("http://bench.example/i{i}.png");
            black_box(client.load_image(&mut net, &url, SimTime::ZERO))
        })
    });
}

fn bench_task_generation(c: &mut Criterion) {
    use websim::har::{Har, HarEntry};
    let har = Har {
        page_url: "http://t.org/p.html".into(),
        entries: (0..60)
            .map(|i| HarEntry {
                url: format!("http://t.org/img{i}.png"),
                status: 200,
                content_type: ContentType::Image,
                body_bytes: 500 + i * 37,
                cacheable: i % 3 != 0,
                nosniff: false,
                time: sim_core::SimDuration::from_millis(40),
                ok: true,
            })
            .collect(),
        page_ok: true,
    };
    c.bench_function("task_generation_60_entry_har", |b| {
        b.iter(|| {
            let mut generator = TaskGenerator::new(GenerationConfig {
                max_image_bytes: 5_000,
                ..GenerationConfig::default()
            });
            black_box(generator.generate(&har, |_| true))
        })
    });
}

fn make_records(n: usize) -> (Vec<StoredMeasurement>, GeoDb) {
    let mut alloc = IpAllocator::new();
    let countries = ["US", "CN", "IN", "PK", "DE", "BR", "IR", "GB"];
    let mut records = Vec::with_capacity(n);
    for i in 0..n {
        let cc = countries[i % countries.len()];
        let ip = alloc.allocate(country(cc));
        records.push(StoredMeasurement {
            submission: Submission {
                measurement_id: MeasurementId(i as u64),
                phase: SubmissionPhase::Result,
                outcome: Some(if cc == "PK" && i % 2 == 0 {
                    TaskOutcome::Failure
                } else {
                    TaskOutcome::Success
                }),
                elapsed_ms: 120,
                task_type: TaskType::Image,
                target_url: format!("http://site{}.example/favicon.ico", i % 20),
                user_agent: "Chrome".into(),
                congested: false,
            },
            client_ip: ip,
            referer: None,
            received_at: SimTime::ZERO,
        });
    }
    let geo = GeoDb::from_allocator(&alloc);
    (records, geo)
}

fn bench_inference(c: &mut Criterion) {
    let (records, geo) = make_records(100_000);
    let detector = FilteringDetector::new(DetectorConfig::default());
    c.bench_function("inference_100k_records", |b| {
        b.iter(|| black_box(detector.detect(&records, &geo)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_binomial,
    bench_network_fetch,
    bench_browser_image_load,
    bench_task_generation,
    bench_inference,
);
criterion_main!(benches);
