//! Fetch-path throughput: cold-session vs warm-session, plus the batched
//! multi-client driver at production scale.
//!
//! * `fetch/cold_session` — a fresh `FetchSession` per request (the legacy
//!   `Network::fetch` behaviour): full DNS + TCP + middlebox matching
//!   every time.
//! * `fetch/warm_session` — one persistent session: compiled censor
//!   pipeline, DNS host cache, keep-alive connection. The acceptance
//!   target is ≥2× over cold on repeated fetches to one origin.
//! * `batched_driver/100k_visits` — `population::run_visit_batch` pushing
//!   100 000 simulated visits (each a full Figure-2 flow) through one
//!   Encore deployment.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use encore::coordination::SchedulingStrategy;
use encore::delivery::OriginSite;
use encore::system::EncoreSystem;
use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
use netsim::geo::{country, IspClass, World};
use netsim::http::{ContentType, HttpRequest, HttpResponse};
use netsim::network::{ConstHandler, Network};
use netsim::session::FetchSession;
use population::{run_visit_batch, Audience, BatchConfig};
use sim_core::{SimRng, SimTime};

fn fetch_network() -> Network {
    let mut net = Network::new(World::builtin());
    net.add_server(
        "bench.example",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
    );
    // A realistic censor population so middlebox matching has real cost.
    censor::registry::install_world_censors(&mut net);
    net
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let req = HttpRequest::get("http://bench.example/favicon.ico");
    let mut group = c.benchmark_group("fetch");

    {
        let mut net = fetch_network();
        let client = net.add_client(country("DE"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        group.bench_function("cold_session", |b| {
            b.iter(|| {
                // A fresh session per request — everything from scratch.
                let mut session = FetchSession::new(client.clone());
                black_box(session.fetch(&mut net, &req, SimTime::ZERO, &mut rng))
            })
        });
    }

    {
        let mut net = fetch_network();
        let client = net.add_client(country("DE"), IspClass::Residential);
        let mut session = FetchSession::new(client);
        let mut rng = SimRng::new(1);
        // Times advance within the keep-alive window so reuse stays live.
        let mut tick = 0u64;
        group.bench_function("warm_session", |b| {
            b.iter(|| {
                tick += 1;
                let now = SimTime::from_millis(tick % 50_000);
                black_box(session.fetch(&mut net, &req, now, &mut rng))
            })
        });
    }

    group.finish();
}

fn bench_batched_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_driver");
    group.bench_function("100k_visits", |b| {
        b.iter(|| {
            let mut net = Network::new(World::builtin());
            net.add_server(
                "target.example",
                country("US"),
                Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 400))),
            );
            let tasks = vec![MeasurementTask {
                id: MeasurementId(0),
                spec: TaskSpec::Image {
                    url: "http://target.example/favicon.ico".into(),
                },
            }];
            let mut sys = EncoreSystem::deploy(
                &mut net,
                tasks,
                SchedulingStrategy::RoundRobin,
                vec![OriginSite::academic("prof.example")],
                country("US"),
            );
            let mut rng = SimRng::new(0xBEEF);
            let config = BatchConfig {
                visits: 100_000,
                ..BatchConfig::default()
            };
            let report =
                run_visit_batch(&mut net, &mut sys, &Audience::academic(), &config, &mut rng);
            assert_eq!(report.visits, 100_000);
            black_box(report)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cold_vs_warm, bench_batched_driver);
criterion_main!(benches);
