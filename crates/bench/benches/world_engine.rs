//! World-engine overhead: the event-driven core vs what it costs to run
//! censorship dynamics on a live world.
//!
//! Three cases over the shared censored §7.2 fixture:
//!
//! * `engine_batch_10k` — the batch driver, now a thin wrapper over the
//!   event queue; tracks the engine's per-visit dispatch overhead
//!   against PR 1/2 baselines of the loop-based driver.
//! * `engine_batch_10k_with_housekeeping` — same run plus maintenance
//!   ticks and rollups every simulated minute: the cost of continuous
//!   housekeeping events interleaving with traffic.
//! * `engine_deployment_dynamic_censorship` — a deployment-mode world
//!   where a national block installs and lifts mid-run through the
//!   policy timeline, forcing warm pooled sessions to recompile their
//!   middlebox pipelines twice.

use bench::shard_fixture::{batch as fixture_batch, build_censored};
use censor::policy::{CensorPolicy, Mechanism};
use censor::timeline::{CensorSpec, PolicyChange, PolicyTimeline};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netsim::geo::{country, World};
use population::shard::ShardContext;
use population::{Audience, DeploymentConfig, WorldEngine};
use sim_core::{SimDuration, SimRng, SimTime};

const VISITS: u64 = 10_000;

fn build() -> (netsim::network::Network, encore::system::EncoreSystem) {
    build_censored(ShardContext {
        index: 0,
        shards: 1,
    })
}

fn bench_world_engine(c: &mut Criterion) {
    let audience = Audience::world(&World::builtin());
    let mut group = c.benchmark_group("world_engine");
    group.sample_size(10);

    group.bench_function("engine_batch_10k", |b| {
        b.iter(|| {
            let (mut net, mut sys) = build();
            let mut rng = SimRng::new(0xE11E);
            let engine = WorldEngine::batch(
                &mut net,
                &mut sys,
                &audience,
                &fixture_batch(VISITS),
                &mut rng,
            );
            let out = engine.run();
            assert_eq!(out.report.visits, VISITS);
            black_box(out.report)
        })
    });

    group.bench_function("engine_batch_10k_with_housekeeping", |b| {
        b.iter(|| {
            let (mut net, mut sys) = build();
            let mut rng = SimRng::new(0xE11E);
            let mut engine = WorldEngine::batch(
                &mut net,
                &mut sys,
                &audience,
                &fixture_batch(VISITS),
                &mut rng,
            );
            engine.schedule_maintenance(SimDuration::from_secs(60));
            engine.schedule_rollups(SimDuration::from_secs(60));
            let out = engine.run();
            assert_eq!(out.report.visits, VISITS);
            black_box((out.report, out.rollups.len()))
        })
    });

    group.bench_function("engine_deployment_dynamic_censorship", |b| {
        let config = DeploymentConfig {
            duration: SimDuration::from_days(2),
            visits_per_day_per_weight: 400.0,
            ..DeploymentConfig::default()
        };
        let timeline = PolicyTimeline::new()
            .at(
                SimTime::from_secs(12 * 3_600),
                PolicyChange::Install(CensorSpec::new(
                    country("TR"),
                    CensorPolicy::named("bench-block")
                        .block_domain("twitter.com", Mechanism::DnsNxDomain),
                )),
            )
            .at(
                SimTime::from_secs(36 * 3_600),
                PolicyChange::Lift {
                    name: "bench-block".into(),
                },
            );
        b.iter(|| {
            let (mut net, mut sys) = build();
            let mut rng = SimRng::new(0xD11A);
            let mut engine =
                WorldEngine::deployment(&mut net, &mut sys, &audience, &config, &mut rng);
            engine.schedule_timeline(timeline.clone());
            let out = engine.run();
            assert_eq!(out.policy_changes_applied, 2);
            black_box(out.report)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_world_engine);
criterion_main!(benches);
