//! Serializable world specs for the experiment binaries — the
//! process-transport counterpart of the fixture modules.
//!
//! A [`population::transport::WorldSpec`] must cross a process boundary
//! as bytes, so it cannot carry the fixture closures directly. Instead
//! [`BenchWorldSpec`] names a fixture plus its parameters; the worker
//! process (`src/bin/shard_worker.rs`) rebuilds exactly the world the
//! coordinator described by calling the same deterministic fixture
//! functions. Both transport backends therefore execute identical
//! worlds — the byte-equivalence the transport suite and simcheck's
//! transport oracle prove.

use crate::{adaptive_fixture, congested_fixture, corpus_fixture, world_fixture};
use encore::system::EncoreSystem;
use netsim::geo::World;
use netsim::network::Network;
use population::transport::WorldSpec;
use population::{Audience, ShardContext, WorldRecipe};
use serde::{Deserialize, Serialize};

/// Which fixture world a distributed run executes, with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BenchWorldSpec {
    /// The §1-motivated Turkey onset/lift timeline
    /// ([`world_fixture`]).
    Timeline {
        /// Simulated days.
        days: u64,
        /// Visits per day per audience weight.
        rate: f64,
        /// Run with bounded-memory streaming analytics (sketch +
        /// reservoir + windowed fold-and-evict) instead of the exact
        /// record log. Absent on the wire for exact runs, so
        /// pre-streaming coordinators and workers interoperate.
        #[serde(default, skip_serializing_if = "std::ops::Not::not")]
        streaming: bool,
    },
    /// The escalating adaptive-censor ladder ([`adaptive_fixture`]).
    Adaptive {
        /// Simulated days.
        days: u64,
        /// Visits per day per audience weight.
        rate: f64,
    },
    /// The routed brownout-plus-block world ([`congested_fixture`]).
    Congested {
        /// Simulated days.
        days: u64,
        /// Visits per day per audience weight.
        rate: f64,
    },
    /// The generative-corpus multi-country world report
    /// ([`corpus_fixture`]).
    Corpus {
        /// Simulated days.
        days: u64,
        /// Visits per day per audience weight.
        rate: f64,
    },
}

impl WorldSpec for BenchWorldSpec {
    fn audience(&self) -> Audience {
        match self {
            BenchWorldSpec::Corpus { .. } => corpus_fixture::audience(),
            _ => Audience::world(&World::builtin()),
        }
    }

    fn recipe(&self) -> WorldRecipe {
        match *self {
            BenchWorldSpec::Timeline {
                days,
                rate,
                streaming,
            } => {
                let recipe = world_fixture::recipe(days, rate);
                if streaming {
                    // Window = the fixture's daily rollup cadence, so
                    // windows close exactly as rollups fire.
                    recipe.with_streaming(population::StreamingSpec::with_window(
                        sim_core::SimDuration::from_days(1),
                    ))
                } else {
                    recipe
                }
            }
            BenchWorldSpec::Adaptive { days, rate } => adaptive_fixture::recipe(days, rate),
            BenchWorldSpec::Congested { days, rate } => congested_fixture::recipe(days, rate),
            BenchWorldSpec::Corpus { days, rate } => corpus_fixture::recipe(days, rate),
        }
    }

    fn build(&self, ctx: ShardContext) -> (Network, EncoreSystem) {
        match self {
            BenchWorldSpec::Timeline { .. } => world_fixture::build(ctx),
            BenchWorldSpec::Adaptive { .. } => adaptive_fixture::build(ctx),
            BenchWorldSpec::Congested { .. } => congested_fixture::build(ctx),
            BenchWorldSpec::Corpus { .. } => corpus_fixture::build(ctx),
        }
    }
}

/// The worker-binary name [`BenchWorldSpec`] runs are dispatched to.
pub const SHARD_WORKER: &str = "shard_worker";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_round_trip_through_json() {
        for spec in [
            BenchWorldSpec::Timeline {
                days: 30,
                rate: 150.0,
                streaming: false,
            },
            BenchWorldSpec::Timeline {
                days: 30,
                rate: 150.0,
                streaming: true,
            },
            BenchWorldSpec::Adaptive {
                days: 30,
                rate: 160.5,
            },
            BenchWorldSpec::Congested {
                days: 18,
                rate: 150.0,
            },
            BenchWorldSpec::Corpus {
                days: 90,
                rate: 400.0,
            },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: BenchWorldSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "spec drifted through the wire: {json}");
        }
    }

    #[test]
    fn exact_timeline_spec_wire_bytes_are_pre_streaming() {
        // Exact-mode specs must serialize without the streaming field
        // at all, so a coordinator built at this revision can drive a
        // pre-streaming worker (and vice versa via serde(default)).
        let spec = BenchWorldSpec::Timeline {
            days: 30,
            rate: 150.0,
            streaming: false,
        };
        let json = serde_json::to_string(&spec).unwrap();
        assert!(
            !json.contains("streaming"),
            "exact spec leaked the flag: {json}"
        );
    }

    #[test]
    fn spec_recipe_matches_fixture_recipe() {
        // The spec is only honest if it rebuilds exactly the fixture
        // world the closures build. Recipes have no PartialEq (they
        // carry closures), so compare their debug structure.
        let spec = BenchWorldSpec::Timeline {
            days: 12,
            rate: 150.0,
            streaming: false,
        };
        assert_eq!(
            format!("{:?}", spec.recipe()),
            format!("{:?}", world_fixture::recipe(12, 150.0))
        );
    }
}
