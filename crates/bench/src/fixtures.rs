//! Shared Network/EncoreSystem scenario builders for the experiment
//! binaries.
//!
//! Before this module every `src/bin/*.rs` hand-rolled the same setup:
//! a constant-image server per measurement target, a favicon task pool
//! over those targets, and an `EncoreSystem::deploy` with US-hosted
//! infrastructure. Copy-pasted fixtures drift — one binary's world stops
//! being another's — so the pieces live here once and the binaries
//! compose them.

use encore::coordination::SchedulingStrategy;
use encore::delivery::OriginSite;
use encore::system::EncoreSystem;
use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
use netsim::geo::{country, CountryCode};
use netsim::http::{ContentType, HttpResponse};
use netsim::network::{ConstHandler, Network};
use population::transport::TransportKind;
use serde::Serialize;
use std::path::PathBuf;

/// Shared CLI/env argument handling for every `src/bin/*.rs` experiment
/// binary — one parser instead of thirteen hand-rolled `std::env::var`
/// snippets.
///
/// Each knob reads, in priority order: a CLI flag (`--seed N`,
/// `--visits N`, `--shards N`, `--days N`, `--topology N`, `--out DIR`,
/// `--min-speedup X`; `--flag=value` also accepted), then the
/// corresponding `ENCORE_*` environment variable (`ENCORE_SEED`,
/// `ENCORE_VISITS`, `ENCORE_SHARDS`, `ENCORE_DAYS`, `ENCORE_TOPOLOGY`,
/// `ENCORE_OUT`, `ENCORE_MIN_SPEEDUP`), then the binary's default.
/// Unknown flags are ignored so harness wrappers can pass extra
/// arguments through; supplied-but-unparseable values warn on stderr
/// before falling back. Seeds accept both decimal and the `0x…` hex
/// form the binaries print. `--topology`, `--transport
/// {threads,process}` (`ENCORE_TRANSPORT`), `--streaming[=BOOL]`
/// (`ENCORE_STREAMING`), and `--window DAYS` (`ENCORE_WINDOW`) are
/// stricter: a malformed value is a hard error (exit 2), because
/// silently dropping it would run the benchmark on a flat un-routed
/// world, the wrong shard backend, or the wrong analytics pipeline —
/// and report numbers for an experiment nobody asked for.
///
/// `--streaming` is a presence flag: bare it means `true`, and an
/// explicit value uses the `--streaming=false` spelling (a
/// space-separated value would be ambiguous with the next flag).
#[derive(Debug, Clone)]
pub struct RunArgs {
    /// Root experiment seed.
    pub seed: u64,
    visits: Option<u64>,
    shards: Option<usize>,
    days: Option<u64>,
    reps: Option<usize>,
    min_speedup: Option<f64>,
    topology: Option<u64>,
    transport: Option<TransportKind>,
    streaming: Option<bool>,
    window_days: Option<u64>,
    out_dir: PathBuf,
}

impl RunArgs {
    /// Parse from the process's actual CLI arguments and environment.
    /// Structurally invalid configurations (`--shards 0`, a negative
    /// `--days`) are rejected with a clear error and exit code 2 — a
    /// run that cannot mean anything must not silently run as something
    /// else.
    pub fn parse() -> RunArgs {
        match RunArgs::from_sources(std::env::args().skip(1), |key| std::env::var(key).ok()) {
            Ok(args) => args,
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    }

    fn from_sources(
        args: impl IntoIterator<Item = String>,
        env: impl Fn(&str) -> Option<String>,
    ) -> Result<RunArgs, String> {
        let mut values: std::collections::BTreeMap<&'static str, String> =
            std::collections::BTreeMap::new();
        let flags = [
            ("--seed", "seed"),
            ("--visits", "visits"),
            ("--shards", "shards"),
            ("--days", "days"),
            ("--reps", "reps"),
            ("--min-speedup", "min_speedup"),
            ("--topology", "topology"),
            ("--transport", "transport"),
            ("--window", "window"),
            ("--out", "out"),
        ];
        let mut it = args.into_iter().peekable();
        while let Some(arg) = it.next() {
            // --streaming is a presence flag: bare means true; an
            // explicit value must use the `=` spelling so it can never
            // swallow the next flag.
            if arg == "--streaming" {
                values.insert("streaming", "true".to_string());
                continue;
            }
            if let Some(v) = arg.strip_prefix("--streaming=") {
                values.insert("streaming", v.to_string());
                continue;
            }
            for (flag, key) in flags {
                if arg == flag {
                    // Never consume another flag as this flag's value —
                    // `--seed --shards 4` must not silently swallow
                    // `--shards`.
                    match it.peek() {
                        Some(v) if !v.starts_with("--") => {
                            values.insert(key, v.clone());
                            it.next();
                        }
                        _ => eprintln!("[{flag} given without a value, ignoring]"),
                    }
                } else if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
                    values.insert(key, v.to_string());
                }
            }
        }
        let envs = [
            ("ENCORE_SEED", "seed"),
            ("ENCORE_VISITS", "visits"),
            ("ENCORE_SHARDS", "shards"),
            ("ENCORE_DAYS", "days"),
            ("ENCORE_REPS", "reps"),
            ("ENCORE_MIN_SPEEDUP", "min_speedup"),
            ("ENCORE_TOPOLOGY", "topology"),
            ("ENCORE_TRANSPORT", "transport"),
            ("ENCORE_STREAMING", "streaming"),
            ("ENCORE_WINDOW", "window"),
            ("ENCORE_OUT", "out"),
        ];
        for (var, key) in envs {
            if !values.contains_key(key) {
                if let Some(v) = env(var) {
                    values.insert(key, v);
                }
            }
        }
        // A supplied-but-unparseable value is warned about, never
        // silently replaced by the default — a run that claims a seed
        // must actually use it or say it did not.
        fn parsed<T: std::str::FromStr>(
            values: &std::collections::BTreeMap<&'static str, String>,
            key: &'static str,
        ) -> Option<T> {
            let raw = values.get(key)?;
            match raw.parse() {
                Ok(v) => Some(v),
                Err(_) => {
                    eprintln!("[ignoring unparseable {key} value {raw:?}, using the default]");
                    None
                }
            }
        }
        // Binaries print seeds in hex, so `--seed 0xe7c02015` round-trips.
        let seed = values.get("seed").and_then(|raw| {
            let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => raw.parse(),
            };
            match parsed {
                Ok(v) => Some(v),
                Err(_) => {
                    eprintln!("[ignoring unparseable seed value {raw:?}, using the default]");
                    None
                }
            }
        });
        // Structural validation: these values cannot describe a runnable
        // experiment, so they are hard errors rather than warn-and-default
        // fallbacks. Anything with a leading '-' is an attempted negative,
        // not parse noise — unsigned knobs have no legitimate '-' form.
        let negative = |key: &'static str| {
            values
                .get(key)
                .is_some_and(|raw| raw.trim_start().starts_with('-'))
        };
        // The negative check runs *before* parsed(), which would first
        // print a contradictory "ignoring, using the default" warning
        // for a value the run is about to hard-reject.
        if negative("shards") {
            return Err(format!(
                "--shards/ENCORE_SHARDS must be at least 1 (got {}): a run needs \
                 at least one shard to execute on",
                values["shards"]
            ));
        }
        let shards: Option<usize> = parsed(&values, "shards");
        if shards == Some(0) {
            return Err(
                "--shards/ENCORE_SHARDS must be at least 1 (got 0): a run needs \
                 at least one shard to execute on"
                    .to_string(),
            );
        }
        if negative("days") {
            return Err(format!(
                "--days/ENCORE_DAYS must be non-negative (got {}): a world \
                 cannot run for a negative span",
                values["days"]
            ));
        }
        if negative("reps") {
            return Err(format!(
                "--reps/ENCORE_REPS must be at least 1 (got {}): a benchmark \
                 needs at least one repetition to time",
                values["reps"]
            ));
        }
        let reps: Option<usize> = parsed(&values, "reps");
        if reps == Some(0) {
            return Err(
                "--reps/ENCORE_REPS must be at least 1 (got 0): a benchmark \
                 needs at least one repetition to time"
                    .to_string(),
            );
        }
        // A topology seed selects an entire routed world. Unlike the
        // other knobs, a malformed value must not warn-and-default: the
        // run would silently measure a flat (un-routed) network and
        // report numbers for a different experiment. Hex accepted, same
        // as --seed.
        let topology = match values.get("topology") {
            None => None,
            Some(raw) => {
                let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16),
                    None => raw.parse(),
                };
                match parsed {
                    Ok(v) => Some(v),
                    Err(_) => {
                        return Err(format!(
                            "--topology/ENCORE_TOPOLOGY must be a topology seed \
                             (decimal or 0x-hex u64, got {raw:?}): a malformed seed \
                             cannot select a routed world"
                        ));
                    }
                }
            }
        };
        // Like --topology, a malformed transport must not warn-and-
        // default: the whole point of the flag is to pin *which* shard
        // backend produced the numbers. Running threads under a
        // misspelled `--transport proces` would gate the wrong backend.
        let transport = match values.get("transport") {
            None => None,
            Some(raw) => match raw.parse::<TransportKind>() {
                Ok(v) => Some(v),
                Err(_) => {
                    return Err(format!(
                        "--transport/ENCORE_TRANSPORT must be \"threads\" or \"process\" \
                         (got {raw:?}): a malformed transport cannot select a shard backend"
                    ));
                }
            },
        };
        // Streaming selects an entire analytics pipeline; like the
        // transport, a malformed value must not silently run the other
        // pipeline and report its numbers.
        let streaming = match values.get("streaming") {
            None => None,
            Some(raw) => match raw.as_str() {
                "true" | "1" | "on" | "yes" => Some(true),
                "false" | "0" | "off" | "no" => Some(false),
                _ => {
                    return Err(format!(
                        "--streaming/ENCORE_STREAMING must be a boolean (got {raw:?}): \
                         it selects between the exact and constant-memory analytics \
                         pipelines"
                    ));
                }
            },
        };
        // The analytics window sizes every streaming structure, so a
        // malformed or zero span is a hard error, not a warn-and-default.
        let window_days = match values.get("window") {
            None => None,
            Some(raw) => match raw.parse::<u64>() {
                Ok(0) => {
                    return Err("--window/ENCORE_WINDOW must be at least 1 day (got 0): a \
                         zero-width analytics window can never close"
                        .to_string());
                }
                Ok(v) => Some(v),
                Err(_) => {
                    return Err(format!(
                        "--window/ENCORE_WINDOW must be a whole number of days \
                         (got {raw:?}): the analytics window sizes every streaming \
                         structure"
                    ));
                }
            },
        };
        Ok(RunArgs {
            seed: seed.unwrap_or(crate::DEFAULT_SEED),
            visits: parsed(&values, "visits"),
            shards,
            days: parsed(&values, "days"),
            reps,
            min_speedup: parsed(&values, "min_speedup"),
            topology,
            transport,
            streaming,
            window_days,
            out_dir: values
                .get("out")
                .map_or_else(|| PathBuf::from("results"), PathBuf::from),
        })
    }

    /// Visit count, with a per-binary default.
    pub fn visits(&self, default: u64) -> u64 {
        self.visits.unwrap_or(default)
    }

    /// Timing repetitions per configuration, with a per-binary default.
    /// Benchmarks report the *minimum* wall time over the repetitions:
    /// timing noise on a shared machine is one-sided (steal and
    /// frequency dips only ever add time), so the minimum is the
    /// estimator closest to the true cost.
    pub fn reps(&self, default: usize) -> usize {
        self.reps.unwrap_or(default).max(1)
    }

    /// Shard count, with a per-binary default (clamped to at least 1).
    pub fn shards(&self, default: usize) -> usize {
        self.shards.unwrap_or(default).max(1)
    }

    /// Simulated days, with a per-binary default.
    pub fn days(&self, default: u64) -> u64 {
        self.days.unwrap_or(default)
    }

    /// Throughput-gate override, with a machine-derived default.
    pub fn min_speedup(&self, default: f64) -> f64 {
        self.min_speedup.unwrap_or(default)
    }

    /// AS-topology seed (`--topology`/`ENCORE_TOPOLOGY`), with a
    /// per-binary default. `None` default = flat un-routed network.
    pub fn topology(&self, default: Option<u64>) -> Option<u64> {
        self.topology.or(default)
    }

    /// Shard backend (`--transport`/`ENCORE_TRANSPORT`), with a
    /// per-binary default (the world bins default to
    /// [`TransportKind::Threads`]).
    pub fn transport(&self, default: TransportKind) -> TransportKind {
        self.transport.unwrap_or(default)
    }

    /// Constant-memory streaming analytics
    /// (`--streaming[=BOOL]`/`ENCORE_STREAMING`), with a per-binary
    /// default (the world bins default to exact mode).
    pub fn streaming(&self, default: bool) -> bool {
        self.streaming.unwrap_or(default)
    }

    /// Streaming analytics window in days
    /// (`--window DAYS`/`ENCORE_WINDOW`), with a per-binary default.
    pub fn window_days(&self, default: u64) -> u64 {
        self.window_days.unwrap_or(default)
    }

    /// Directory JSON artifacts are written to (default `results/`).
    pub fn out_dir(&self) -> &std::path::Path {
        &self.out_dir
    }

    /// Write an experiment's JSON artifact as `<out>/<name>.json`.
    pub fn write_results<T: Serialize>(&self, name: &str, value: &T) {
        crate::write_results_to(&self.out_dir, name, value);
    }
}

/// Install a US-hosted server answering every request with a constant
/// image of `bytes` bytes — the standard measurement-target stand-in
/// (favicons in the paper are small single-packet images).
pub fn add_image_server(net: &mut Network, domain: &str, bytes: u64) {
    add_image_server_in(net, domain, country("US"), bytes);
}

/// [`add_image_server`] with an explicit hosting country.
pub fn add_image_server_in(net: &mut Network, domain: &str, cc: CountryCode, bytes: u64) {
    net.add_server(
        domain,
        cc,
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, bytes))),
    );
}

/// Install favicon-serving image servers for every domain (the §7.2
/// social-site targets are `censor::registry::SAFE_TARGETS`).
pub fn install_image_targets(net: &mut Network, domains: &[&str]) {
    for d in domains {
        add_image_server(net, d, 500);
    }
}

/// The ethics-staged favicon task pool: one `Image` task per domain,
/// IDs in domain order.
pub fn favicon_tasks(domains: &[&str]) -> Vec<MeasurementTask> {
    domains
        .iter()
        .enumerate()
        .map(|(i, d)| MeasurementTask {
            id: MeasurementId(i as u64),
            spec: TaskSpec::Image {
                url: format!("http://{d}/favicon.ico"),
            },
        })
        .collect()
}

/// Deploy Encore with US-hosted infrastructure (where the paper's
/// coordination and collection servers lived).
pub fn deploy_us(
    net: &mut Network,
    tasks: Vec<MeasurementTask>,
    strategy: SchedulingStrategy,
    origins: Vec<OriginSite>,
) -> EncoreSystem {
    EncoreSystem::deploy(net, tasks, strategy, origins, country("US"))
}

/// `n` equally popular academic volunteer origins named
/// `{prefix}-{i}.example`.
pub fn volunteer_origins(prefix: &str, n: usize, popularity: f64) -> Vec<OriginSite> {
    (0..n)
        .map(|i| OriginSite::academic(format!("{prefix}-{i}.example")).with_popularity(popularity))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use censor::registry::SAFE_TARGETS;
    use netsim::geo::{IspClass, World};
    use netsim::http::HttpRequest;
    use sim_core::{SimRng, SimTime};

    #[test]
    fn fixture_world_serves_favicon_tasks() {
        let mut net = Network::ideal(World::builtin());
        install_image_targets(&mut net, &SAFE_TARGETS);
        let tasks = favicon_tasks(&SAFE_TARGETS);
        assert_eq!(tasks.len(), SAFE_TARGETS.len());
        let sys = deploy_us(
            &mut net,
            tasks.clone(),
            SchedulingStrategy::RoundRobin,
            volunteer_origins("origin", 3, 2.0),
        );
        assert_eq!(sys.origins.len(), 3);
        // Every task's target answers with an image.
        let client = net.add_client(country("DE"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        for t in &tasks {
            let out = net.fetch(
                &client,
                &HttpRequest::get(t.spec.target_url()),
                SimTime::ZERO,
                &mut rng,
            );
            let resp = out.result.expect("target reachable");
            assert_eq!(resp.content_type, ContentType::Image);
        }
    }

    fn try_args(cli: &[&str], env_pairs: &[(&str, &str)]) -> Result<RunArgs, String> {
        let env_pairs: Vec<(String, String)> = env_pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        RunArgs::from_sources(cli.iter().map(|s| s.to_string()), move |key| {
            env_pairs
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
        })
    }

    #[test]
    fn run_args_priority_is_cli_then_env_then_default() {
        let args = |cli: &[&str], env_pairs: &[(&str, &str)]| {
            try_args(cli, env_pairs).expect("valid configuration")
        };

        // Defaults.
        let a = args(&[], &[]);
        assert_eq!(a.seed, crate::DEFAULT_SEED);
        assert_eq!(a.visits(100), 100);
        assert_eq!(a.shards(1), 1);
        assert_eq!(a.out_dir(), std::path::Path::new("results"));

        // Env overrides defaults.
        let a = args(&[], &[("ENCORE_SEED", "7"), ("ENCORE_VISITS", "500")]);
        assert_eq!(a.seed, 7);
        assert_eq!(a.visits(100), 500);

        // CLI overrides env; both --flag v and --flag=v forms.
        let a = args(
            &["--seed", "9", "--shards=4", "--out", "elsewhere"],
            &[("ENCORE_SEED", "7"), ("ENCORE_SHARDS", "2")],
        );
        assert_eq!(a.seed, 9);
        assert_eq!(a.shards(1), 4);
        assert_eq!(a.out_dir(), std::path::Path::new("elsewhere"));

        // Unknown flags and malformed values fall through harmlessly.
        let a = args(&["--bench", "--visits", "not-a-number"], &[]);
        assert_eq!(a.visits(123), 123);

        // A flag with a missing value never swallows the next flag.
        let a = args(&["--seed", "--shards", "4"], &[]);
        assert_eq!(a.seed, crate::DEFAULT_SEED);
        assert_eq!(a.shards(1), 4);

        // Hex seeds round-trip from the form the binaries print.
        let a = args(&["--seed", "0x3039"], &[]);
        assert_eq!(a.seed, 12345);
        let a = args(&[], &[("ENCORE_SEED", "0XE7C02015")]);
        assert_eq!(a.seed, 0xE7C0_2015);
    }

    #[test]
    fn run_args_reject_zero_shards_and_negative_days() {
        // `--shards 0` is a structural impossibility: hard error, not a
        // silent clamp or warn-and-default.
        let err = try_args(&["--shards", "0"], &[]).unwrap_err();
        assert!(err.contains("at least 1"), "unclear error: {err}");
        // The env spelling is rejected identically.
        let err = try_args(&[], &[("ENCORE_SHARDS", "0")]).unwrap_err();
        assert!(err.contains("at least 1"), "unclear error: {err}");

        // Negative shard counts are rejected like zero, not
        // warn-and-defaulted as parse noise.
        let err = try_args(&[], &[("ENCORE_SHARDS", "-2")]).unwrap_err();
        assert!(err.contains("at least 1"), "unclear error: {err}");
        assert!(err.contains("-2"), "error must echo the value: {err}");

        // Negative day spans are impossible worlds, not parse noise —
        // even with trailing junk, a leading '-' is an attempted negative.
        let err = try_args(&["--days", "-5"], &[]).unwrap_err();
        assert!(err.contains("non-negative"), "unclear error: {err}");
        assert!(err.contains("-5"), "error must echo the value: {err}");
        let err = try_args(&[], &[("ENCORE_DAYS", "-1")]).unwrap_err();
        assert!(err.contains("non-negative"), "unclear error: {err}");
        let err = try_args(&["--days", "-5x"], &[]).unwrap_err();
        assert!(err.contains("non-negative"), "unclear error: {err}");

        // Nearby valid values still parse.
        assert_eq!(try_args(&["--shards", "1"], &[]).unwrap().shards(8), 1);
        assert_eq!(try_args(&["--days", "0"], &[]).unwrap().days(30), 0);
        // Genuinely unparseable garbage keeps the warn-and-default path.
        assert_eq!(try_args(&["--days", "soon"], &[]).unwrap().days(30), 30);
    }

    #[test]
    fn run_args_topology_accepts_seeds_and_hard_rejects_garbage() {
        // Absent everywhere → the binary's default.
        let a = try_args(&[], &[]).unwrap();
        assert_eq!(a.topology(None), None);
        assert_eq!(a.topology(Some(9)), Some(9));

        // CLI decimal and the 0x-hex form the binaries print; CLI
        // overrides env, env overrides the default.
        let a = try_args(&["--topology", "42"], &[]).unwrap();
        assert_eq!(a.topology(None), Some(42));
        let a = try_args(&["--topology=0x2A"], &[("ENCORE_TOPOLOGY", "7")]).unwrap();
        assert_eq!(a.topology(None), Some(42));
        let a = try_args(&[], &[("ENCORE_TOPOLOGY", "0XBEEF")]).unwrap();
        assert_eq!(a.topology(None), Some(0xBEEF));

        // Malformed topology seeds are hard errors, not warn-and-default
        // like --seed: defaulting would benchmark a flat un-routed world
        // under a flag that promised a routed one.
        let err = try_args(&["--topology", "lattice"], &[]).unwrap_err();
        assert!(err.contains("--topology/ENCORE_TOPOLOGY"), "unclear: {err}");
        assert!(err.contains("lattice"), "error must echo the value: {err}");
        let err = try_args(&[], &[("ENCORE_TOPOLOGY", "-3")]).unwrap_err();
        assert!(err.contains("topology seed"), "unclear: {err}");
        let err = try_args(&["--topology", "0xZZ"], &[]).unwrap_err();
        assert!(err.contains("0xZZ"), "error must echo the value: {err}");
    }

    #[test]
    fn run_args_transport_accepts_backends_and_hard_rejects_garbage() {
        // Absent everywhere → the binary's default.
        let a = try_args(&[], &[]).unwrap();
        assert_eq!(a.transport(TransportKind::Threads), TransportKind::Threads);
        assert_eq!(a.transport(TransportKind::Process), TransportKind::Process);

        // Both spellings, CLI over env.
        let a = try_args(&["--transport", "process"], &[]).unwrap();
        assert_eq!(a.transport(TransportKind::Threads), TransportKind::Process);
        let a = try_args(&["--transport=threads"], &[("ENCORE_TRANSPORT", "process")]).unwrap();
        assert_eq!(a.transport(TransportKind::Process), TransportKind::Threads);
        let a = try_args(&[], &[("ENCORE_TRANSPORT", "process")]).unwrap();
        assert_eq!(a.transport(TransportKind::Threads), TransportKind::Process);

        // Malformed backends are hard errors, matching --topology: a
        // typo must not silently gate the default backend.
        let err = try_args(&["--transport", "proces"], &[]).unwrap_err();
        assert!(
            err.contains("--transport/ENCORE_TRANSPORT"),
            "unclear: {err}"
        );
        assert!(err.contains("proces"), "error must echo the value: {err}");
        let err = try_args(&[], &[("ENCORE_TRANSPORT", "Threads")]).unwrap_err();
        assert!(err.contains("Threads"), "error must echo the value: {err}");
        let err = try_args(&["--transport=sockets"], &[]).unwrap_err();
        assert!(err.contains("sockets"), "error must echo the value: {err}");
    }

    #[test]
    fn run_args_streaming_flag_parses_and_hard_rejects_garbage() {
        // Absent everywhere → the binary's default.
        let a = try_args(&[], &[]).unwrap();
        assert!(!a.streaming(false));
        assert!(a.streaming(true));

        // Bare presence flag means true — and never swallows the next
        // flag as its value.
        let a = try_args(&["--streaming", "--shards", "4"], &[]).unwrap();
        assert!(a.streaming(false));
        assert_eq!(a.shards(1), 4);

        // Explicit value via the `=` spelling; CLI over env.
        let a = try_args(&["--streaming=false"], &[("ENCORE_STREAMING", "true")]).unwrap();
        assert!(!a.streaming(true));
        let a = try_args(&[], &[("ENCORE_STREAMING", "1")]).unwrap();
        assert!(a.streaming(false));
        let a = try_args(&[], &[("ENCORE_STREAMING", "off")]).unwrap();
        assert!(!a.streaming(true));

        // A malformed boolean is a hard error: it must not silently
        // benchmark the other analytics pipeline.
        let err = try_args(&["--streaming=maybe"], &[]).unwrap_err();
        assert!(
            err.contains("--streaming/ENCORE_STREAMING"),
            "unclear: {err}"
        );
        assert!(err.contains("maybe"), "error must echo the value: {err}");
        let err = try_args(&[], &[("ENCORE_STREAMING", "2")]).unwrap_err();
        assert!(err.contains("\"2\""), "error must echo the value: {err}");
    }

    #[test]
    fn run_args_window_parses_days_and_hard_rejects_garbage() {
        // Absent everywhere → the binary's default.
        let a = try_args(&[], &[]).unwrap();
        assert_eq!(a.window_days(7), 7);

        // Both spellings; CLI over env.
        let a = try_args(&["--window", "3"], &[("ENCORE_WINDOW", "9")]).unwrap();
        assert_eq!(a.window_days(7), 3);
        let a = try_args(&["--window=14"], &[]).unwrap();
        assert_eq!(a.window_days(7), 14);
        let a = try_args(&[], &[("ENCORE_WINDOW", "2")]).unwrap();
        assert_eq!(a.window_days(7), 2);

        // Zero, negative, and garbage windows are hard errors — the
        // window sizes every streaming structure.
        let err = try_args(&["--window", "0"], &[]).unwrap_err();
        assert!(err.contains("at least 1 day"), "unclear: {err}");
        let err = try_args(&["--window", "-2"], &[]).unwrap_err();
        assert!(err.contains("-2"), "error must echo the value: {err}");
        let err = try_args(&[], &[("ENCORE_WINDOW", "fortnight")]).unwrap_err();
        assert!(err.contains("--window/ENCORE_WINDOW"), "unclear: {err}");
        assert!(
            err.contains("fortnight"),
            "error must echo the value: {err}"
        );
    }

    #[test]
    fn volunteer_origins_are_distinct() {
        let origins = volunteer_origins("v", 17, 1.5);
        let mut domains: Vec<_> = origins.iter().map(|o| o.domain.clone()).collect();
        domains.sort();
        domains.dedup();
        assert_eq!(domains.len(), 17);
    }
}
