//! Shared Network/EncoreSystem scenario builders for the experiment
//! binaries.
//!
//! Before this module every `src/bin/*.rs` hand-rolled the same setup:
//! a constant-image server per measurement target, a favicon task pool
//! over those targets, and an `EncoreSystem::deploy` with US-hosted
//! infrastructure. Copy-pasted fixtures drift — one binary's world stops
//! being another's — so the pieces live here once and the binaries
//! compose them.

use encore::coordination::SchedulingStrategy;
use encore::delivery::OriginSite;
use encore::system::EncoreSystem;
use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
use netsim::geo::{country, CountryCode};
use netsim::http::{ContentType, HttpResponse};
use netsim::network::{ConstHandler, Network};

/// Install a US-hosted server answering every request with a constant
/// image of `bytes` bytes — the standard measurement-target stand-in
/// (favicons in the paper are small single-packet images).
pub fn add_image_server(net: &mut Network, domain: &str, bytes: u64) {
    add_image_server_in(net, domain, country("US"), bytes);
}

/// [`add_image_server`] with an explicit hosting country.
pub fn add_image_server_in(net: &mut Network, domain: &str, cc: CountryCode, bytes: u64) {
    net.add_server(
        domain,
        cc,
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, bytes))),
    );
}

/// Install favicon-serving image servers for every domain (the §7.2
/// social-site targets are `censor::registry::SAFE_TARGETS`).
pub fn install_image_targets(net: &mut Network, domains: &[&str]) {
    for d in domains {
        add_image_server(net, d, 500);
    }
}

/// The ethics-staged favicon task pool: one `Image` task per domain,
/// IDs in domain order.
pub fn favicon_tasks(domains: &[&str]) -> Vec<MeasurementTask> {
    domains
        .iter()
        .enumerate()
        .map(|(i, d)| MeasurementTask {
            id: MeasurementId(i as u64),
            spec: TaskSpec::Image {
                url: format!("http://{d}/favicon.ico"),
            },
        })
        .collect()
}

/// Deploy Encore with US-hosted infrastructure (where the paper's
/// coordination and collection servers lived).
pub fn deploy_us(
    net: &mut Network,
    tasks: Vec<MeasurementTask>,
    strategy: SchedulingStrategy,
    origins: Vec<OriginSite>,
) -> EncoreSystem {
    EncoreSystem::deploy(net, tasks, strategy, origins, country("US"))
}

/// `n` equally popular academic volunteer origins named
/// `{prefix}-{i}.example`.
pub fn volunteer_origins(prefix: &str, n: usize, popularity: f64) -> Vec<OriginSite> {
    (0..n)
        .map(|i| OriginSite::academic(format!("{prefix}-{i}.example")).with_popularity(popularity))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use censor::registry::SAFE_TARGETS;
    use netsim::geo::{IspClass, World};
    use netsim::http::HttpRequest;
    use sim_core::{SimRng, SimTime};

    #[test]
    fn fixture_world_serves_favicon_tasks() {
        let mut net = Network::ideal(World::builtin());
        install_image_targets(&mut net, &SAFE_TARGETS);
        let tasks = favicon_tasks(&SAFE_TARGETS);
        assert_eq!(tasks.len(), SAFE_TARGETS.len());
        let sys = deploy_us(
            &mut net,
            tasks.clone(),
            SchedulingStrategy::RoundRobin,
            volunteer_origins("origin", 3, 2.0),
        );
        assert_eq!(sys.origins.len(), 3);
        // Every task's target answers with an image.
        let client = net.add_client(country("DE"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        for t in &tasks {
            let out = net.fetch(
                &client,
                &HttpRequest::get(t.spec.target_url()),
                SimTime::ZERO,
                &mut rng,
            );
            let resp = out.result.expect("target reachable");
            assert_eq!(resp.content_type, ContentType::Image);
        }
    }

    #[test]
    fn volunteer_origins_are_distinct() {
        let origins = volunteer_origins("v", 17, 1.5);
        let mut domains: Vec<_> = origins.iter().map(|o| o.domain.clone()).collect();
        domains.sort();
        domains.dedup();
        assert_eq!(domains.len(), 17);
    }
}
