//! Shared experiment-harness plumbing: world construction, result
//! tables, and JSON output.
//!
//! Every experiment binary in `src/bin/` regenerates one table or figure
//! from the paper (see DESIGN.md's per-experiment index). Binaries print
//! a human-readable table to stdout *and* write the same data as JSON
//! under `results/`, so EXPERIMENTS.md can be regenerated and diffed.

pub mod fixtures;

use browser::{BrowserClient, Engine};
use censor::registry::SAFE_TARGETS;
use encore::pipeline::{GenerationConfig, PatternExpander, TargetFetcher, TaskGenerator};
use encore::tasks::MeasurementTask;
use netsim::geo::{country, IspClass, World};
use netsim::network::Network;
use serde::Serialize;
use sim_core::{SimRng, SimTime};
use websim::generator::{social_site, SyntheticWeb, WebConfig};
use websim::har::Har;
use websim::site::SiteHandler;
use websim::{SearchIndex, UrlPattern};

/// Default root seed for all experiments (override with `ENCORE_SEED`).
pub const DEFAULT_SEED: u64 = 0x0000_E7C0_2015;

/// Read the experiment seed from the environment or default.
pub fn seed() -> u64 {
    std::env::var("ENCORE_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

/// A fully built paper-world: network + corpus + social sites + index.
pub struct PaperWorld {
    /// The network (with the corpus and social sites installed; censors
    /// and testbed are installed by the experiments that need them).
    pub net: Network,
    /// The synthetic content corpus (the Herdict-style 178 domains).
    pub web: SyntheticWeb,
    /// Search index over the corpus plus the social sites.
    pub index: SearchIndex,
    /// Root RNG (forked per subsystem).
    pub rng: SimRng,
}

impl PaperWorld {
    /// Build the world used by the feasibility experiments: 170-country
    /// world table, the 178-domain corpus, and the three §7.2 social
    /// sites.
    pub fn build(web_config: &WebConfig, seed: u64) -> PaperWorld {
        let mut rng = SimRng::new(seed);
        let world = World::with_long_tail(170);
        let mut net = Network::new(world);

        let web = SyntheticWeb::generate(web_config, &mut rng);
        web.install(&mut net, &mut rng);
        let mut index = SearchIndex::build(&web);

        // The high-collateral social sites.
        let mut social_rng = rng.fork("social-sites");
        for domain in SAFE_TARGETS {
            let site = std::rc::Rc::new(social_site(domain, &mut social_rng));
            net.add_server(
                domain,
                country("US"),
                Box::new(SiteHandler::new(site.clone())),
            );
            index.add_domain(domain, site.pages_by_popularity());
        }

        PaperWorld {
            net,
            web,
            index,
            rng,
        }
    }

    /// Run the full Figure 3 pipeline over the corpus: expand every
    /// domain pattern, fetch HARs from an unfiltered US vantage, return
    /// the HARs (the §6.1 corpus: "6,548 URLs from the 178 URL
    /// patterns").
    pub fn fetch_corpus_hars(&mut self) -> Vec<Har> {
        let patterns: Vec<UrlPattern> = self
            .web
            .domains()
            .into_iter()
            .map(UrlPattern::Domain)
            .collect();
        let expander = PatternExpander::new(&self.index);
        let urls = expander.expand_all(&patterns);
        let fetcher_browser = BrowserClient::new(
            &mut self.net,
            country("US"),
            IspClass::Academic,
            Engine::Chrome,
            &self.rng,
        );
        let mut fetcher = TargetFetcher::new(fetcher_browser);
        fetcher.fetch_all(&mut self.net, &urls, SimTime::ZERO)
    }

    /// Generate the task pool from HARs with the given config.
    pub fn generate_tasks(&self, hars: &[Har], config: GenerationConfig) -> Vec<MeasurementTask> {
        let mut generator = TaskGenerator::new(config);
        // The "manual verification" stand-in: a careful operator rejects
        // pages with known side effects (ground truth consulted the way a
        // human reviewer would inspect the page).
        let web = &self.web;
        generator.generate_all(hars, |url| {
            let Some(host) = netsim::http::host_of(url) else {
                return false;
            };
            let path = netsim::http::path_of(url);
            match web.site(&host) {
                Some(site) => site.page(&path).is_none_or(|p| !p.side_effects),
                None => false, // unknown page: a reviewer would reject it
            }
        })
    }
}

/// The shared censored-world fixture for the sharded-engine scale runs
/// and the shard-equivalence determinism harness.
///
/// One definition serves the `scale` binary, the `scale` criterion
/// bench, and `tests/shard_equivalence.rs`, so the scenario CI gates on
/// is provably the scenario the harness proves equivalent — three
/// hand-synchronised copies would drift.
pub mod shard_fixture {
    use censor::registry::{install_world_censors, SAFE_TARGETS};
    use encore::coordination::SchedulingStrategy;
    use encore::delivery::OriginSite;
    use encore::system::EncoreSystem;
    use netsim::geo::country;
    use netsim::http::{ContentType, HttpResponse};
    use netsim::network::Network;
    use netsim::scenario::{NetworkScenario, WorldSpec};
    use population::shard::ShardContext;
    use population::BatchConfig;
    use sim_core::SimDuration;

    /// The §7.2 world: the three social-site targets over ideal paths.
    pub fn scenario() -> NetworkScenario {
        let mut spec = NetworkScenario::new(WorldSpec::Builtin).with_ideal_paths();
        for d in SAFE_TARGETS {
            spec = spec.with_server(d, country("US"), HttpResponse::ok(ContentType::Image, 500));
        }
        spec
    }

    /// Shard builder with the 2014 national censors installed.
    pub fn build_censored(ctx: ShardContext) -> (Network, EncoreSystem) {
        let mut net = scenario().build_shard(ctx.index, ctx.shards);
        install_world_censors(&mut net);
        deploy(net)
    }

    /// Shard builder for the uncensored control world.
    pub fn build_uncensored(ctx: ShardContext) -> (Network, EncoreSystem) {
        let net = scenario().build_shard(ctx.index, ctx.shards);
        deploy(net)
    }

    /// Deploy Encore over the fixture world: one favicon task per safe
    /// target, a single academic origin.
    pub fn deploy(mut net: Network) -> (Network, EncoreSystem) {
        let origins = vec![OriginSite::academic("origin.example").with_popularity(3.0)];
        let sys = crate::fixtures::deploy_us(
            &mut net,
            crate::fixtures::favicon_tasks(&SAFE_TARGETS),
            SchedulingStrategy::RoundRobin,
            origins,
        );
        (net, sys)
    }

    /// The fixture batch: a busy aggregate arrival rate.
    pub fn batch(visits: u64) -> BatchConfig {
        BatchConfig {
            visits,
            mean_gap: SimDuration::from_millis(1_200),
            ..BatchConfig::default()
        }
    }

    /// Sorted, deduplicated `domain:country` verdict keys from the §7.2
    /// detector over a merged record set — the single definition of
    /// "verdict" that both the CI gate and the equivalence harness
    /// compare.
    pub fn verdict_keys(records: &[encore::StoredMeasurement], geo: &encore::GeoDb) -> Vec<String> {
        let mut keys: Vec<String> = encore::FilteringDetector::default()
            .detect(records, geo)
            .into_iter()
            .map(|d| format!("{}:{}", d.domain, d.country))
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

/// Write an experiment's JSON artifact under `results/`.
pub fn write_results<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, json);
        eprintln!("[written {path:?}]");
    }
}

/// Render a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format a CDF series as `(x, F)` rows.
pub fn cdf_rows(series: &[(f64, f64)]) -> Vec<Vec<String>> {
    series
        .iter()
        .map(|(x, f)| vec![format!("{x:.0}"), format!("{f:.3}")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_world_builds_and_produces_hars() {
        let mut pw = PaperWorld::build(&WebConfig::small(), 7);
        assert_eq!(pw.web.sites.len(), WebConfig::small().num_domains);
        let hars = pw.fetch_corpus_hars();
        assert!(!hars.is_empty());
        let ok = hars.iter().filter(|h| h.page_ok).count();
        assert!(ok * 10 > hars.len() * 9, "most corpus pages load");
    }

    #[test]
    fn task_generation_from_corpus() {
        let mut pw = PaperWorld::build(&WebConfig::small(), 7);
        let hars = pw.fetch_corpus_hars();
        let tasks = pw.generate_tasks(
            &hars,
            GenerationConfig {
                max_image_bytes: 5_000,
                ..GenerationConfig::default()
            },
        );
        assert!(!tasks.is_empty());
    }

    #[test]
    fn seed_default() {
        // Unless the env var is set in the test environment, expect the
        // default.
        if std::env::var("ENCORE_SEED").is_err() {
            assert_eq!(seed(), DEFAULT_SEED);
        }
    }
}
