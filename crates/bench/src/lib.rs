//! Shared experiment-harness plumbing: world construction, result
//! tables, and JSON output.
//!
//! Every experiment binary in `src/bin/` regenerates one table or figure
//! from the paper (see DESIGN.md's per-experiment index). Binaries print
//! a human-readable table to stdout *and* write the same data as JSON
//! under `results/`, so EXPERIMENTS.md can be regenerated and diffed.

pub mod fixtures;
pub mod specs;

use browser::{BrowserClient, Engine};
use censor::registry::SAFE_TARGETS;
use encore::pipeline::{GenerationConfig, PatternExpander, TargetFetcher, TaskGenerator};
use encore::tasks::MeasurementTask;
use netsim::geo::{country, IspClass, World};
use netsim::network::Network;
use serde::Serialize;
use sim_core::{SimRng, SimTime};
use websim::generator::{social_site, SyntheticWeb, WebConfig};
use websim::har::Har;
use websim::site::SiteHandler;
use websim::{SearchIndex, UrlPattern};

/// Default root seed for all experiments (override with `ENCORE_SEED`
/// or `--seed`; see [`fixtures::RunArgs`], the single CLI/env parser
/// every experiment binary goes through).
pub const DEFAULT_SEED: u64 = 0x0000_E7C0_2015;

/// A fully built paper-world: network + corpus + social sites + index.
pub struct PaperWorld {
    /// The network (with the corpus and social sites installed; censors
    /// and testbed are installed by the experiments that need them).
    pub net: Network,
    /// The synthetic content corpus (the Herdict-style 178 domains).
    pub web: SyntheticWeb,
    /// Search index over the corpus plus the social sites.
    pub index: SearchIndex,
    /// Root RNG (forked per subsystem).
    pub rng: SimRng,
}

impl PaperWorld {
    /// Build the world used by the feasibility experiments: 170-country
    /// world table, the 178-domain corpus, and the three §7.2 social
    /// sites.
    pub fn build(web_config: &WebConfig, seed: u64) -> PaperWorld {
        let mut rng = SimRng::new(seed);
        let world = World::with_long_tail(170);
        let mut net = Network::new(world);

        let web = SyntheticWeb::generate(web_config, &mut rng);
        web.install(&mut net, &mut rng);
        let mut index = SearchIndex::build(&web);

        // The high-collateral social sites.
        let mut social_rng = rng.fork("social-sites");
        for domain in SAFE_TARGETS {
            let site = std::sync::Arc::new(social_site(domain, &mut social_rng));
            net.add_server(
                domain,
                country("US"),
                Box::new(SiteHandler::new(site.clone())),
            );
            index.add_domain(domain, site.pages_by_popularity());
        }

        PaperWorld {
            net,
            web,
            index,
            rng,
        }
    }

    /// Run the full Figure 3 pipeline over the corpus: expand every
    /// domain pattern, fetch HARs from an unfiltered US vantage, return
    /// the HARs (the §6.1 corpus: "6,548 URLs from the 178 URL
    /// patterns").
    pub fn fetch_corpus_hars(&mut self) -> Vec<Har> {
        let patterns: Vec<UrlPattern> = self
            .web
            .domains()
            .into_iter()
            .map(UrlPattern::Domain)
            .collect();
        let expander = PatternExpander::new(&self.index);
        let urls = expander.expand_all(&patterns);
        let fetcher_browser = BrowserClient::new(
            &mut self.net,
            country("US"),
            IspClass::Academic,
            Engine::Chrome,
            &self.rng,
        );
        let mut fetcher = TargetFetcher::new(fetcher_browser);
        fetcher.fetch_all(&mut self.net, &urls, SimTime::ZERO)
    }

    /// Generate the task pool from HARs with the given config.
    pub fn generate_tasks(&self, hars: &[Har], config: GenerationConfig) -> Vec<MeasurementTask> {
        let mut generator = TaskGenerator::new(config);
        // The "manual verification" stand-in: a careful operator rejects
        // pages with known side effects (ground truth consulted the way a
        // human reviewer would inspect the page).
        let web = &self.web;
        generator.generate_all(hars, |url| {
            let Some(host) = netsim::http::host_of(url) else {
                return false;
            };
            let path = netsim::http::path_of(url);
            match web.site(&host) {
                Some(site) => site.page(&path).is_none_or(|p| !p.side_effects),
                None => false, // unknown page: a reviewer would reject it
            }
        })
    }
}

/// The shared censored-world fixture for the sharded-engine scale runs
/// and the shard-equivalence determinism harness.
///
/// One definition serves the `scale` binary, the `scale` criterion
/// bench, and `tests/shard_equivalence.rs`, so the scenario CI gates on
/// is provably the scenario the harness proves equivalent — three
/// hand-synchronised copies would drift.
pub mod shard_fixture {
    use censor::registry::{install_world_censors, SAFE_TARGETS};
    use encore::coordination::SchedulingStrategy;
    use encore::delivery::OriginSite;
    use encore::system::EncoreSystem;
    use netsim::geo::country;
    use netsim::http::{ContentType, HttpResponse};
    use netsim::network::Network;
    use netsim::scenario::{NetworkScenario, WorldSpec};
    use population::shard::ShardContext;
    use population::BatchConfig;
    use sim_core::SimDuration;

    /// The §7.2 world: the three social-site targets over ideal paths.
    pub fn scenario() -> NetworkScenario {
        let mut spec = NetworkScenario::new(WorldSpec::Builtin).with_ideal_paths();
        for d in SAFE_TARGETS {
            spec = spec.with_server(d, country("US"), HttpResponse::ok(ContentType::Image, 500));
        }
        spec
    }

    /// Shard builder with the 2014 national censors installed.
    pub fn build_censored(ctx: ShardContext) -> (Network, EncoreSystem) {
        let mut net = scenario().build_shard(ctx.index, ctx.shards);
        install_world_censors(&mut net);
        deploy(net)
    }

    /// Shard builder for the uncensored control world.
    pub fn build_uncensored(ctx: ShardContext) -> (Network, EncoreSystem) {
        let net = scenario().build_shard(ctx.index, ctx.shards);
        deploy(net)
    }

    /// Deploy Encore over the fixture world: one favicon task per safe
    /// target, a single academic origin.
    pub fn deploy(mut net: Network) -> (Network, EncoreSystem) {
        let origins = vec![OriginSite::academic("origin.example").with_popularity(3.0)];
        let sys = crate::fixtures::deploy_us(
            &mut net,
            crate::fixtures::favicon_tasks(&SAFE_TARGETS),
            SchedulingStrategy::RoundRobin,
            origins,
        );
        (net, sys)
    }

    /// The fixture batch: a busy aggregate arrival rate.
    pub fn batch(visits: u64) -> BatchConfig {
        BatchConfig {
            visits,
            mean_gap: SimDuration::from_millis(1_200),
            ..BatchConfig::default()
        }
    }

    /// Sorted, deduplicated `domain:country` verdict keys from the §7.2
    /// detector over a merged record set — the single definition of
    /// "verdict" that both the CI gate and the equivalence harness
    /// compare.
    pub fn verdict_keys(records: &[encore::StoredMeasurement], geo: &encore::GeoDb) -> Vec<String> {
        let mut keys: Vec<String> = encore::FilteringDetector::default()
            .detect(records, geo)
            .into_iter()
            .map(|d| format!("{}:{}", d.domain, d.country))
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }
}

/// The shared longitudinal-world fixture: the Turkey-2014-style Twitter
/// block as one [`population::WorldRecipe`], runnable serially
/// ([`population::WorldEngine::from_recipe`]) or across N cores
/// ([`population::run_sharded_world`]).
///
/// One definition serves the `timeline` and `world_scale` binaries and
/// `tests/world_shard_equivalence.rs`, so the scenario CI gates on is
/// provably the scenario the harness proves shard-invariant.
pub mod world_fixture {
    use censor::policy::{CensorPolicy, Mechanism};
    use censor::timeline::{CensorSpec, PolicyChange, PolicyTimeline};
    use encore::coordination::SchedulingStrategy;
    use encore::delivery::OriginSite;
    use encore::system::EncoreSystem;
    use encore::{FilteringDetector, GeoDb, StoredMeasurement};
    use netsim::geo::{country, CountryCode};
    use netsim::http::{ContentType, HttpResponse};
    use netsim::network::Network;
    use netsim::scenario::{NetworkScenario, WorldScenario, WorldSpec};
    use population::shard::ShardContext;
    use population::{DeploymentConfig, WorldRecipe};
    use serde::Serialize;
    use sim_core::{SimDuration, SimTime};
    use std::sync::Arc;

    /// Ground truth: the block switches on at day 10…
    pub const ONSET_DAY: u64 = 10;
    /// …and lifts at day 20.
    pub const LIFT_DAY: u64 = 20;

    /// The blocked domain.
    pub const TARGET: &str = "twitter.com";

    /// The substrate scenario: the built-in world table (default path
    /// model — latency jitter and loss are part of the longitudinal
    /// story) with a favicon-serving twitter.com.
    pub fn scenario() -> NetworkScenario {
        NetworkScenario::new(WorldSpec::Builtin).with_server(
            TARGET,
            country("US"),
            HttpResponse::ok(ContentType::Image, 500),
        )
    }

    /// Deploy Encore over one shard of the fixture world: two equally
    /// popular academic origins, one favicon task on the target.
    pub fn deploy(mut net: Network) -> (Network, EncoreSystem) {
        let origins = vec![
            OriginSite::academic("origin-a.example").with_popularity(5.0),
            OriginSite::academic("origin-b.example").with_popularity(5.0),
        ];
        let sys = crate::fixtures::deploy_us(
            &mut net,
            crate::fixtures::favicon_tasks(&[TARGET]),
            SchedulingStrategy::RoundRobin,
            origins,
        );
        (net, sys)
    }

    /// Shard builder for the plain fixture world.
    pub fn build(ctx: ShardContext) -> (Network, EncoreSystem) {
        deploy(scenario().build_shard(ctx.index, ctx.shards))
    }

    /// Shard builder for the fixture world with a **standing** Chinese
    /// censor pre-installed through the scenario's middlebox-factory
    /// hook ([`netsim::scenario::WorldScenario`]) — censorship that is
    /// already in force when the run starts, alongside the scheduled
    /// Turkish block. Exercises the cross-layer path `CensorSpec as
    /// MiddleboxFactory` on every shard thread.
    pub fn build_with_standing_censor(ctx: ShardContext) -> (Network, EncoreSystem) {
        let spec = WorldScenario::new(scenario()).with_middlebox(Arc::new(standing_censor()));
        deploy(spec.build_shard(ctx.index, ctx.shards))
    }

    /// The standing censor: China blocks the target for the whole run.
    pub fn standing_censor() -> CensorSpec {
        CensorSpec::new(
            country("CN"),
            CensorPolicy::named("cn-standing-block").block_domain(TARGET, Mechanism::DnsNxDomain),
        )
    }

    /// The March-2014-style block as a policy timeline: install at day
    /// [`ONSET_DAY`], lift at day [`LIFT_DAY`].
    pub fn turkey_timeline() -> PolicyTimeline {
        PolicyTimeline::new()
            .at(
                day(ONSET_DAY),
                PolicyChange::Install(CensorSpec::new(
                    country("TR"),
                    CensorPolicy::named("tr-election-block")
                        .block_domain(TARGET, Mechanism::DnsNxDomain),
                )),
            )
            .at(
                day(LIFT_DAY),
                PolicyChange::Lift {
                    name: "tr-election-block".into(),
                },
            )
    }

    /// The full longitudinal recipe: `days` of Poisson arrivals at
    /// `visits_per_day_per_weight`, the Turkey timeline, daily rollups,
    /// hourly session maintenance.
    pub fn recipe(days: u64, visits_per_day_per_weight: f64) -> WorldRecipe {
        WorldRecipe::deployment(DeploymentConfig {
            duration: SimDuration::from_days(days),
            visits_per_day_per_weight,
            ..DeploymentConfig::default()
        })
        .with_timeline(turkey_timeline())
        .with_rollups(SimDuration::from_days(1))
        .with_maintenance(SimDuration::from_secs(3_600))
    }

    /// Convert a day number to simulated time.
    pub fn day(d: u64) -> SimTime {
        SimTime::from_secs(d * 86_400)
    }

    /// The §7.2 windowed detector's verdict on one (country, domain)
    /// pair over a run's collected records: the per-day flag series and
    /// the localised onset/lift days. The single definition both the
    /// timeline binary and the shard-equivalence harness compare.
    #[derive(Debug, Clone, PartialEq, Eq, Serialize)]
    pub struct TimelineJudgment {
        /// `(day, result measurements, flagged)` per detector window.
        pub days: Vec<(u64, usize, bool)>,
        /// First window the pair was flagged (block onset).
        pub onset_day: Option<u64>,
        /// First window after onset the flag cleared (block lifted).
        pub lift_day: Option<u64>,
    }

    /// Run the windowed detector (1-day windows) and localise the
    /// onset/lift transitions for `cc:domain`. Localisation goes through
    /// [`encore::localise_transitions`] — the same rule the simcheck
    /// fuzz oracle applies to generated worlds — so the goldens and the
    /// generated scenario space can never disagree on what "onset" and
    /// "lift" mean.
    pub fn judge_timeline(
        records: &[StoredMeasurement],
        geo: &GeoDb,
        cc: CountryCode,
        domain: &str,
    ) -> TimelineJudgment {
        let reports =
            FilteringDetector::default().detect_windows(records, geo, SimDuration::from_days(1));
        let days: Vec<(u64, usize, bool)> = reports
            .iter()
            .map(|r| {
                let flagged = r
                    .detections
                    .iter()
                    .any(|d| d.country == cc && d.domain == domain);
                (r.window, r.measurements, flagged)
            })
            .collect();
        let (onset, lift) = encore::localise_transitions(days.iter().map(|&(w, _, f)| (w, f)));
        TimelineJudgment {
            days,
            onset_day: onset,
            lift_day: lift,
        }
    }

    /// The same verdict as [`judge_timeline`], judged from merged
    /// bounded-memory streaming analytics instead of a record log —
    /// what a `--streaming` run's windows are localised from. Both
    /// paths share the detector and [`encore::localise_transitions`],
    /// so "onset" and "lift" mean the same thing in either mode.
    pub fn judge_timeline_streamed(
        stats: &encore::streaming::StreamingStats,
        cc: CountryCode,
        domain: &str,
    ) -> TimelineJudgment {
        let reports = FilteringDetector::default().judge_streamed(stats);
        let days: Vec<(u64, usize, bool)> = reports
            .iter()
            .map(|r| {
                let flagged = r
                    .detections
                    .iter()
                    .any(|d| d.country == cc && d.domain == domain);
                (r.window, r.measurements, flagged)
            })
            .collect();
        let (onset, lift) = encore::localise_transitions(days.iter().map(|&(w, _, f)| (w, f)));
        TimelineJudgment {
            days,
            onset_day: onset,
            lift_day: lift,
        }
    }
}

/// The shared adversarial-world fixture: a 30-day world under an
/// **escalating adaptive censor** ([`censor::adaptive::AdaptiveCensor`])
/// driven by scheduled reactions — Iran watches the target from day 0,
/// injects RSTs from day 6, poisons DNS (1-hour lying TTL) from day 12,
/// null-routes from day 18, retaliates against the Encore collection
/// server itself from day 24, and stands down at day 27.
///
/// One definition serves `tests/adaptive_world.rs` (golden snapshot +
/// 1-vs-2-shard verdict check) so the scenario CI gates on is provably
/// the scenario the harness checks.
pub mod adaptive_fixture {
    use censor::adaptive::{AdaptiveSpec, Reaction, ReactionPolicy, Stage};
    use encore::system::EncoreSystem;
    use netsim::geo::{country, CountryCode};
    use netsim::network::Network;
    use netsim::scenario::WorldScenario;
    use population::shard::ShardContext;
    use population::{DeploymentConfig, WorldRecipe};
    use sim_core::{SimDuration, SimTime};
    use std::sync::Arc;

    /// The watched measurement target — the *same* domain the timeline
    /// fixture's deployment measures, re-exported so the censor's watch
    /// list and the measurement tasks can never silently de-correlate.
    pub use crate::world_fixture::TARGET;
    /// The adaptive censor's diagnostic name.
    pub const CENSOR: &str = "ir-adaptive";
    /// The censoring country.
    pub fn censor_country() -> CountryCode {
        country("IR")
    }

    /// Day each rung engages: RST injection, DNS poisoning, IP blocking,
    /// retaliation, stand-down.
    pub const RST_DAY: u64 = 6;
    /// See [`RST_DAY`].
    pub const POISON_DAY: u64 = 12;
    /// See [`RST_DAY`].
    pub const IP_BLOCK_DAY: u64 = 18;
    /// See [`RST_DAY`].
    pub const RETALIATE_DAY: u64 = 24;
    /// See [`RST_DAY`].
    pub const STAND_DOWN_DAY: u64 = 27;

    fn day(d: u64) -> SimTime {
        SimTime::from_secs(d * 86_400)
    }

    /// The standing adaptive censor: Iran watching the target, 1-hour
    /// lying poison TTL, retaliation aimed at the collection server.
    pub fn adaptive_spec() -> AdaptiveSpec {
        AdaptiveSpec::new(CENSOR, censor_country(), vec![TARGET.to_string()])
            .with_poison_ttl(SimDuration::from_secs(3_600))
    }

    /// The escalation schedule as a broadcastable reaction policy.
    pub fn reactions() -> ReactionPolicy {
        ReactionPolicy::new(CENSOR)
            .at(day(RST_DAY), Reaction::SetStage(Stage::RstInjection))
            .at(day(POISON_DAY), Reaction::SetStage(Stage::DnsPoison))
            .at(day(IP_BLOCK_DAY), Reaction::SetStage(Stage::IpBlock))
            .at(day(RETALIATE_DAY), Reaction::SetStage(Stage::Retaliate))
            .at(day(STAND_DOWN_DAY), Reaction::StandDown)
    }

    /// The 30-day longitudinal recipe: Poisson arrivals, the escalation
    /// schedule, daily rollups, hourly maintenance.
    ///
    /// The repeat-visitor rate is kept low for the same reason the
    /// simcheck detector-class generator keeps it low: returning
    /// clients' warm browser caches mask the block (§3.1 cache
    /// interference), and during the *probabilistic* RST rung that can
    /// push a low-n day cell into the binomial test's ambiguous zone,
    /// where the verdict would depend on per-shard arrival draws. At
    /// 0.05 every censored day stays decisively flagged at any shard
    /// count.
    pub fn recipe(days: u64, visits_per_day_per_weight: f64) -> WorldRecipe {
        WorldRecipe::deployment(DeploymentConfig {
            duration: SimDuration::from_days(days),
            visits_per_day_per_weight,
            repeat_visitor_rate: 0.05,
            ..DeploymentConfig::default()
        })
        .with_reaction(reactions())
        .with_rollups(SimDuration::from_days(1))
        .with_maintenance(SimDuration::from_secs(3_600))
    }

    /// Shard builder: the timeline fixture's world plus the standing
    /// adaptive censor installed through the middlebox-factory hook on
    /// every shard thread.
    pub fn build(ctx: ShardContext) -> (Network, EncoreSystem) {
        let spec = WorldScenario::new(crate::world_fixture::scenario())
            .with_middlebox(Arc::new(adaptive_spec()));
        crate::world_fixture::deploy(spec.build_shard(ctx.index, ctx.shards))
    }
}

/// The shared congestion-vs-censorship fixture: a 30-day **routed**
/// world (scale-free AS topology, Turkey's path to the US-hosted target
/// forced across a transit hotspot) where a week-long transit brownout
/// (days [`BROWNOUT_START`]..[`BROWNOUT_END`]) brackets a real DNS
/// block (days [`BLOCK_ONSET`]..[`BLOCK_LIFT`]). The two brownout-only
/// days before the block are the trap: a detector that reads shed
/// fetches as censorship advances the onset to day 8; the
/// congestion-aware detector must localise onset exactly at
/// [`BLOCK_ONSET`] and never flag days 8–9.
///
/// One definition serves `tests/congested_world.rs` (golden snapshot +
/// 1-vs-2-shard verdict check) and the `topology_scale` bench binary,
/// so the scenario CI gates on is provably the scenario the harness
/// checks.
pub mod congested_fixture {
    use censor::policy::{CensorPolicy, Mechanism};
    use censor::timeline::{CensorSpec, PolicyChange, PolicyTimeline};
    use encore::system::EncoreSystem;
    use netsim::geo::{country, CountryCode};
    use netsim::network::Network;
    use netsim::scenario::NetworkScenario;
    use netsim::TopologySpec;
    use population::shard::ShardContext;
    use population::{DeploymentConfig, WorldRecipe};
    use sim_core::{SimDuration, SimTime};

    /// The measured (and blocked) domain — shared with the timeline
    /// fixture so the scenarios stay comparable.
    pub use crate::world_fixture::TARGET;

    /// Seed of the scale-free AS topology the fixture routes over.
    pub const TOPOLOGY_SEED: u64 = 7;
    /// Day the transit brownout begins (background load jumps to
    /// [`BROWNOUT_LEVEL`] on every hotspot link).
    pub const BROWNOUT_START: u64 = 8;
    /// Day the brownout clears.
    pub const BROWNOUT_END: u64 = 14;
    /// Day the real DNS block lands — two days *into* the brownout.
    pub const BLOCK_ONSET: u64 = 10;
    /// Day the block lifts (with the brownout still fading the same day).
    pub const BLOCK_LIFT: u64 = 14;
    /// Brownout background utilisation: above the 0.7 shed threshold,
    /// below collapse — the congestion-class generator's powered range.
    pub const BROWNOUT_LEVEL: f64 = 0.82;

    /// The censoring country, whose route to the US target crosses the
    /// browned-out hotspot.
    pub fn censor_country() -> CountryCode {
        country("TR")
    }

    /// The substrate scenario: the timeline fixture's world routed over
    /// the seeded AS topology, with the censored country's path to the
    /// target forced across a transit hotspot link.
    pub fn scenario() -> NetworkScenario {
        crate::world_fixture::scenario().with_topology(
            TopologySpec::with_seed(TOPOLOGY_SEED)
                .with_hotspot_between(censor_country(), country("US")),
        )
    }

    /// The day-10 block as a policy timeline (DNS NXDOMAIN, the
    /// March-2014 mechanism).
    pub fn block_timeline() -> PolicyTimeline {
        PolicyTimeline::new()
            .at(
                day(BLOCK_ONSET),
                PolicyChange::Install(CensorSpec::new(
                    censor_country(),
                    CensorPolicy::named("tr-congested-block")
                        .block_domain(TARGET, Mechanism::DnsNxDomain),
                )),
            )
            .at(
                day(BLOCK_LIFT),
                PolicyChange::Lift {
                    name: "tr-congested-block".into(),
                },
            )
    }

    /// The full longitudinal recipe: `days` of Poisson arrivals, the
    /// day-10 block, and the transit brownout as a pair of **shared
    /// world mutations** — data-plane only, so congestion never counts
    /// as a control signal and never recompiles the middlebox pipeline.
    pub fn recipe(days: u64, visits_per_day_per_weight: f64) -> WorldRecipe {
        WorldRecipe::deployment(DeploymentConfig {
            duration: SimDuration::from_days(days),
            visits_per_day_per_weight,
            repeat_visitor_rate: 0.05,
            ..DeploymentConfig::default()
        })
        .with_timeline(block_timeline())
        .mutate_at(day(BROWNOUT_START), |net, _| {
            if let Some(topo) = net.topology_mut() {
                topo.set_hotspot_background(BROWNOUT_LEVEL);
            }
        })
        .mutate_at(day(BROWNOUT_END), |net, _| {
            if let Some(topo) = net.topology_mut() {
                topo.set_hotspot_background(0.0);
            }
        })
        .with_rollups(SimDuration::from_days(1))
        .with_maintenance(SimDuration::from_secs(3_600))
    }

    /// Shard builder for the routed fixture world. `build_shard` scales
    /// hotspot capacity by the shard count, keeping utilisation — and
    /// thus verdicts — invariant in how the offered load is split.
    pub fn build(ctx: ShardContext) -> (Network, EncoreSystem) {
        crate::world_fixture::deploy(scenario().build_shard(ctx.index, ctx.shards))
    }

    /// Convert a day number to simulated time.
    pub fn day(d: u64) -> SimTime {
        SimTime::from_secs(d * 86_400)
    }
}

/// The flagship generative-corpus fixture: a 90-day multi-country "world
/// report" over a seeded [`websim::corpus::Corpus`] — Zipf-popularity
/// sites with scale-free cross-links installed on every shard — under
/// four censor stories at once:
///
/// * **Standing registry regimes** ([`censor::registry`]): China, Iran,
///   and Pakistan filter the social targets for the whole run.
/// * **A scheduled block**: Turkey blocks twitter.com days
///   [`TR_BLOCK_ONSET`]..[`TR_BLOCK_LIFT`] (policy timeline).
/// * **An adaptive censor**: Russia watches the corpus' rank-0 domain
///   from day 0, escalates RST → DNS poison → IP block, and stands down
///   (reaction schedule, [`censor::adaptive::AdaptiveCensor`]).
/// * **Benign disruptions** ([`websim::corpus::Disruption`]): the rank-1
///   domain — also measured — suffers an origin outage, a botched cert
///   rotation, and a permanent redesign, each failing *globally*. The
///   detector's cross-region control must keep all of them out of the
///   verdicts.
///
/// The audience is a [`websim::corpus::CountryMix`] demographic over ten
/// countries, pairing each censoring country with enough healthy regions
/// for the cross-region control to work.
///
/// One definition serves the `world_report` binary and
/// `tests/world_report.rs` (golden byte-pin + 2-shard verdict check), so
/// the scenario CI gates on is provably the scenario the harness checks.
pub mod corpus_fixture {
    use browser::Engine;
    use censor::adaptive::{AdaptiveSpec, Reaction, ReactionPolicy, Stage};
    use censor::policy::{CensorPolicy, Mechanism};
    use censor::registry::{install_world_censors, SAFE_TARGETS};
    use censor::timeline::{CensorSpec, PolicyChange, PolicyTimeline};
    use encore::coordination::SchedulingStrategy;
    use encore::delivery::OriginSite;
    use encore::system::EncoreSystem;
    use encore::tasks::TaskOutcome;
    use encore::{FilteringDetector, GeoDb, StoredMeasurement, SubmissionPhase};
    use netsim::geo::{country, IspClass};
    use netsim::http::{ContentType, HttpResponse};
    use netsim::network::Network;
    use netsim::scenario::{NetworkScenario, WorldScenario, WorldSpec};
    use population::shard::ShardContext;
    use population::{Audience, DeploymentConfig, WorldRecipe};
    use serde::Serialize;
    use sim_core::{Empirical, SimDuration, SimRng, SimTime};
    use websim::corpus::{Corpus, CorpusConfig, CountryMix, Disruption, DisruptionKind};
    use websim::generator::WebConfig;

    /// Length of the flagship run.
    pub const DAYS: u64 = 90;
    /// Arrival rate (visits/day/origin-weight). Four round-robin tasks
    /// over origin weight 10 put ~1,000 visits/day on each task — the
    /// per-task power the timeline and adaptive goldens are proven at.
    pub const RATE: f64 = 400.0;
    /// Seed of the corpus itself (content, links, hosting) — independent
    /// of the run seed so re-seeding a run keeps the same web.
    pub const CORPUS_SEED: u64 = 0x0C0_7075;

    /// Turkey blocks twitter.com at this day…
    pub const TR_BLOCK_ONSET: u64 = 30;
    /// …and lifts the block here.
    pub const TR_BLOCK_LIFT: u64 = 60;
    /// Russia's adaptive censor escalates to RST injection…
    pub const RU_RST_DAY: u64 = 20;
    /// …then DNS poisoning (1-hour lying TTL)…
    pub const RU_POISON_DAY: u64 = 35;
    /// …then IP null-routing…
    pub const RU_IP_BLOCK_DAY: u64 = 50;
    /// …and stands down here.
    pub const RU_STAND_DOWN_DAY: u64 = 75;
    /// The rank-1 origin goes dark at this day…
    pub const OUTAGE_START: u64 = 40;
    /// …and is restored here.
    pub const OUTAGE_END: u64 = 42;
    /// A one-day botched cert rotation on the rank-1 origin.
    pub const CERT_ROTATION_DAY: u64 = 55;
    /// The rank-1 site's permanent redesign breaks its favicon task.
    pub const REDESIGN_DAY: u64 = 70;

    /// The Russian adaptive censor's diagnostic name.
    pub const RU_CENSOR: &str = "ru-adaptive";

    /// Corpus knobs: 12 Zipf-ranked sites, scale-free cross-links.
    pub fn corpus_config() -> CorpusConfig {
        CorpusConfig {
            web: WebConfig {
                num_domains: 12,
                median_pages_per_domain: 8.0,
                ..WebConfig::default()
            },
            zipf_exponent: 1.1,
            cross_links_per_site: 2,
        }
    }

    /// The fixture corpus — a pure function of [`CORPUS_SEED`], so every
    /// shard (and every recipe mutation closure) sees identical content.
    pub fn corpus() -> Corpus {
        Corpus::generate(&corpus_config(), &mut SimRng::new(CORPUS_SEED))
            .expect("fixture corpus config is valid")
    }

    /// The adaptive censor's watched domain: the corpus' rank-0 site.
    pub fn adaptive_target(corpus: &Corpus) -> String {
        corpus.domain(0).to_string()
    }

    /// The benignly disrupted (but measured) domain: the rank-1 site.
    pub fn disrupted_domain(corpus: &Corpus) -> String {
        corpus.domain(1).to_string()
    }

    /// The ten-country demographic mix (Zipf 0.6 — flat enough that the
    /// tail countries keep statistical power).
    pub fn demographics() -> CountryMix {
        CountryMix::zipf(
            &["US", "CN", "IN", "BR", "RU", "TR", "PK", "IR", "DE", "ID"],
            0.6,
        )
        .expect("non-empty country list")
    }

    /// The audience built from [`demographics`].
    pub fn audience() -> Audience {
        let mix = demographics();
        Audience {
            countries: Empirical::new(
                mix.weights
                    .iter()
                    .map(|(cc, w)| (country(cc), *w))
                    .collect(),
            ),
            isps: Empirical::new(vec![
                (IspClass::Residential, 0.62),
                (IspClass::Mobile, 0.28),
                (IspClass::Academic, 0.07),
                (IspClass::Datacenter, 0.03),
            ]),
            engines: Engine::market_distribution(),
            bounce_fraction: 0.50,
            long_stay_fraction: 0.30,
            crawler_fraction: 0.04,
        }
    }

    /// The substrate scenario: built-in world, ideal paths, favicon-
    /// serving social targets (the corpus sites are installed per shard
    /// in [`build`], since stateful [`websim::SiteHandler`]s cannot ride
    /// a const-response [`NetworkScenario`]).
    pub fn scenario() -> NetworkScenario {
        let mut spec = NetworkScenario::new(WorldSpec::Builtin).with_ideal_paths();
        for d in SAFE_TARGETS {
            spec = spec.with_server(d, country("US"), HttpResponse::ok(ContentType::Image, 500));
        }
        spec
    }

    /// The standing Russian adaptive censor (a middlebox factory, so it
    /// is rebuilt identically on every shard thread).
    pub fn ru_adaptive_spec(corpus: &Corpus) -> AdaptiveSpec {
        AdaptiveSpec::new(RU_CENSOR, country("RU"), vec![adaptive_target(corpus)])
            .with_poison_ttl(SimDuration::from_secs(3_600))
    }

    /// Russia's escalation schedule as broadcast control events.
    pub fn ru_reactions() -> ReactionPolicy {
        ReactionPolicy::new(RU_CENSOR)
            .at(day(RU_RST_DAY), Reaction::SetStage(Stage::RstInjection))
            .at(day(RU_POISON_DAY), Reaction::SetStage(Stage::DnsPoison))
            .at(day(RU_IP_BLOCK_DAY), Reaction::SetStage(Stage::IpBlock))
            .at(day(RU_STAND_DOWN_DAY), Reaction::StandDown)
    }

    /// Turkey's scheduled twitter.com block.
    pub fn tr_timeline() -> PolicyTimeline {
        PolicyTimeline::new()
            .at(
                day(TR_BLOCK_ONSET),
                PolicyChange::Install(CensorSpec::new(
                    country("TR"),
                    CensorPolicy::named("tr-world-block")
                        .block_domain("twitter.com", Mechanism::DnsNxDomain),
                )),
            )
            .at(
                day(TR_BLOCK_LIFT),
                PolicyChange::Lift {
                    name: "tr-world-block".into(),
                },
            )
    }

    /// The three benign disruptions, all against the rank-1 site.
    pub fn disruptions() -> [Disruption; 3] {
        [
            Disruption {
                day: OUTAGE_START,
                duration_days: OUTAGE_END - OUTAGE_START,
                site: 1,
                kind: DisruptionKind::OriginOutage,
            },
            Disruption {
                day: CERT_ROTATION_DAY,
                duration_days: 1,
                site: 1,
                kind: DisruptionKind::CertRotation,
            },
            Disruption {
                day: REDESIGN_DAY,
                duration_days: 0,
                site: 1,
                kind: DisruptionKind::Redesign,
            },
        ]
    }

    /// Shard builder: substrate scenario, then the corpus installed from
    /// its own fixed seed (identical on every shard), then the standing
    /// RU adaptive censor — built *after* the corpus so its watched
    /// domain resolves to real addresses for the address-matched stages
    /// (RST injection, IP block) — then the 2014 registry regimes, then
    /// deployment.
    pub fn build(ctx: ShardContext) -> (Network, EncoreSystem) {
        let corpus = corpus();
        let mut net = WorldScenario::new(scenario()).build_shard(ctx.index, ctx.shards);
        corpus.install(&mut net, &mut SimRng::new(CORPUS_SEED ^ 1));
        let ru = ru_adaptive_spec(&corpus).build(&net.dns);
        net.add_middlebox(Box::new(ru));
        install_world_censors(&mut net);

        let tasks = crate::fixtures::favicon_tasks(&[
            "twitter.com",
            "youtube.com",
            &adaptive_target(&corpus),
            &disrupted_domain(&corpus),
        ]);
        let origins = vec![
            OriginSite::academic("world-origin-a.example").with_popularity(5.0),
            OriginSite::academic("world-origin-b.example").with_popularity(5.0),
        ];
        let sys =
            crate::fixtures::deploy_us(&mut net, tasks, SchedulingStrategy::RoundRobin, origins);
        (net, sys)
    }

    /// The full 90-day recipe: Poisson arrivals, the Turkish timeline,
    /// the Russian escalation schedule, and the benign disruptions as
    /// shared world mutations capturing the (`Send + Sync`, `Arc`-shared)
    /// corpus — the payoff of the `Rc`→`Arc` fix.
    pub fn recipe(days: u64, visits_per_day_per_weight: f64) -> WorldRecipe {
        let corpus = corpus();
        let mut recipe = WorldRecipe::deployment(DeploymentConfig {
            duration: SimDuration::from_days(days),
            visits_per_day_per_weight,
            repeat_visitor_rate: 0.05,
            ..DeploymentConfig::default()
        })
        .with_timeline(tr_timeline())
        .with_reaction(ru_reactions())
        .with_rollups(SimDuration::from_days(1))
        .with_maintenance(SimDuration::from_secs(3_600));
        for d in disruptions() {
            if d.day >= days {
                continue;
            }
            let c = corpus.clone();
            recipe = recipe.mutate_at(day(d.day), move |net, _| {
                d.apply(&c, net);
            });
            if let Some(end) = d.end_day().filter(|&end| end < days) {
                let c = corpus.clone();
                recipe = recipe.mutate_at(day(end), move |net, _| {
                    d.revert(&c, net);
                });
            }
        }
        recipe
    }

    /// Convert a day number to simulated time.
    pub fn day(d: u64) -> SimTime {
        SimTime::from_secs(d * 86_400)
    }

    /// One tracked `(country, domain)` verdict in the world report.
    #[derive(Debug, Clone, PartialEq, Eq, Serialize, serde::Deserialize)]
    pub struct PairVerdict {
        /// Censoring (or control) country code.
        pub country: String,
        /// Measured domain.
        pub domain: String,
        /// Localised block onset, if any.
        pub onset_day: Option<u64>,
        /// Localised block lift, if any.
        pub lift_day: Option<u64>,
        /// Every flagged detector window (day numbers).
        pub flagged_days: Vec<u64>,
    }

    /// The world-report verdict set over one run's records.
    #[derive(Debug, Clone, PartialEq, Eq, Serialize, serde::Deserialize)]
    pub struct WorldVerdicts {
        /// Tracked censor stories.
        pub pairs: Vec<PairVerdict>,
        /// The benignly disrupted domain.
        pub disrupted_domain: String,
        /// Days where the disrupted domain failed globally (>50% of its
        /// result-phase measurements) — the outage/rotation/redesign
        /// signature.
        pub disrupted_failure_days: Vec<u64>,
        /// Detections against the disrupted domain anywhere in the run.
        /// The cross-region control must keep this at **zero**.
        pub disrupted_detections: usize,
    }

    /// Judge a run: the four censor stories plus the disruption
    /// soundness counts, all through the shared windowed detector and
    /// localisation rule. Windows at or past `days` are dropped before
    /// localisation: a visit arriving just before the horizon can land
    /// its submission in a partial trailing window, and *whether* that
    /// window exists depends on the thinned per-shard arrival sample —
    /// an artifact of the run length, not a verdict, so it must not be
    /// allowed to turn a standing block into a phantom "lift".
    pub fn judge(records: &[StoredMeasurement], geo: &GeoDb, days: u64) -> WorldVerdicts {
        let corpus = corpus();
        let rank0 = adaptive_target(&corpus);
        let rank1 = disrupted_domain(&corpus);
        let tracked = [
            ("CN", "twitter.com"),
            ("IR", "twitter.com"),
            ("TR", "twitter.com"),
            ("CN", "youtube.com"),
            ("PK", "youtube.com"),
            ("RU", rank0.as_str()),
            ("RU", rank1.as_str()),
        ];
        let pairs = tracked
            .iter()
            .map(|&(cc, domain)| {
                let j = crate::world_fixture::judge_timeline(records, geo, country(cc), domain);
                let rows: Vec<(u64, bool)> = j
                    .days
                    .iter()
                    .filter(|&&(d, _, _)| d < days)
                    .map(|&(d, _, f)| (d, f))
                    .collect();
                let (onset_day, lift_day) = encore::localise_transitions(rows.iter().copied());
                PairVerdict {
                    country: cc.to_string(),
                    domain: domain.to_string(),
                    onset_day,
                    lift_day,
                    flagged_days: rows.iter().filter(|&&(_, f)| f).map(|&(d, _)| d).collect(),
                }
            })
            .collect();

        let window = SimDuration::from_days(1);
        let disrupted_detections = FilteringDetector::default()
            .detect_windows(records, geo, window)
            .iter()
            .filter(|r| r.window < days)
            .flat_map(|r| r.detections.iter())
            .filter(|d| d.domain == rank1)
            .count();

        // Per-day global failure rate on the disrupted domain.
        let host = format!("http://{rank1}/");
        let mut per_day: std::collections::BTreeMap<u64, (usize, usize)> =
            std::collections::BTreeMap::new();
        for rec in records {
            if rec.submission.phase != SubmissionPhase::Result
                || !rec.submission.target_url.starts_with(&host)
            {
                continue;
            }
            let d = rec.received_at.as_micros() / window.as_micros();
            let cell = per_day.entry(d).or_insert((0, 0));
            cell.0 += 1;
            if rec.submission.outcome != Some(TaskOutcome::Success) {
                cell.1 += 1;
            }
        }
        let disrupted_failure_days = per_day
            .iter()
            .filter(|&(&d, &(n, fails))| d < days && n > 0 && fails * 2 > n)
            .map(|(&d, _)| d)
            .collect();

        WorldVerdicts {
            pairs,
            disrupted_domain: rank1,
            disrupted_failure_days,
            disrupted_detections,
        }
    }

    /// The flagship golden artifact. One definition serves the
    /// `world_report` binary (CI byte-diffs `results/world_report.json`
    /// against `tests/golden/world_report.json`) and
    /// `tests/world_report.rs` (which blesses and byte-pins that
    /// golden), so the two gates can never disagree about the shape.
    #[derive(Debug, Clone, PartialEq, Eq, Serialize, serde::Deserialize)]
    pub struct WorldReport {
        /// Shard count of the run that produced this artifact.
        pub shards: usize,
        /// Root seed.
        pub seed: u64,
        /// Simulated days.
        pub days: u64,
        /// Total visits simulated.
        pub visits: u64,
        /// Timeline policy events applied (TR install + lift = 2).
        pub policy_changes_applied: usize,
        /// Adaptive-censor control signals applied (RU's four rungs).
        pub control_signals_applied: usize,
        /// The corpus' domains in rank (= insertion) order.
        pub corpus_domains: Vec<String>,
        /// Verdicts and soundness counts.
        pub verdicts: WorldVerdicts,
    }

    /// Assemble the golden artifact from a finished run.
    pub fn report(
        run: &population::ShardedWorldRun,
        shards: usize,
        days: u64,
        seed: u64,
    ) -> WorldReport {
        let corpus = corpus();
        WorldReport {
            shards,
            seed,
            days,
            visits: run.outcome.report.visits,
            policy_changes_applied: run.outcome.policy_changes_applied,
            control_signals_applied: run.outcome.control_signals_applied,
            corpus_domains: corpus.domains().iter().map(|d| d.to_string()).collect(),
            verdicts: judge(&run.collection.records, &run.geo, days),
        }
    }
}

/// Write an experiment's JSON artifact under `results/`. Binaries should
/// prefer [`fixtures::RunArgs::write_results`], which honours `--out`.
pub fn write_results<T: Serialize>(name: &str, value: &T) {
    write_results_to(std::path::Path::new("results"), name, value);
}

/// Write an experiment's JSON artifact as `<dir>/<name>.json`.
pub fn write_results_to<T: Serialize>(dir: &std::path::Path, name: &str, value: &T) {
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(json) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, json);
        eprintln!("[written {path:?}]");
    }
}

/// Render a simple aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format a CDF series as `(x, F)` rows.
pub fn cdf_rows(series: &[(f64, f64)]) -> Vec<Vec<String>> {
    series
        .iter()
        .map(|(x, f)| vec![format!("{x:.0}"), format!("{f:.3}")])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_world_builds_and_produces_hars() {
        let mut pw = PaperWorld::build(&WebConfig::small(), 7);
        assert_eq!(pw.web.sites.len(), WebConfig::small().num_domains);
        let hars = pw.fetch_corpus_hars();
        assert!(!hars.is_empty());
        let ok = hars.iter().filter(|h| h.page_ok).count();
        assert!(ok * 10 > hars.len() * 9, "most corpus pages load");
    }

    #[test]
    fn task_generation_from_corpus() {
        let mut pw = PaperWorld::build(&WebConfig::small(), 7);
        let hars = pw.fetch_corpus_hars();
        let tasks = pw.generate_tasks(
            &hars,
            GenerationConfig {
                max_image_bytes: 5_000,
                ..GenerationConfig::default()
            },
        );
        assert!(!tasks.is_empty());
    }
}
