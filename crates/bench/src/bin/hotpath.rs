//! Hotpath — ns/visit and visits/s of the per-visit pipeline, the
//! canonical perf-trajectory artifact for the data-oriented hot path.
//!
//! Where `scale` and `world_scale` ask "how far does sharding get us",
//! this binary asks the prior question: **how expensive is one visit?**
//! It times the serial batch driver on the shared `bench::shard_fixture`
//! censored world in three session-temperature modes —
//!
//! * `cold`  — `repeat_visitor_rate = 0.0`: every visit builds a fresh
//!   browser client (fresh DNS cache, no keep-alive, cold HTTP cache);
//! * `mixed` — the default 0.35 repeat rate (the `BatchConfig` default,
//!   what `scale` gates on);
//! * `warm`  — `repeat_visitor_rate = 0.95`: almost every visit runs on
//!   a pooled client whose session state is already hot, i.e. the
//!   zero-allocation warm path the interning/SoA work targets;
//!
//! — plus a sharded run of the `mixed` mode at the machine's top shard
//! count. Results go to `results/hotpath.json`, with the PR 5 baseline
//! numbers (measured on the reference container before the
//! data-oriented refactor) baked in alongside so the trajectory is
//! visible in one artifact.
//!
//! Determinism is re-checked while timing: the 1-shard sharded run must
//! be byte-identical to the serial driver, and a repeated serial run
//! must reproduce exactly. The throughput gate is parallelism-aware
//! (same shape as `world_scale`): the sharded run must reach 40%
//! parallel efficiency of the hardware thread count, capped at 4× and
//! floored at 0.4×; `--min-speedup`/`ENCORE_MIN_SPEEDUP` overrides.
//! Exit is non-zero on any determinism violation or a failed gate.
//!
//! Every timed configuration runs `--reps`/`ENCORE_REPS` times
//! (default 3) and reports the minimum wall time: noise on a shared
//! machine is one-sided (steal and frequency dips only add time), so
//! the minimum is the estimator closest to the true per-visit cost.
//! The repetitions double as reproducibility probes — every rep of a
//! configuration must produce byte-identical reports.
//!
//! Overrides: `--visits`/`ENCORE_VISITS` (default 100 000),
//! `--shards`/`ENCORE_SHARDS` (default 8), `--seed`/`ENCORE_SEED`,
//! `--reps`/`ENCORE_REPS`.

use bench::fixtures::RunArgs;
use bench::print_table;
use bench::shard_fixture::{batch, build_censored as build};
use netsim::geo::World;
use population::shard::ShardContext;
use population::{run_sharded_batch, run_visit_batch, Audience, BatchConfig, ShardedBatchConfig};
use serde::Serialize;
use sim_core::SimRng;
use std::time::Instant;

/// PR 5 serial visits/s (mixed mode) on the reference container —
/// measured at commit "Re-anchor ROADMAP" before the data-oriented hot
/// path landed. The ≥5× acceptance gate in ISSUE 6 is relative to this.
const PR5_SERIAL_VPS: f64 = 50_565.0;
/// PR 5 ns/visit (mixed mode) on the reference container.
const PR5_NS_PER_VISIT: f64 = 19_777.0;

#[derive(Serialize)]
struct ModePoint {
    mode: &'static str,
    repeat_visitor_rate: f64,
    visits_per_sec: f64,
    ns_per_visit: f64,
}

#[derive(Serialize)]
struct ShardPoint {
    shards: usize,
    visits_per_sec: f64,
    ns_per_visit: f64,
    speedup_vs_serial: f64,
}

#[derive(Serialize)]
struct HotpathResult {
    visits: u64,
    hardware_threads: usize,
    baseline_pr5_serial_visits_per_sec: f64,
    baseline_pr5_ns_per_visit: f64,
    serial: Vec<ModePoint>,
    sharded: Vec<ShardPoint>,
    speedup_vs_pr5_baseline: f64,
    lockstep_ok: bool,
    reproducible_ok: bool,
}

/// The fixture batch with an overridden repeat-visitor rate.
fn mode_config(visits: u64, repeat: f64) -> BatchConfig {
    BatchConfig {
        repeat_visitor_rate: repeat,
        ..batch(visits)
    }
}

/// Run the serial batch driver once; world build is *outside* the timed
/// region — this binary measures the per-visit pipeline, not world
/// construction (which `scale` already covers end-to-end).
fn run_serial(
    visits: u64,
    repeat: f64,
    seed: u64,
    audience: &Audience,
) -> (population::BatchReport, encore::CollectionSnapshot, f64) {
    let (mut net, mut sys) = build(ShardContext {
        index: 0,
        shards: 1,
    });
    let config = mode_config(visits, repeat);
    let mut rng = SimRng::new(seed);
    let t0 = Instant::now();
    let report = run_visit_batch(&mut net, &mut sys, audience, &config, &mut rng);
    let secs = t0.elapsed().as_secs_f64();
    (report, sys.collection.snapshot(), secs)
}

fn main() {
    let args = RunArgs::parse();
    let visits = args.visits(100_000);
    let max_shards = args.shards(8);
    let reps = args.reps(3);
    let seed = args.seed;
    let audience = Audience::world(&World::builtin());
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Serial temperature sweep.
    let modes: [(&'static str, f64); 3] = [("cold", 0.0), ("mixed", 0.35), ("warm", 0.95)];
    let mut serial_points = Vec::new();
    let mut mixed_vps = 0.0;
    let mut mixed_report = None;
    let mut mixed_snapshot = None;
    let mut rows = Vec::new();
    // Serial reproducibility rides on the repetitions: the same
    // (seed, config) must reproduce byte-for-byte — the per-visit
    // pipeline may not read wall-clock, addresses, or
    // iteration-order-unstable state.
    let mut reproducible_ok = true;
    for (mode, repeat) in modes {
        let (report, snapshot, mut secs) = run_serial(visits, repeat, seed, &audience);
        for _ in 1..reps {
            let (rep_n, snap_n, secs_n) = run_serial(visits, repeat, seed, &audience);
            if rep_n != report || snap_n != snapshot {
                eprintln!("DETERMINISM VIOLATION: fixed-seed serial/{mode} run not reproducible");
                reproducible_ok = false;
            }
            secs = secs.min(secs_n);
        }
        let vps = report.visits as f64 / secs;
        let ns = secs * 1e9 / report.visits as f64;
        rows.push(vec![
            format!("serial/{mode}"),
            format!("{vps:.0}"),
            format!("{ns:.0}"),
            format!("{:.2}x", vps / PR5_SERIAL_VPS),
        ]);
        if mode == "mixed" {
            mixed_vps = vps;
            mixed_report = Some(report);
            mixed_snapshot = Some(snapshot);
        }
        serial_points.push(ModePoint {
            mode,
            repeat_visitor_rate: repeat,
            visits_per_sec: vps,
            ns_per_visit: ns,
        });
    }
    let mixed_report = mixed_report.unwrap();
    let mixed_snapshot = mixed_snapshot.unwrap();

    // Sharded mixed mode: 1 shard (lockstep check) and the top count.
    let shard_counts: Vec<usize> = [1usize, max_shards.max(1)]
        .into_iter()
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    let mut shard_points = Vec::new();
    let mut lockstep_ok = true;
    for &shards in &shard_counts {
        let config = ShardedBatchConfig {
            shards,
            batch: mode_config(visits, 0.35),
        };
        let t = Instant::now();
        let run = run_sharded_batch(&build, &audience, &config, seed);
        let mut secs = t.elapsed().as_secs_f64();
        for _ in 1..reps {
            let t = Instant::now();
            let run_n = run_sharded_batch(&build, &audience, &config, seed);
            secs = secs.min(t.elapsed().as_secs_f64());
            if run_n.report != run.report || run_n.collection != run.collection {
                eprintln!("DETERMINISM VIOLATION: fixed-seed {shards}-shard run not reproducible");
                lockstep_ok = false;
            }
        }
        let vps = run.report.visits as f64 / secs;
        if shards == 1 && (run.report != mixed_report || run.collection != mixed_snapshot) {
            eprintln!("DETERMINISM VIOLATION: 1-shard run differs from the serial driver");
            lockstep_ok = false;
        }
        rows.push(vec![
            format!("shards/{shards}"),
            format!("{vps:.0}"),
            format!("{:.0}", secs * 1e9 / run.report.visits as f64),
            format!("{:.2}x", vps / mixed_vps),
        ]);
        shard_points.push(ShardPoint {
            shards,
            visits_per_sec: vps,
            ns_per_visit: secs * 1e9 / run.report.visits as f64,
            speedup_vs_serial: vps / mixed_vps,
        });
    }

    let best = shard_points
        .iter()
        .map(|p| p.speedup_vs_serial)
        .fold(0.0f64, f64::max);
    let speedup_vs_pr5 = mixed_vps / PR5_SERIAL_VPS;
    println!(
        "Visit hot path — {visits} visits, seed {seed:#x}, {hardware} hw thread(s), \
         min of {reps} rep(s); PR5 baseline {PR5_SERIAL_VPS:.0} visits/s \
         ({PR5_NS_PER_VISIT:.0} ns/visit)"
    );
    print_table(&["config", "visits/s", "ns/visit", "speedup"], &rows);
    println!("serial/mixed vs PR5 baseline: {speedup_vs_pr5:.2}x");

    args.write_results(
        "hotpath",
        &HotpathResult {
            visits,
            hardware_threads: hardware,
            baseline_pr5_serial_visits_per_sec: PR5_SERIAL_VPS,
            baseline_pr5_ns_per_visit: PR5_NS_PER_VISIT,
            serial: serial_points,
            sharded: shard_points,
            speedup_vs_pr5_baseline: speedup_vs_pr5,
            lockstep_ok,
            reproducible_ok,
        },
    );

    // Parallelism-aware throughput gate, same shape as `world_scale`:
    // the sharded run must show real parallel efficiency on this
    // machine. (The ≥5× serial gate vs the PR 5 baseline is asserted on
    // the reference container and recorded in the JSON; wall-clock on
    // arbitrary runners is too noisy to hard-gate an absolute number.)
    let required = args.min_speedup((0.4 * hardware as f64).clamp(0.4, 4.0));
    let throughput_ok = best >= required;
    if !throughput_ok {
        eprintln!(
            "THROUGHPUT REGRESSION: best sharded speedup {best:.2}x < required {required:.2}x \
             ({hardware} hw threads)"
        );
    }

    if !(lockstep_ok && reproducible_ok && throughput_ok) {
        std::process::exit(1);
    }
}
