//! §7.2 — "Does Encore detect Web filtering?"
//!
//! The headline experiment: a world-scale deployment restricted (per the
//! Table 2 ethics staging) to favicon image tasks against facebook.com,
//! youtube.com and twitter.com, with the real-world censors of 2014
//! installed: YouTube blocked in Pakistan, Iran and China; Twitter and
//! Facebook in China and Iran.
//!
//! Expected shape:
//! * the binomial detector (p = 0.7, α = 0.05) flags exactly the seven
//!   ground-truth (domain, country) pairs — "confirms well-known
//!   censorship of youtube.com in Pakistan, Iran, and China, and of
//!   twitter.com and facebook.com in China and Iran";
//! * no false detections elsewhere despite realistic transient failures;
//! * measurement volume concentrated in populous countries (paper: CN,
//!   IN, GB, BR ≥ 1,000; EG, KR, IR, PK, TR, SA ≥ 100).

use bench::fixtures::RunArgs;
use bench::fixtures::{deploy_us, favicon_tasks, install_image_targets};
use bench::print_table;
use censor::registry::{ground_truth, install_world_censors, SAFE_TARGETS};
use encore::coordination::SchedulingStrategy;
use encore::delivery::OriginSite;
use encore::targets::EthicsStage;
use encore::tasks::MeasurementTask;
use encore::{DetectorConfig, FilteringDetector, GeoDb};
use netsim::geo::World;
use netsim::network::Network;
use population::{run_deployment, Audience, DeploymentConfig};
use serde::Serialize;
use sim_core::{SimDuration, SimRng};
use std::collections::BTreeMap;

#[derive(Serialize)]
struct DetectionResult {
    measurements: usize,
    distinct_ips: usize,
    countries_observed: usize,
    detections: Vec<(String, String, u64, u64, f64)>,
    ground_truth_hits: usize,
    ground_truth_total: usize,
    false_detections: usize,
}

fn main() {
    let args = RunArgs::parse();
    let world = World::with_long_tail(170);
    let mut net = Network::new(world.clone());

    // The three measurement targets (favicon-serving social sites).
    install_image_targets(&mut net, &SAFE_TARGETS);
    // Install the 2014 censors (after DNS is populated, so the GFW can
    // resolve its IP blacklist).
    install_world_censors(&mut net);

    // The ethics-staged task pool: favicons on the safe trio only.
    let tasks: Vec<MeasurementTask> = favicon_tasks(&SAFE_TARGETS);
    assert!(tasks
        .iter()
        .all(|t| EthicsStage::FaviconsFewSites.permits(t)));

    // "At least 17 volunteers have deployed Encore on their sites" — a
    // mix of small and mid-size origins.
    let mut origins = Vec::new();
    for i in 0..17 {
        let mut o = OriginSite::academic(format!("volunteer-{i}.example"))
            .with_popularity(if i < 3 { 8.0 } else { 1.5 });
        if i % 4 != 0 {
            // "3/4 of measurements come from sites that elect to strip
            // the Referer header".
            o = o.with_referer_stripping();
        }
        origins.push(o);
    }

    let mut sys = deploy_us(
        &mut net,
        tasks,
        SchedulingStrategy::CoordinatedBursts {
            window: SimDuration::from_secs(60),
        },
        origins,
    );

    let mut rng = SimRng::new(args.seed);
    let audience = Audience::world(&world);
    // Seven months in the paper; the default here is a scaled run that
    // still yields tens of thousands of measurements. `--days` /
    // `ENCORE_DAYS`
    // overrides.
    let days: u64 = args.days(60);
    let config = DeploymentConfig {
        duration: SimDuration::from_days(days),
        visits_per_day_per_weight: 35.0,
        ..DeploymentConfig::default()
    };
    let log = run_deployment(&mut net, &mut sys, &audience, &config, &mut rng);

    let geo = GeoDb::from_allocator(&net.allocator);
    let detector = FilteringDetector::new(DetectorConfig {
        min_measurements: 8,
        ..DetectorConfig::default()
    });
    let detections = sys.detect(&geo, &detector);

    // Score against ground truth.
    let truth = ground_truth();
    let hit = |d: &encore::Detection| {
        truth
            .iter()
            .any(|t| t.domain == d.domain && t.country == d.country)
    };
    let hits = detections.iter().filter(|d| hit(d)).count();
    let false_detections = detections.len() - hits;
    let truth_found = truth
        .iter()
        .filter(|t| {
            detections
                .iter()
                .any(|d| d.domain == t.domain && d.country == t.country)
        })
        .count();

    // Country measurement volume.
    let mut per_country: BTreeMap<String, usize> = BTreeMap::new();
    for rec in sys.collection.records() {
        if rec.submission.phase == encore::SubmissionPhase::Result {
            if let Some(c) = geo.lookup(rec.client_ip) {
                *per_country.entry(c.to_string()).or_default() += 1;
            }
        }
    }

    println!("=== §7.2 detection: world deployment over {days} days ===");
    println!(
        "visits: {} | submissions: {} | distinct IPs: {} | countries: {}",
        log.len(),
        sys.collection.len(),
        sys.collection.distinct_ips(),
        per_country.len()
    );
    println!("(paper: 141,626 measurements, 88,260 IPs, 170 countries over 7 months)\n");

    let mut vol: Vec<_> = per_country.iter().collect();
    vol.sort_by(|a, b| b.1.cmp(a.1));
    print_table(
        &["country", "result measurements"],
        &vol.iter()
            .take(12)
            .map(|(c, n)| vec![c.to_string(), n.to_string()])
            .collect::<Vec<_>>(),
    );

    println!("\ndetections (binomial test, p=0.7, alpha=0.05):");
    let rows: Vec<Vec<String>> = detections
        .iter()
        .map(|d| {
            vec![
                d.domain.clone(),
                d.country.to_string(),
                d.n.to_string(),
                d.x.to_string(),
                format!("{:.2e}", d.p_value),
                if hit(d) {
                    "ground truth".into()
                } else {
                    "FALSE".into()
                },
            ]
        })
        .collect();
    print_table(
        &["domain", "country", "n", "successes", "p-value", "verdict"],
        &rows,
    );

    println!();
    print_table(
        &["claim", "paper", "measured"],
        &[
            vec![
                "youtube filtered in PK, IR, CN".into(),
                "detected".into(),
                format!(
                    "{}/3",
                    truth
                        .iter()
                        .filter(|t| t.domain == "youtube.com")
                        .filter(|t| detections
                            .iter()
                            .any(|d| d.domain == t.domain && d.country == t.country))
                        .count()
                ),
            ],
            vec![
                "twitter+facebook filtered in CN, IR".into(),
                "detected".into(),
                format!(
                    "{}/4",
                    truth
                        .iter()
                        .filter(|t| t.domain != "youtube.com")
                        .filter(|t| detections
                            .iter()
                            .any(|d| d.domain == t.domain && d.country == t.country))
                        .count()
                ),
            ],
            vec![
                "false detections".into(),
                "0".into(),
                false_detections.to_string(),
            ],
        ],
    );

    args.write_results(
        "detection",
        &DetectionResult {
            measurements: sys.collection.len(),
            distinct_ips: sys.collection.distinct_ips(),
            countries_observed: per_country.len(),
            detections: detections
                .iter()
                .map(|d| (d.domain.clone(), d.country.to_string(), d.n, d.x, d.p_value))
                .collect(),
            ground_truth_hits: truth_found,
            ground_truth_total: truth.len(),
            false_detections,
        },
    );
}
