//! Quality ablations: how the design parameters DESIGN.md calls out move
//! the results. Four sweeps:
//!
//! 1. **Image-size cap** (Figure 4's 1 KB vs 5 KB trade-off): measurable
//!    domains vs per-task byte overhead.
//! 2. **Detector null prior p** (§7.2 uses 0.7): false positives vs
//!    sensitivity to throttling-style partial filtering.
//! 3. **Iframe cache threshold** (Figure 7's 50 ms line): control
//!    success rate vs filtered-page false-success rate.
//! 4. **GeoIP error rate**: detection recall as geolocation degrades.

use bench::fixtures::RunArgs;
use bench::{print_table, PaperWorld};
use browser::{BrowserClient, Engine};
use censor::testbed::{FilterVariety, Testbed};
use encore::pipeline::GenerationConfig;
use encore::tasks::{
    execute_task, MeasurementId, MeasurementTask, TaskOutcome, TaskSpec, TaskType,
};
use encore::{DetectorConfig, FilteringDetector, GeoDb};
use netsim::geo::{country, IspClass, World};
use netsim::network::Network;
use serde::Serialize;
use sim_core::{OneSidedBinomialTest, SimDuration, SimRng, SimTime};
use websim::generator::WebConfig;

#[derive(Serialize, Default)]
struct Ablations {
    image_cap: Vec<(u64, usize, f64)>,
    detector_p: Vec<(f64, f64, f64)>,
    iframe_threshold: Vec<(u64, f64, f64)>,
    geo_error: Vec<(f64, usize)>,
}

/// Sweep 1: the image-size cap.
fn sweep_image_cap(results: &mut Ablations, seed: u64) {
    println!("--- ablation 1: image-size cap (Figure 4 trade-off) ---");
    let mut pw = PaperWorld::build(&WebConfig::default(), seed);
    let hars = pw.fetch_corpus_hars();
    let mut rows = Vec::new();
    for cap in [500u64, 1_000, 2_000, 5_000, 20_000] {
        let tasks = pw.generate_tasks(
            &hars,
            GenerationConfig {
                max_image_bytes: cap,
                allow_iframe_tasks: false,
                allow_script_tasks: false,
                ..GenerationConfig::default()
            },
        );
        // Domains measurable via at least one image task.
        let mut domains: Vec<String> = tasks
            .iter()
            .filter(|t| t.spec.task_type() == TaskType::Image)
            .filter_map(|t| t.spec.target_domain())
            .collect();
        domains.sort();
        domains.dedup();
        let coverage = domains.len();
        // Average byte cost per image task.
        let avg_bytes: f64 = {
            let bytes: Vec<f64> = tasks
                .iter()
                .filter(|t| t.spec.task_type() == TaskType::Image)
                .filter_map(|t| {
                    hars.iter()
                        .flat_map(|h| h.entries.iter())
                        .find(|e| e.url == t.spec.target_url())
                        .map(|e| e.body_bytes as f64)
                })
                .collect();
            if bytes.is_empty() {
                0.0
            } else {
                bytes.iter().sum::<f64>() / bytes.len() as f64
            }
        };
        rows.push(vec![
            format!("{cap}"),
            coverage.to_string(),
            format!("{avg_bytes:.0}"),
        ]);
        results.image_cap.push((cap, coverage, avg_bytes));
    }
    print_table(
        &["cap (bytes)", "measurable domains", "avg task bytes"],
        &rows,
    );
    println!();
}

/// Sweep 2: the binomial null prior p.
fn sweep_detector_p(results: &mut Ablations) {
    println!("--- ablation 2: detector success prior p (paper: 0.7) ---");
    // Synthetic cells: an unfiltered region with a 5% transient failure
    // rate (India-like) and a throttled region losing 45% of exchanges.
    let n: u64 = 200;
    let honest_x = (n as f64 * 0.95) as u64;
    let throttled_x = (n as f64 * 0.55) as u64;
    let mut rows = Vec::new();
    for p in [0.5, 0.6, 0.7, 0.8, 0.9, 0.95] {
        let test = OneSidedBinomialTest::new(p, 0.05);
        let fp = if test.rejects(n, honest_x) { 1.0 } else { 0.0 };
        let catches = if test.rejects(n, throttled_x) {
            1.0
        } else {
            0.0
        };
        rows.push(vec![
            format!("{p:.2}"),
            if fp > 0.0 { "FALSE POSITIVE" } else { "ok" }.to_string(),
            if catches > 0.0 { "detected" } else { "missed" }.to_string(),
        ]);
        results.detector_p.push((p, fp, catches));
    }
    print_table(
        &["p", "honest region (95% ok)", "throttled region (55% ok)"],
        &rows,
    );
    println!("paper's p=0.7 sits in the window that avoids the false positive");
    println!("while still catching heavy throttling.\n");
}

/// Sweep 3: the iframe cache-timing threshold.
///
/// The adversarial case is *single-URL* filtering (§4.3.2: censors that
/// block one blog post "but leave the remainder of a domain intact,
/// including resources embedded by the filtered pages"): the page is
/// blocked but the probe image is reachable, so a too-loose threshold
/// lets the uncached probe fetch pass as "cached" — a false success.
fn sweep_iframe_threshold(results: &mut Ablations, seed: u64) {
    println!("--- ablation 3: iframe cache threshold (Figure 7's 50 ms) ---");
    use censor::national::NationalCensor;
    use censor::policy::{BlockTarget, CensorPolicy, Mechanism};

    let mut rows = Vec::new();
    for thr_ms in [5u64, 20, 50, 150, 500, 2_000] {
        let mut control_ok = 0;
        let mut filtered_false_ok = 0;
        let trials = 40;
        for i in 0..trials {
            let run = |filtered: bool, i: u64| {
                let mut net = Network::new(World::builtin());
                let tb = Testbed::install(&mut net);
                if filtered {
                    // Block only the page URL; the embedded image stays
                    // reachable.
                    let policy = CensorPolicy::named("single-url").with_rule(
                        BlockTarget::UrlExact(tb.page_url(FilterVariety::Control)),
                        Mechanism::HttpReset,
                    );
                    net.add_middlebox(Box::new(NationalCensor::new(country("DE"), policy)));
                }
                let root = SimRng::new(seed ^ (i << 3) ^ u64::from(filtered));
                let mut client = BrowserClient::new(
                    &mut net,
                    country("DE"),
                    IspClass::Residential,
                    Engine::Chrome,
                    &root,
                );
                let task = MeasurementTask {
                    id: MeasurementId(0),
                    spec: TaskSpec::Iframe {
                        page_url: tb.page_url(FilterVariety::Control),
                        probe_image_url: format!(
                            "http://{}/embedded.png",
                            FilterVariety::Control.hostname()
                        ),
                        threshold: SimDuration::from_millis(thr_ms),
                    },
                };
                execute_task(&task, &mut client, &mut net, SimTime::ZERO).outcome
            };
            if run(false, i) == TaskOutcome::Success {
                control_ok += 1;
            }
            if run(true, i) == TaskOutcome::Success {
                filtered_false_ok += 1;
            }
        }
        let ok_rate = control_ok as f64 / trials as f64;
        let false_rate = filtered_false_ok as f64 / trials as f64;
        rows.push(vec![
            format!("{thr_ms}"),
            format!("{:.0}%", 100.0 * ok_rate),
            format!("{:.0}%", 100.0 * false_rate),
        ]);
        results.iframe_threshold.push((thr_ms, ok_rate, false_rate));
    }
    print_table(
        &[
            "threshold (ms)",
            "control success",
            "page-blocked false-success",
        ],
        &rows,
    );
    println!("too tight → control loads misread as failures; too loose → the");
    println!("*uncached* probe fetch of a page-blocked site passes as cached.");
    println!("50 ms works because Figure 7's cached/uncached gap straddles it.\n");
}

/// Sweep 4: GeoIP error rate vs detection recall.
fn sweep_geo_error(results: &mut Ablations) {
    println!("--- ablation 4: GeoIP error rate vs detection recall ---");
    use encore::collection::{StoredMeasurement, Submission, SubmissionPhase};
    use netsim::ip::IpAllocator;

    let mut rows = Vec::new();
    for err in [0.0, 0.05, 0.1, 0.2, 0.4, 0.6] {
        let mut alloc = IpAllocator::new();
        let mut records = Vec::new();
        let mut id = 0u64;
        let add = |alloc: &mut IpAllocator,
                   records: &mut Vec<StoredMeasurement>,
                   cc: &str,
                   ok: bool,
                   id: &mut u64| {
            *id += 1;
            records.push(StoredMeasurement {
                submission: Submission {
                    measurement_id: MeasurementId(*id),
                    phase: SubmissionPhase::Result,
                    outcome: Some(if ok {
                        TaskOutcome::Success
                    } else {
                        TaskOutcome::Failure
                    }),
                    elapsed_ms: 100,
                    task_type: TaskType::Image,
                    target_url: "http://youtube.com/favicon.ico".into(),
                    user_agent: "Chrome".into(),
                    congested: false,
                },
                client_ip: alloc.allocate(country(cc)),
                referer: None,
                received_at: SimTime::ZERO,
            });
        };
        // PK fully blocked; three healthy regions.
        for _ in 0..60 {
            add(&mut alloc, &mut records, "PK", false, &mut id);
        }
        for cc in ["US", "DE", "BR"] {
            for _ in 0..60 {
                add(&mut alloc, &mut records, cc, true, &mut id);
            }
        }
        let geo = GeoDb::from_allocator(&alloc).with_error_rate(err);
        let detections = FilteringDetector::new(DetectorConfig {
            max_per_ip: None,
            ..DetectorConfig::default()
        })
        .detect(&records, &geo);
        let pk_found = detections
            .iter()
            .filter(|d| d.country == country("PK"))
            .count();
        rows.push(vec![
            format!("{:.0}%", err * 100.0),
            detections.len().to_string(),
            if pk_found > 0 { "yes" } else { "NO" }.to_string(),
        ]);
        results.geo_error.push((err, detections.len()));
    }
    print_table(&["geo error", "total detections", "PK block found"], &rows);
    println!("moderate geolocation error dilutes but does not destroy detection;");
    println!("extreme error smears failures across regions and loses the signal.\n");
}

fn main() {
    let args = RunArgs::parse();
    let mut results = Ablations::default();
    sweep_image_cap(&mut results, args.seed);
    sweep_detector_p(&mut results);
    sweep_iframe_threshold(&mut results, args.seed);
    sweep_geo_error(&mut results);
    args.write_results("ablations", &results);
}
