//! Shard worker process for the bench fixture worlds.
//!
//! Spawned by `population::transport::ProcessTransport`: reads a
//! broadcast [`bench::specs::BenchWorldSpec`] frame and a job frame on
//! stdin, rebuilds its shard's world, runs it, and streams the outcome
//! back over stdout in bounded frame chunks under the credit window.
//! Exit code 0 on success; on failure an ERROR frame plus exit code 1
//! (never a bare panic across the pipe).

use bench::specs::BenchWorldSpec;
use population::transport::worker_main;

fn main() {
    std::process::exit(worker_main::<BenchWorldSpec>());
}
