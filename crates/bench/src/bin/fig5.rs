//! Figure 5 — "Distribution of page sizes, computed as the sum of sizes
//! of all objects loaded by a page."
//!
//! Paper claims: sizes "distributed relatively evenly between 0–2 MB with
//! a very long tail"; "over half of pages load at least half a megabyte
//! of objects". This is the network overhead a hidden-iframe task would
//! incur, motivating the prototype's 100 KB page cap.

use bench::fixtures::RunArgs;
use bench::{print_table, PaperWorld};
use serde::Serialize;
use sim_core::Cdf;
use websim::generator::WebConfig;

#[derive(Serialize)]
struct Fig5 {
    pages: usize,
    median_kb: f64,
    frac_over_500kb: f64,
    frac_under_100kb: f64,
    p95_kb: f64,
    cdf_kb: Vec<(f64, f64)>,
}

fn main() {
    let args = RunArgs::parse();
    let mut pw = PaperWorld::build(&WebConfig::default(), args.seed);
    let hars = pw.fetch_corpus_hars();

    let sizes_kb: Vec<f64> = hars
        .iter()
        .filter(|h| h.page_ok)
        .map(|h| h.total_bytes() as f64 / 1_000.0)
        .collect();
    let cdf = Cdf::new(sizes_kb);

    // The paper's x-axis: 0–2000 KB.
    let xs: Vec<f64> = (0..=20).map(|i| i as f64 * 100.0).collect();
    let result = Fig5 {
        pages: cdf.len(),
        median_kb: cdf.median().unwrap_or(0.0),
        frac_over_500kb: 1.0 - cdf.fraction_at_most(500.0),
        frac_under_100kb: cdf.fraction_at_most(100.0),
        p95_kb: cdf.quantile(0.95).unwrap_or(0.0),
        cdf_kb: cdf.series_at(&xs),
    };

    println!("=== Figure 5: total page size (CDF) ===");
    println!("pages analysed: {}", result.pages);
    println!();
    print_table(
        &["page size (KB)", "F(x)"],
        &result
            .cdf_kb
            .iter()
            .map(|(x, f)| vec![format!("{x:.0}"), format!("{f:.3}")])
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &["claim", "paper", "measured"],
        &[
            vec![
                "pages loading >=0.5 MB".into(),
                ">50%".into(),
                format!("{:.1}%", 100.0 * result.frac_over_500kb),
            ],
            vec![
                "median page size".into(),
                "~0.5-1 MB".into(),
                format!("{:.0} KB", result.median_kb),
            ],
            vec![
                "pages <=100 KB (iframe-eligible)".into(),
                "small minority".into(),
                format!("{:.1}%", 100.0 * result.frac_under_100kb),
            ],
            vec![
                "p95 (long tail)".into(),
                ">2 MB".into(),
                format!("{:.0} KB", result.p95_kb),
            ],
        ],
    );
    args.write_results("fig5", &result);
}
