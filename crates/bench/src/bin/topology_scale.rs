//! Topology scale — what routing over the scale-free AS graph costs per
//! visit, and proof the routed warm path stays inside the flat-path
//! perf contract.
//!
//! The PR 6 data-oriented hot path established the flat-network
//! baseline (19 777 ns/visit on the reference container, recorded in
//! `hotpath.rs`). Attaching an AS topology moves every fetch through
//! route lookup + transit accounting, so this binary measures the same
//! warm-session batch driver in three network shapes —
//!
//! * `flat`    — the timeline fixture's world, no topology (the PR 6
//!   configuration, re-measured on this machine as the live baseline);
//! * `routed`  — the congestion fixture's world: same servers, same
//!   audience, scale-free AS topology with the TR↔US hotspot marked,
//!   every link at rest;
//! * `brownout` — the routed world with every hotspot link's background
//!   load above the shed threshold, the worst data-plane case (every
//!   transit decision consumes the RNG and may shed).
//!
//! Two gates, both on the warm (`repeat_visitor_rate = 0.95`) mode:
//!
//! 1. **Relative**: routed-at-rest ns/visit ≤ 1.5× the flat ns/visit
//!    *measured in the same process* — machine-independent, the number
//!    CI enforces.
//! 2. **Absolute**: routed-at-rest ns/visit ≤ 1.5× the PR 6 reference
//!    baseline (19 777 ns) — a loose sanity ceiling that catches
//!    pathological regressions even if the flat path regressed in step.
//!
//! Determinism rides along: every configuration runs `--reps` times and
//! must reproduce byte-identically. Results go to
//! `results/topology_scale.json`.
//!
//! Overrides: `--visits`/`ENCORE_VISITS` (default 60 000),
//! `--topology`/`ENCORE_TOPOLOGY` (AS-graph seed, default the congested
//! fixture's), `--seed`, `--reps`.

use bench::congested_fixture;
use bench::fixtures::RunArgs;
use bench::print_table;
use netsim::geo::{country, World};
use netsim::TopologySpec;
use population::shard::ShardContext;
use population::{run_visit_batch, Audience, BatchConfig};
use serde::Serialize;
use sim_core::{SimDuration, SimRng};
use std::time::Instant;

/// PR 6 flat-path ns/visit (mixed mode) on the reference container —
/// the same constant `hotpath.rs` trends against.
const FLAT_NS_PER_VISIT: f64 = 19_777.0;
/// Routed warm visits must stay within this factor of the flat path.
const MAX_ROUTED_RATIO: f64 = 1.5;

#[derive(Serialize)]
struct ShapePoint {
    shape: &'static str,
    visits_per_sec: f64,
    ns_per_visit: f64,
    ratio_vs_flat: f64,
}

#[derive(Serialize)]
struct TopologyScaleResult {
    visits: u64,
    topology_seed: u64,
    baseline_pr6_flat_ns_per_visit: f64,
    max_routed_ratio: f64,
    shapes: Vec<ShapePoint>,
    routed_ratio_vs_flat: f64,
    routed_ns_per_visit: f64,
    relative_gate_ok: bool,
    absolute_gate_ok: bool,
    reproducible_ok: bool,
}

/// Warm-session batch: almost every visit reuses a pooled client, so
/// the timed region is the PR 6 zero-allocation warm path plus (for the
/// routed shapes) route lookup and transit accounting.
fn warm_batch(visits: u64) -> BatchConfig {
    BatchConfig {
        visits,
        mean_gap: SimDuration::from_millis(1_200),
        repeat_visitor_rate: 0.95,
        ..BatchConfig::default()
    }
}

/// Build the world for one shape and run the serial warm batch once.
/// World construction (and topology generation) stays outside the
/// timed region — route *tables* are precomputed state, their build
/// cost is `netsim::topology`'s concern, not the per-visit pipeline's.
fn run_shape(
    shape: &'static str,
    topology_seed: u64,
    visits: u64,
    seed: u64,
    audience: &Audience,
) -> (population::BatchReport, f64) {
    let ctx = ShardContext {
        index: 0,
        shards: 1,
    };
    let (mut net, mut sys) = match shape {
        "flat" => bench::world_fixture::build(ctx),
        _ => {
            let scenario = bench::world_fixture::scenario().with_topology(
                TopologySpec::with_seed(topology_seed)
                    .with_hotspot_between(congested_fixture::censor_country(), country("US")),
            );
            bench::world_fixture::deploy(scenario.build_shard(ctx.index, ctx.shards))
        }
    };
    if shape == "brownout" {
        let topo = net.topology_mut().expect("routed world has a topology");
        topo.set_hotspot_background(congested_fixture::BROWNOUT_LEVEL);
    }
    let config = warm_batch(visits);
    let mut rng = SimRng::new(seed);
    let t0 = Instant::now();
    let report = run_visit_batch(&mut net, &mut sys, audience, &config, &mut rng);
    (report, t0.elapsed().as_secs_f64())
}

fn main() {
    let args = RunArgs::parse();
    let visits = args.visits(60_000);
    let reps = args.reps(3);
    let seed = args.seed;
    let topology_seed = args
        .topology(Some(congested_fixture::TOPOLOGY_SEED))
        .expect("default is Some");
    let audience = Audience::world(&World::builtin());

    let mut points = Vec::new();
    let mut rows = Vec::new();
    let mut reproducible_ok = true;
    let mut flat_ns = f64::NAN;
    for shape in ["flat", "routed", "brownout"] {
        let (report, mut secs) = run_shape(shape, topology_seed, visits, seed, &audience);
        for _ in 1..reps {
            let (rep_n, secs_n) = run_shape(shape, topology_seed, visits, seed, &audience);
            if rep_n != report {
                eprintln!("DETERMINISM VIOLATION: fixed-seed {shape} run not reproducible");
                reproducible_ok = false;
            }
            secs = secs.min(secs_n);
        }
        let vps = report.visits as f64 / secs;
        let ns = secs * 1e9 / report.visits as f64;
        if shape == "flat" {
            flat_ns = ns;
        }
        let ratio = ns / flat_ns;
        rows.push(vec![
            shape.to_string(),
            format!("{vps:.0}"),
            format!("{ns:.0}"),
            format!("{ratio:.2}x"),
        ]);
        points.push(ShapePoint {
            shape,
            visits_per_sec: vps,
            ns_per_visit: ns,
            ratio_vs_flat: ratio,
        });
    }

    let routed = &points[1];
    let routed_ratio = routed.ratio_vs_flat;
    let routed_ns = routed.ns_per_visit;
    let relative_gate_ok = routed_ratio <= MAX_ROUTED_RATIO;
    let absolute_gate_ok = routed_ns <= MAX_ROUTED_RATIO * FLAT_NS_PER_VISIT;

    println!(
        "Topology scale — {visits} warm visits, topology seed {topology_seed:#x}, \
         seed {seed:#x}, min of {reps} rep(s); PR6 flat baseline \
         {FLAT_NS_PER_VISIT:.0} ns/visit"
    );
    print_table(&["shape", "visits/s", "ns/visit", "vs flat"], &rows);
    println!(
        "routed warm visit: {routed_ns:.0} ns = {routed_ratio:.2}x flat \
         (gate: <= {MAX_ROUTED_RATIO}x)"
    );

    args.write_results(
        "topology_scale",
        &TopologyScaleResult {
            visits,
            topology_seed,
            baseline_pr6_flat_ns_per_visit: FLAT_NS_PER_VISIT,
            max_routed_ratio: MAX_ROUTED_RATIO,
            shapes: points,
            routed_ratio_vs_flat: routed_ratio,
            routed_ns_per_visit: routed_ns,
            relative_gate_ok,
            absolute_gate_ok,
            reproducible_ok,
        },
    );

    if !relative_gate_ok {
        eprintln!(
            "PERF REGRESSION: routed warm visit {routed_ns:.0} ns is {routed_ratio:.2}x the \
             flat path (limit {MAX_ROUTED_RATIO}x) — route lookup or transit accounting \
             left the warm path"
        );
    }
    if !absolute_gate_ok {
        eprintln!(
            "PERF REGRESSION: routed warm visit {routed_ns:.0} ns exceeds {MAX_ROUTED_RATIO}x \
             the PR6 reference baseline ({FLAT_NS_PER_VISIT:.0} ns)"
        );
    }
    if !(relative_gate_ok && absolute_gate_ok && reproducible_ok) {
        std::process::exit(1);
    }
}
