//! §6.2 — "Who performs Encore measurements?"
//!
//! Reproduces the one-month Google-Analytics study of a professor's
//! homepage (February 2014): 1,171 visits, mostly US but with >10 users
//! from 10 other countries; 16% of visitors in countries with well-known
//! filtering policies (IN, CN, PK, GB, KR); 999 attempted a measurement
//! task (the remainder being the campus security scanner); 45% dwelled
//! >10 s and 35% >60 s.

use bench::fixtures::RunArgs;
use bench::fixtures::{add_image_server, deploy_us, favicon_tasks};
use bench::print_table;
use encore::coordination::SchedulingStrategy;
use encore::delivery::OriginSite;
use netsim::geo::{country, World};
use netsim::network::Network;
use population::{run_deployment, Analytics, Audience, DeploymentConfig};
use serde::Serialize;
use sim_core::{SimDuration, SimRng};

#[derive(Serialize)]
struct Demographics {
    total_visits: usize,
    attempted_measurement: usize,
    crawler_visits: usize,
    countries_over_10_visits: usize,
    frac_from_filtering_countries: f64,
    frac_over_10s: f64,
    frac_over_60s: f64,
    top_countries: Vec<(String, usize)>,
}

fn main() {
    let args = RunArgs::parse();
    let mut net = Network::new(World::builtin());
    add_image_server(&mut net, "target.example", 400);
    let origin = OriginSite::academic("professor.university.edu");
    let mut sys = deploy_us(
        &mut net,
        favicon_tasks(&["target.example"]),
        SchedulingStrategy::RoundRobin,
        vec![origin],
    );

    let mut rng = SimRng::new(args.seed);
    // "The site saw 1,171 visits during course of the month" → ~42/day.
    let config = DeploymentConfig {
        duration: SimDuration::from_days(28),
        visits_per_day_per_weight: 42.0,
        ..DeploymentConfig::default()
    };
    let log = run_deployment(&mut net, &mut sys, &Audience::academic(), &config, &mut rng);
    let analytics = Analytics::from_visits(&log);

    let filtering = [
        country("IN"),
        country("CN"),
        country("PK"),
        country("GB"),
        country("KR"),
    ];
    let result = Demographics {
        total_visits: analytics.total_visits,
        attempted_measurement: analytics.attempted_measurement,
        crawler_visits: analytics.crawler_visits,
        countries_over_10_visits: analytics.countries_with_more_than(10),
        frac_from_filtering_countries: analytics.fraction_from(&filtering),
        frac_over_10s: analytics.frac_over_10s,
        frac_over_60s: analytics.frac_over_60s,
        top_countries: analytics
            .by_country
            .iter()
            .take(12)
            .map(|(c, n)| (c.to_string(), *n))
            .collect(),
    };

    println!("=== §6.2 demographics: one month of an academic homepage ===\n");
    print_table(
        &["country", "visits"],
        &result
            .top_countries
            .iter()
            .map(|(c, n)| vec![c.clone(), n.to_string()])
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &["claim", "paper", "measured"],
        &[
            vec![
                "monthly visits".into(),
                "1,171".into(),
                result.total_visits.to_string(),
            ],
            vec![
                "visits attempting a task".into(),
                "999".into(),
                result.attempted_measurement.to_string(),
            ],
            vec![
                "countries with >10 visits".into(),
                ">10".into(),
                result.countries_over_10_visits.to_string(),
            ],
            vec![
                "share from filtering countries".into(),
                "16%".into(),
                format!("{:.1}%", 100.0 * result.frac_from_filtering_countries),
            ],
            vec![
                "dwell >10s".into(),
                "45%".into(),
                format!("{:.1}%", 100.0 * result.frac_over_10s),
            ],
            vec![
                "dwell >60s".into(),
                "35%".into(),
                format!("{:.1}%", 100.0 * result.frac_over_60s),
            ],
        ],
    );
    args.write_results("demographics", &result);
}
