//! Figure 6 — "Distribution of the number of cacheable images loaded by
//! pages that require at most 100 KB of traffic to load, pages that incur
//! at most 500 KB of traffic, and all pages."
//!
//! Paper claims: "Over 70% of all pages cache at least one image and half
//! of all pages cache five or more images; these numbers drop
//! considerably when excluding pages greater than 100 KB" (only ~30% of
//! ≤100 KB pages embed a cacheable image). Combined with Figure 5 this
//! yields §6.1's conclusion: Encore can measure >50% of *domains* but
//! under 10% of individual *URLs*.

use bench::fixtures::RunArgs;
use bench::{print_table, PaperWorld};
use encore::pipeline::TaskGenerator;
use serde::Serialize;
use sim_core::Cdf;
use websim::generator::WebConfig;

#[derive(Serialize)]
struct Fig6 {
    pages: usize,
    frac_all_pages_with_cacheable: f64,
    frac_all_pages_with_five_plus: f64,
    frac_small_pages_with_cacheable: f64,
    frac_urls_iframe_measurable: f64,
    cdf_all: Vec<(f64, f64)>,
    cdf_le_500kb: Vec<(f64, f64)>,
    cdf_le_100kb: Vec<(f64, f64)>,
}

fn main() {
    let args = RunArgs::parse();
    let mut pw = PaperWorld::build(&WebConfig::default(), args.seed);
    let hars = pw.fetch_corpus_hars();
    let generator = TaskGenerator::default();

    let mut all = Vec::new();
    let mut le500 = Vec::new();
    let mut le100 = Vec::new();
    for har in hars.iter().filter(|h| h.page_ok) {
        let analysis = generator.analyze(har);
        let cacheable = analysis.cacheable_images as f64;
        all.push(cacheable);
        if analysis.total_bytes <= 500_000 {
            le500.push(cacheable);
        }
        if analysis.total_bytes <= 100_000 {
            le100.push(cacheable);
        }
    }

    let cdf_all = Cdf::new(all);
    let cdf_500 = Cdf::new(le500);
    let cdf_100 = Cdf::new(le100);

    // The paper's x-axis: 0–50 cacheable images per page.
    let xs: Vec<f64> = (0..=10).map(|i| i as f64 * 5.0).collect();

    let frac_all_any = 1.0 - cdf_all.fraction_at_most(0.0);
    let frac_small_any = 1.0 - cdf_100.fraction_at_most(0.0);
    // URLs measurable by the iframe task: ≤100 KB AND ≥1 cacheable image,
    // as a fraction of all URLs.
    let frac_measurable = if cdf_all.is_empty() {
        0.0
    } else {
        (cdf_100.len() as f64 * frac_small_any) / cdf_all.len() as f64
    };

    let result = Fig6 {
        pages: cdf_all.len(),
        frac_all_pages_with_cacheable: frac_all_any,
        frac_all_pages_with_five_plus: 1.0 - cdf_all.fraction_at_most(4.0),
        frac_small_pages_with_cacheable: frac_small_any,
        frac_urls_iframe_measurable: frac_measurable,
        cdf_all: cdf_all.series_at(&xs),
        cdf_le_500kb: cdf_500.series_at(&xs),
        cdf_le_100kb: cdf_100.series_at(&xs),
    };

    println!("=== Figure 6: cacheable images per page (CDF) ===");
    println!(
        "pages: {} total, {} <=500KB, {} <=100KB",
        cdf_all.len(),
        cdf_500.len(),
        cdf_100.len()
    );
    println!();
    let mut rows = Vec::new();
    for (i, &x) in xs.iter().enumerate() {
        rows.push(vec![
            format!("{x:.0}"),
            format!(
                "{:.3}",
                result.cdf_le_100kb.get(i).map(|p| p.1).unwrap_or(1.0)
            ),
            format!(
                "{:.3}",
                result.cdf_le_500kb.get(i).map(|p| p.1).unwrap_or(1.0)
            ),
            format!("{:.3}", result.cdf_all[i].1),
        ]);
    }
    print_table(
        &["cacheable imgs/page", "F(<=100KB)", "F(<=500KB)", "F(all)"],
        &rows,
    );
    println!();
    print_table(
        &["claim", "paper", "measured"],
        &[
            vec![
                "all pages with >=1 cacheable image".into(),
                "~70%".into(),
                format!("{:.1}%", 100.0 * result.frac_all_pages_with_cacheable),
            ],
            vec![
                "all pages with >=5 cacheable images".into(),
                "~50%".into(),
                format!("{:.1}%", 100.0 * result.frac_all_pages_with_five_plus),
            ],
            vec![
                "<=100KB pages with >=1 cacheable image".into(),
                "~30%".into(),
                format!("{:.1}%", 100.0 * result.frac_small_pages_with_cacheable),
            ],
            vec![
                "URLs measurable via iframe task".into(),
                "<10%".into(),
                format!("{:.1}%", 100.0 * result.frac_urls_iframe_measurable),
            ],
        ],
    );
    args.write_results("fig6", &result);
}
