//! `simcheck` — the generative differential fuzz gate.
//!
//! Draws a bounded budget of arbitrary generated worlds (arrival modes
//! × policy timelines × adaptive censors × housekeeping cadences) and
//! checks every one against the engine's claimed invariants: serial ==
//! 1-shard byte-identity, fixed-seed reproducibility, merge algebra,
//! detector verdict invariance across {1, 2, 4} shards, detector
//! soundness against each generated world's own ground truth, and
//! congestion soundness on routed worlds with transit brownouts
//! (censorship stays detectable, congestion never masquerades as it),
//! and corpus soundness on generative-web worlds (benign origin
//! outages on a measured corpus site never read as censorship).
//! See `crates/simcheck` for the generator and oracle definitions.
//!
//! Flags (on top of the shared `RunArgs` set):
//!
//! * `--cases N` / `ENCORE_SIMCHECK_CASES` — case budget (default 200).
//! * `--replay CLASS:SEED` — regenerate exactly one world from a
//!   regression-file line (e.g. `--replay detector:0x1b2c`) and re-run
//!   its oracles, instead of a budgeted sweep.
//! * `--require-transport` — fail the run if the transport-equivalence
//!   oracle checked zero cases (the `case_worker` binary was missing).
//!   The sweep otherwise degrades gracefully so local `cargo run`
//!   without the worker built still works; CI passes this flag so the
//!   process backend can never silently drop out of the gate.
//!
//! Writes `results/simcheck.json` and, on failure, the regression seed
//! file `results/simcheck-regressions.txt` (uploaded as a CI artifact),
//! then exits non-zero.

use bench::fixtures::RunArgs;
use simcheck::{run_budget, CaseClass, SimCheckConfig};

/// Parse `--cases`/`ENCORE_SIMCHECK_CASES` and `--replay` from the raw
/// argument list (RunArgs ignores flags it does not know).
fn extra_flags() -> (Option<usize>, Option<(CaseClass, u64)>, bool) {
    let mut cases = std::env::var("ENCORE_SIMCHECK_CASES")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut replay = None;
    let mut require_transport = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        // Never consume another flag as this flag's value (same guard
        // as RunArgs): `--cases --replay x:y` must not swallow --replay.
        let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>| match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().cloned().unwrap_or_default(),
            _ => {
                eprintln!("[{arg} given without a value, ignoring]");
                String::new()
            }
        };
        if arg == "--cases" {
            let v = value(&mut it);
            if !v.is_empty() {
                parse_cases(&v, &mut cases);
            }
        } else if let Some(v) = arg.strip_prefix("--cases=") {
            parse_cases(v, &mut cases);
        } else if arg == "--replay" {
            replay = parse_replay(&value(&mut it));
        } else if let Some(v) = arg.strip_prefix("--replay=") {
            replay = parse_replay(v);
        } else if arg == "--require-transport" {
            require_transport = true;
        }
    }
    (cases, replay, require_transport)
}

/// A supplied-but-unparseable `--cases` value is warned about, never
/// silently replaced (matching the RunArgs rule) — in particular it must
/// not clobber a valid `ENCORE_SIMCHECK_CASES` fallback.
fn parse_cases(raw: &str, cases: &mut Option<usize>) {
    match raw.parse() {
        Ok(v) => *cases = Some(v),
        Err(_) => eprintln!("[ignoring unparseable --cases value {raw:?}]"),
    }
}

fn parse_replay(spec: &str) -> Option<(CaseClass, u64)> {
    let (class, seed) = spec.split_once(':')?;
    let class = match class {
        "equivalence" => CaseClass::Equivalence,
        "detector" => CaseClass::Detector,
        "congestion" => CaseClass::Congestion,
        "corpus" => CaseClass::Corpus,
        _ => return None,
    };
    let seed = match seed.strip_prefix("0x").or_else(|| seed.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok()?,
        None => seed.parse().ok()?,
    };
    Some((class, seed))
}

fn main() {
    let args = RunArgs::parse();
    let (cases, replay, require_transport) = extra_flags();

    if let Some((class, seed)) = replay {
        println!("=== simcheck: replaying {class:?} case {seed:#x} ===");
        let violations = simcheck::replay(class, seed);
        if violations.is_empty() {
            println!("case upholds all invariants");
            return;
        }
        for v in &violations {
            println!("VIOLATION [{}]: {}", v.oracle, v.detail);
        }
        std::process::exit(1);
    }

    let config = SimCheckConfig {
        cases: cases.unwrap_or(200),
        root_seed: args.seed,
        regression_path: Some(args.out_dir().join("simcheck-regressions.txt")),
        ..SimCheckConfig::default()
    };
    println!(
        "=== simcheck: {} generated worlds (every {}th detector-class), root seed {:#x} ===",
        config.cases, config.detector_every, config.root_seed
    );
    let report = run_budget(&config);
    println!(
        "{} worlds checked ({} equivalence, {} detector, {} congestion, {} corpus; {} censored, \
         {} transport-differenced, {} streaming-differenced of which {} shed): {} violation(s)",
        report.cases_run,
        report.equivalence_cases,
        report.detector_cases,
        report.congestion_cases,
        report.corpus_cases,
        report.censored_cases,
        report.transport_cases,
        report.streaming_cases,
        report.streaming_drop_cases,
        report.violations.len()
    );
    args.write_results("simcheck", &report);
    if require_transport && report.transport_cases == 0 {
        eprintln!(
            "simcheck FAILED — --require-transport set but the transport oracle checked zero \
             cases (is the `case_worker` binary built next to this executable?)"
        );
        std::process::exit(1);
    }
    if !report.passed() {
        eprintln!(
            "simcheck FAILED — regression seeds in {:?}",
            args.out_dir().join("simcheck-regressions.txt")
        );
        std::process::exit(1);
    }
    println!("all invariants upheld over the generated scenario space");
}
