//! Transport scale — process-transport overhead vs the thread backend
//! at equal shard counts, on the longitudinal Turkey-timeline workload.
//!
//! `world_scale` gates how the sharded world engine scales with cores;
//! this binary gates what the **distributed** path costs on top: the
//! frame-protocol process transport must stay within a bounded overhead
//! of the in-process thread transport at the same shard count, while
//! reproducing it byte for byte and holding the coordinator's streaming
//! merge to O(1) resident outcomes.
//!
//! Checks (all gate the exit code):
//!
//! * **Byte identity** — at {2, top} shards the process backend's
//!   outcome, per-shard reports, collection store, and serialized GeoIP
//!   database equal the thread backend's exactly.
//! * **Overhead** — min-of-reps process wall time ≤ the overhead
//!   budget × min-of-reps thread wall time at the top shard count. The
//!   budget is **parallelism-aware**: with ≥ 2 hardware threads the
//!   worker-side encode and coordinator-side decode overlap shard
//!   compute, so the strict budget (default 1.25×) applies; on a
//!   single hardware thread every transport byte — spawn, encode,
//!   decode, fold — serializes behind the same compute the thread
//!   backend runs for free in shared memory, which no transport can
//!   overlap away, so the budget relaxes to a documented 2.5×. (CPU
//!   accounting on a 1-thread box: process wall ≈ coordinator CPU +
//!   worker CPU with near-zero idle — the gap is real codec work, not
//!   scheduling waste. See DESIGN.md "Distributed world".) Override
//!   either budget with `--min-speedup`/`ENCORE_MIN_SPEEDUP`.
//! * **Streaming memory** — the coordinator's peak resident outcome
//!   count stays ≤ 2 (the running fold plus the partial of the one
//!   shard being drained), independent of shard count: outcomes stream
//!   and merge incrementally, they are never all buffered. `VmHWM` from
//!   `/proc/self/status` is recorded informationally (it includes the
//!   thread-backend runs sharing this process).
//!
//! Output: a table plus `results/transport_scale.json`. Overrides via
//! `bench::fixtures::RunArgs`: `--days`/`ENCORE_DAYS` (default 12),
//! `--shards`/`ENCORE_SHARDS` (top shard count, default 8),
//! `--reps`/`ENCORE_REPS` (default 5), `--seed`/`ENCORE_SEED`,
//! `--min-speedup`/`ENCORE_MIN_SPEEDUP` (the overhead budget).

use bench::fixtures::RunArgs;
use bench::print_table;
use bench::specs::{BenchWorldSpec, SHARD_WORKER};
use population::transport::{ProcessTransport, ShardTransport, ThreadTransport, TransportStats};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct IdentityPoint {
    shards: usize,
    byte_identical: bool,
    peak_resident_outcomes: usize,
    data_frames: u64,
    streamed_payload_bytes: u64,
    largest_payload_bytes: u64,
    window: usize,
}

#[derive(Serialize)]
struct TransportScaleResult {
    days: u64,
    shards: usize,
    reps: usize,
    hardware_threads: usize,
    threads_secs: f64,
    process_secs: f64,
    overhead_ratio: f64,
    allowed_overhead: f64,
    identity: Vec<IdentityPoint>,
    vm_hwm_kb: Option<u64>,
    byte_identical_ok: bool,
    overhead_ok: bool,
    streaming_memory_ok: bool,
}

/// Peak resident set size of this process in kB, from
/// `/proc/self/status` (Linux only; `None` elsewhere). Informational —
/// it covers the whole coordinator process, thread-backend runs
/// included.
fn vm_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn main() {
    let args = RunArgs::parse();
    let days = args.days(12);
    let top = args.shards(8).max(1);
    let reps = args.reps(5);
    let seed = args.seed;
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    let spec = BenchWorldSpec::Timeline {
        days,
        rate: 150.0,
        streaming: false,
    };
    let process = match ProcessTransport::for_worker(SHARD_WORKER) {
        Ok(t) => t,
        Err(err) => {
            eprintln!("transport_scale: {err}");
            std::process::exit(1);
        }
    };

    // Byte identity + streaming-memory stats at a small and the top
    // shard count (deduplicated when --shards 2 or 1 collapses them).
    let mut identity_shards = vec![2.min(top), top];
    identity_shards.dedup();
    let mut identity = Vec::new();
    let mut byte_identical_ok = true;
    let mut streaming_memory_ok = true;
    for &shards in &identity_shards {
        let threads_run = ThreadTransport
            .run(&spec, shards, seed)
            .expect("thread transport cannot fail to spawn");
        let (process_run, stats): (_, TransportStats) = match process
            .run_with_stats(&spec, shards, seed)
        {
            Ok(pair) => pair,
            Err(err) => {
                eprintln!("transport_scale: process transport failed at {shards} shard(s): {err}");
                std::process::exit(1);
            }
        };
        // GeoDb carries no PartialEq; its serialized image is the
        // equality the goldens use anyway.
        let geo_equal = serde_json::to_string(&process_run.geo).expect("geo serializes")
            == serde_json::to_string(&threads_run.geo).expect("geo serializes");
        let byte_identical = process_run.outcome == threads_run.outcome
            && process_run.per_shard == threads_run.per_shard
            && process_run.collection == threads_run.collection
            && geo_equal;
        if !byte_identical {
            eprintln!(
                "TRANSPORT DIVERGENCE: process backend differs from threads at {shards} shard(s)"
            );
            byte_identical_ok = false;
        }
        if stats.peak_resident_outcomes > 2 {
            eprintln!(
                "STREAMING MEMORY REGRESSION: coordinator held {} outcomes resident at {shards} \
                 shard(s) (streaming merge promises ≤ 2)",
                stats.peak_resident_outcomes
            );
            streaming_memory_ok = false;
        }
        identity.push(IdentityPoint {
            shards,
            byte_identical,
            peak_resident_outcomes: stats.peak_resident_outcomes,
            data_frames: stats.data_frames,
            streamed_payload_bytes: stats.streamed_payload_bytes,
            largest_payload_bytes: stats.largest_payload_bytes,
            window: stats.window,
        });
    }

    // Overhead: min-of-reps wall time per backend at the top shard
    // count. Min (not mean) is the standard noise filter on shared
    // runners — overhead can only add time, so the fastest rep is the
    // cleanest estimate of each backend's true cost.
    let mut threads_secs = f64::INFINITY;
    let mut process_secs = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = ThreadTransport
            .run(&spec, top, seed)
            .expect("thread transport cannot fail to spawn");
        threads_secs = threads_secs.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        match process.run(&spec, top, seed) {
            Ok(_) => {}
            Err(err) => {
                eprintln!("transport_scale: process transport failed while timing: {err}");
                std::process::exit(1);
            }
        }
        process_secs = process_secs.min(t.elapsed().as_secs_f64());
    }
    let overhead_ratio = process_secs / threads_secs;
    // Parallelism-aware budget: strict when transport work can overlap
    // shard compute, relaxed when one hardware thread serializes all of
    // it (see the module docs).
    let allowed_overhead = args.min_speedup(if hardware >= 2 { 1.25 } else { 2.5 });
    let overhead_ok = overhead_ratio <= allowed_overhead;
    if !overhead_ok {
        eprintln!(
            "TRANSPORT OVERHEAD REGRESSION: process backend is {overhead_ratio:.2}x the thread \
             backend at {top} shard(s) (budget {allowed_overhead:.2}x)"
        );
    }

    let vm_hwm = vm_hwm_kb();
    println!(
        "Process vs thread transport — {days} simulated days, seed {seed:#x}, {top} shard(s), \
         best of {reps} rep(s), {hardware} hw thread(s)"
    );
    print_table(
        &["backend", "wall secs", "ratio"],
        &[
            vec![
                "threads".to_string(),
                format!("{threads_secs:.3}"),
                "1.00x".to_string(),
            ],
            vec![
                "process".to_string(),
                format!("{process_secs:.3}"),
                format!("{overhead_ratio:.2}x"),
            ],
        ],
    );
    println!();
    print_table(
        &[
            "shards",
            "byte-identical",
            "peak outcomes",
            "data frames",
            "streamed bytes",
        ],
        &identity
            .iter()
            .map(|p| {
                vec![
                    p.shards.to_string(),
                    if p.byte_identical { "yes" } else { "NO" }.to_string(),
                    p.peak_resident_outcomes.to_string(),
                    p.data_frames.to_string(),
                    p.streamed_payload_bytes.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    if let Some(kb) = vm_hwm {
        println!("\ncoordinator VmHWM: {kb} kB (informational)");
    }

    args.write_results(
        "transport_scale",
        &TransportScaleResult {
            days,
            shards: top,
            reps,
            hardware_threads: hardware,
            threads_secs,
            process_secs,
            overhead_ratio,
            allowed_overhead,
            identity,
            vm_hwm_kb: vm_hwm,
            byte_identical_ok,
            overhead_ok,
            streaming_memory_ok,
        },
    );

    if !(byte_identical_ok && overhead_ok && streaming_memory_ok) {
        std::process::exit(1);
    }
}
