//! World scale — visits/s of the **sharded world engine** vs shard
//! count, on the longitudinal Turkey-timeline workload.
//!
//! The `scale` binary gates the flat batch driver; this binary gates the
//! piece the ROADMAP's "production-scale, fast as the hardware allows"
//! north star was still missing: event-driven longitudinal scenarios
//! (policy timelines, rollups, maintenance — the full
//! `bench::world_fixture` recipe) executing across all cores via
//! `population::run_sharded_world`, with control events broadcast to
//! every shard and arrivals thinned 1/N.
//!
//! Determinism is re-checked while timing (a fast parallel engine that
//! changes the science is worthless):
//!
//! * the 1-shard sharded run must be **byte-identical** to the serial
//!   `WorldEngine::from_recipe` replay of the same recipe;
//! * detector verdicts — Turkey onset/lift localisation — must be
//!   invariant across every swept shard count;
//! * a repeated run at the top shard count must reproduce byte-for-byte.
//!
//! Output: a table of `shards → visits/s → speedup` plus
//! `results/world_scale.json`. Overrides (CLI flag or env, via
//! `bench::fixtures::RunArgs`): `--days`/`ENCORE_DAYS` (simulated days,
//! default 30), `--shards`/`ENCORE_SHARDS` (highest shard count in the
//! sweep, default 8), `--seed`/`ENCORE_SEED`,
//! `--min-speedup`/`ENCORE_MIN_SPEEDUP` (throughput gate override; the
//! default asks for 40% parallel efficiency of the hardware thread
//! count, capped at 4× and floored at 0.4×, exactly like `scale`).
//! Exit is non-zero on any determinism violation or a failed gate.

use bench::fixtures::RunArgs;
use bench::print_table;
use bench::world_fixture::{self, TimelineJudgment, TARGET};
use netsim::geo::{country, World};
use population::shard::ShardContext;
use population::{run_sharded_world, Audience, WorldEngine};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct WorldShardPoint {
    shards: usize,
    visits_per_sec: f64,
    speedup_vs_serial: f64,
    onset_day: Option<u64>,
    lift_day: Option<u64>,
}

#[derive(Serialize)]
struct WorldScaleResult {
    days: u64,
    serial_visits: u64,
    hardware_threads: usize,
    serial_visits_per_sec: f64,
    points: Vec<WorldShardPoint>,
    lockstep_ok: bool,
    reproducible_ok: bool,
    verdicts_stable: bool,
}

fn main() {
    let args = RunArgs::parse();
    let days = args.days(30);
    let max_shards = args.shards(8);
    let seed = args.seed;
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    let recipe = world_fixture::recipe(days, 150.0);
    let audience = Audience::world(&World::builtin());

    // Serial baseline: the engine replaying the recipe on one thread.
    // World construction stays inside the timed region on both sides
    // (each shard builds its own world on its thread).
    let t0 = Instant::now();
    let (mut net, mut sys) = world_fixture::build(ShardContext {
        index: 0,
        shards: 1,
    });
    let mut rng = sim_core::SimRng::new(seed);
    let serial = WorldEngine::from_recipe(&mut net, &mut sys, &audience, &recipe, &mut rng).run();
    let serial_secs = t0.elapsed().as_secs_f64();
    let serial_visits = serial.report.visits;
    let serial_vps = serial_visits as f64 / serial_secs;
    let serial_snapshot = sys.collection.snapshot();

    let shard_counts: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&s| s <= max_shards.max(1))
        .collect();

    let mut points = Vec::new();
    let mut lockstep_ok = true;
    let mut rows = vec![vec![
        "serial".to_string(),
        format!("{serial_vps:.0}"),
        "1.00x".to_string(),
        "-".to_string(),
    ]];
    let mut verdicts: Vec<TimelineJudgment> = Vec::new();

    for &shards in &shard_counts {
        let t = Instant::now();
        let run = run_sharded_world(&world_fixture::build, &audience, &recipe, shards, seed);
        let secs = t.elapsed().as_secs_f64();
        let vps = run.outcome.report.visits as f64 / secs;

        if shards == 1 && (run.outcome != serial || run.collection != serial_snapshot) {
            eprintln!("DETERMINISM VIOLATION: 1-shard world run differs from the serial engine");
            lockstep_ok = false;
        }
        let judgment =
            world_fixture::judge_timeline(&run.collection.records, &run.geo, country("TR"), TARGET);

        rows.push(vec![
            shards.to_string(),
            format!("{vps:.0}"),
            format!("{:.2}x", vps / serial_vps),
            format!("{:?}/{:?}", judgment.onset_day, judgment.lift_day),
        ]);
        points.push(WorldShardPoint {
            shards,
            visits_per_sec: vps,
            speedup_vs_serial: vps / serial_vps,
            onset_day: judgment.onset_day,
            lift_day: judgment.lift_day,
        });
        verdicts.push(judgment);
    }

    let verdicts_stable = verdicts
        .windows(2)
        .all(|w| w[0].onset_day == w[1].onset_day && w[0].lift_day == w[1].lift_day);
    if !verdicts_stable {
        eprintln!("DETERMINISM VIOLATION: timeline verdicts vary with shard count");
    }

    // Reproducibility at the highest shard count, on a shorter world.
    let top = *shard_counts.last().unwrap();
    let short = world_fixture::recipe(days.min(10), 150.0);
    let go = || run_sharded_world(&world_fixture::build, &audience, &short, top, seed);
    let (a, b) = (go(), go());
    let reproducible_ok = a.outcome == b.outcome && a.collection == b.collection;
    if !reproducible_ok {
        eprintln!("DETERMINISM VIOLATION: fixed (seed, shards) world run not reproducible");
    }

    println!(
        "Sharded world engine — {days} simulated days ({serial_visits} visits), \
         seed {seed:#x}, {hardware} hw thread(s)"
    );
    print_table(&["shards", "visits/s", "speedup", "onset/lift"], &rows);

    let best = points
        .iter()
        .map(|p| p.speedup_vs_serial)
        .fold(0.0f64, f64::max);

    args.write_results(
        "world_scale",
        &WorldScaleResult {
            days,
            serial_visits,
            hardware_threads: hardware,
            serial_visits_per_sec: serial_vps,
            points,
            lockstep_ok,
            reproducible_ok,
            verdicts_stable,
        },
    );

    // Parallelism-aware throughput gate, same shape as `scale`'s:
    // wall-clock speedup on shared runners is noisy, so the default
    // scales with what the machine can physically show; determinism
    // violations always fail regardless.
    let required = args.min_speedup((0.4 * hardware as f64).clamp(0.4, 4.0));
    let throughput_ok = best >= required;
    if !throughput_ok {
        eprintln!(
            "THROUGHPUT REGRESSION: best speedup {best:.2}x < required {required:.2}x \
             ({hardware} hw threads)"
        );
    }

    if !(lockstep_ok && reproducible_ok && verdicts_stable && throughput_ok) {
        std::process::exit(1);
    }
}
