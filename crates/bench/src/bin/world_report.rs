//! The flagship generative-corpus experiment — a 90-day multi-country
//! "world report" over a seeded `websim::corpus::Corpus`.
//!
//! Encore's deployment (paper §7) observed real censorship from real
//! vantage points over months; this binary is the simulated analogue at
//! full ambition: a Zipf-popularity synthetic web with scale-free
//! cross-links, a ten-country demographic mix, the standing 2014
//! registry regimes (CN/IR/PK), a scheduled Turkish block
//! (onset day 30, lift day 60), a Russian *adaptive* censor escalating
//! RST → DNS poison → IP block against the corpus' most popular site,
//! and three benign disruptions (origin outage, botched cert rotation,
//! permanent redesign) against the second most popular site — which is
//! also under measurement, so the detector's cross-region control is
//! exercised against realistic operational noise for the entire run.
//!
//! `--shards N` / `--transport {threads,process}` run the identical
//! recipe distributed; at one shard CI byte-diffs
//! `results/world_report.json` against `tests/golden/world_report.json`
//! (blessed by `tests/world_report.rs`), and at more shards this binary
//! gates itself on verdict equality with that serial golden (censor
//! verdicts and the zero-false-positive disruption count must be
//! shard-invariant).

use bench::corpus_fixture::{
    self, WorldReport, DAYS, OUTAGE_START, RATE, REDESIGN_DAY, RU_IP_BLOCK_DAY, RU_RST_DAY,
    RU_STAND_DOWN_DAY, TR_BLOCK_LIFT, TR_BLOCK_ONSET,
};
use bench::fixtures::RunArgs;
use bench::print_table;
use bench::specs::{BenchWorldSpec, SHARD_WORKER};
use population::transport::TransportKind;

fn main() {
    let args = RunArgs::parse();
    let shards = args.shards(1);
    let days = args.days(DAYS);
    let transport = args.transport(TransportKind::Threads);

    let spec = BenchWorldSpec::Corpus { days, rate: RATE };
    let run = match transport.run(SHARD_WORKER, &spec, shards, args.seed) {
        Ok(run) => run,
        Err(err) => {
            eprintln!("world_report: {transport} transport failed: {err}");
            std::process::exit(1);
        }
    };
    let report = corpus_fixture::report(&run, shards, days, args.seed);

    println!(
        "=== world report: {} corpus sites, {days} days ===",
        report.corpus_domains.len()
    );
    println!(
        "({} visits, seed {:#x}, across {} shard(s) on the {transport} transport; \
         {} policy events, {} control signals; TR block days \
         {TR_BLOCK_ONSET}-{TR_BLOCK_LIFT}, RU escalation days \
         {RU_RST_DAY}-{RU_STAND_DOWN_DAY} peaking at IP block day {RU_IP_BLOCK_DAY}; \
         disruptions on {} from day {OUTAGE_START} through the day-{REDESIGN_DAY} \
         redesign)\n",
        report.visits,
        args.seed,
        shards,
        report.policy_changes_applied,
        report.control_signals_applied,
        report.verdicts.disrupted_domain,
    );
    print_table(
        &["country", "domain", "onset", "lift", "flagged days"],
        &report
            .verdicts
            .pairs
            .iter()
            .map(|p| {
                vec![
                    p.country.clone(),
                    p.domain.clone(),
                    p.onset_day
                        .map(|d| format!("day {d}"))
                        .unwrap_or("-".into()),
                    p.lift_day.map(|d| format!("day {d}")).unwrap_or("-".into()),
                    p.flagged_days.len().to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nbenign disruptions on {}: global-failure days {:?}, \
         censorship detections {} (must be 0)",
        report.verdicts.disrupted_domain,
        report.verdicts.disrupted_failure_days,
        report.verdicts.disrupted_detections,
    );
    if report.verdicts.disrupted_detections != 0 {
        eprintln!(
            "FALSE POSITIVE: {} detections against the benignly disrupted domain {}",
            report.verdicts.disrupted_detections, report.verdicts.disrupted_domain
        );
        std::process::exit(1);
    }

    let name = match shards {
        1 => "world_report".to_string(),
        n => format!("world_report_shards{n}"),
    };
    args.write_results(&name, &report);

    // Sharded runs gate themselves against the serial golden, exactly
    // like the timeline binary: the sampled visit stream differs per
    // shard count, but every verdict must not. The golden is recorded at
    // the default (days, seed), so the gate engages only there.
    let golden_parameters = days == DAYS && args.seed == bench::DEFAULT_SEED;
    if shards > 1 && !golden_parameters {
        eprintln!(
            "[non-default days/seed: skipping the serial-golden verdict check, \
             which is only meaningful at days={DAYS}, seed={:#x}]",
            bench::DEFAULT_SEED
        );
    }
    if shards > 1 && golden_parameters {
        let golden_path = std::path::Path::new("tests/golden/world_report.json");
        match std::fs::read_to_string(golden_path) {
            Ok(json) => match serde_json::from_str::<WorldReport>(&json) {
                Ok(golden) => {
                    if golden.verdicts != report.verdicts {
                        eprintln!(
                            "VERDICT DRIFT at {shards} shards: serial golden verdicts\n\
                             {:#?}\nthis run\n{:#?}",
                            golden.verdicts, report.verdicts
                        );
                        std::process::exit(1);
                    }
                    println!(
                        "\n[{shards}-shard verdicts match the serial golden across all \
                         {} tracked pairs]",
                        report.verdicts.pairs.len()
                    );
                }
                Err(e) => {
                    // At golden parameters the gate must never pass
                    // vacuously — an unreadable golden is a failure,
                    // not a skip (CI runs from the repo root).
                    eprintln!("VERDICT GATE BROKEN: golden verdict unreadable: {e:?}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("VERDICT GATE BROKEN: no serial golden at {golden_path:?}: {e}");
                std::process::exit(1);
            }
        }
    }
}
