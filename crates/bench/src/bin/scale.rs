//! Scale — visits/s of the sharded population engine vs shard count.
//!
//! The ROADMAP's north star is "heavy traffic from millions of users …
//! as fast as the hardware allows"; this binary quantifies how far the
//! sharded batch engine (`population::shard`) gets toward it on the
//! current machine, and re-checks the determinism contract while it's at
//! it (a fast parallel engine that changes the science is worthless).
//!
//! Output: a table of `shards → visits/s → speedup` against the serial
//! batch driver, plus `results/scale.json`. Overrides (CLI flag or env,
//! via `bench::fixtures::RunArgs`): `--visits`/`ENCORE_VISITS` (total
//! visits per run, default 100 000), `--shards`/`ENCORE_SHARDS` (highest
//! shard count in the sweep, default 8), `--seed`/`ENCORE_SEED`.
//!
//! Exit is non-zero if determinism is violated (1-shard run differing
//! from the serial driver, or a repeated run differing from itself), or
//! if the throughput gate fails. The gate asks for 40% parallel
//! efficiency of the hardware thread count, capped at the 4× target
//! (reached at ≥ 10 threads) and floored at 0.4× on a single core;
//! `--min-speedup`/`ENCORE_MIN_SPEEDUP` overrides it.

use bench::fixtures::RunArgs;
use bench::print_table;
use bench::shard_fixture::{batch, build_censored as build};
use netsim::geo::World;
use population::shard::ShardContext;
use population::{run_sharded_batch, run_visit_batch, Audience, ShardedBatchConfig};
use serde::Serialize;
use sim_core::SimRng;
use std::time::Instant;

#[derive(Serialize)]
struct ShardPoint {
    shards: usize,
    visits_per_sec: f64,
    speedup_vs_serial: f64,
    detections: usize,
}

#[derive(Serialize)]
struct ScaleResult {
    visits: u64,
    hardware_threads: usize,
    serial_visits_per_sec: f64,
    points: Vec<ShardPoint>,
    lockstep_ok: bool,
    reproducible_ok: bool,
    verdicts_stable: bool,
}

fn main() {
    let args = RunArgs::parse();
    let visits = args.visits(100_000);
    let max_shards = args.shards(8);
    let seed = args.seed;
    let audience = Audience::world(&World::builtin());
    let hardware = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Serial baseline: the existing single-thread batch driver. The
    // world build is inside the timed region, as it is for the sharded
    // runs below (each shard builds its own world on its thread) — the
    // speedup comparison must be end-to-end on both sides.
    let t0 = Instant::now();
    let (mut net, mut sys) = build(ShardContext {
        index: 0,
        shards: 1,
    });
    let mut rng = SimRng::new(seed);
    let serial_report = run_visit_batch(&mut net, &mut sys, &audience, &batch(visits), &mut rng);
    let serial_secs = t0.elapsed().as_secs_f64();
    let serial_vps = visits as f64 / serial_secs;
    let serial_snapshot = sys.collection.snapshot();

    let shard_counts: Vec<usize> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .filter(|&s| s <= max_shards.max(1))
        .collect();

    let mut points = Vec::new();
    let mut lockstep_ok = true;
    let mut verdict_sets: Vec<Vec<String>> = Vec::new();
    let mut rows = Vec::new();
    rows.push(vec![
        "serial".to_string(),
        format!("{serial_vps:.0}"),
        "1.00x".to_string(),
        "-".to_string(),
    ]);

    for &shards in &shard_counts {
        let config = ShardedBatchConfig {
            shards,
            batch: batch(visits),
        };
        let t = Instant::now();
        let run = run_sharded_batch(&build, &audience, &config, seed);
        let secs = t.elapsed().as_secs_f64();
        let vps = visits as f64 / secs;

        if shards == 1 && (run.report != serial_report || run.collection != serial_snapshot) {
            eprintln!("DETERMINISM VIOLATION: 1-shard run differs from the serial driver");
            lockstep_ok = false;
        }
        let keys = bench::shard_fixture::verdict_keys(&run.collection.records, &run.geo);

        rows.push(vec![
            shards.to_string(),
            format!("{vps:.0}"),
            format!("{:.2}x", vps / serial_vps),
            keys.len().to_string(),
        ]);
        points.push(ShardPoint {
            shards,
            visits_per_sec: vps,
            speedup_vs_serial: vps / serial_vps,
            detections: keys.len(),
        });
        verdict_sets.push(keys);
    }

    let verdicts_stable = verdict_sets.windows(2).all(|w| w[0] == w[1]);
    if !verdicts_stable {
        eprintln!("DETERMINISM VIOLATION: detector verdicts vary with shard count");
    }

    // Reproducibility at the highest shard count.
    let top = *shard_counts.last().unwrap();
    let config = ShardedBatchConfig {
        shards: top,
        batch: batch(visits.min(20_000)),
    };
    let a = run_sharded_batch(&build, &audience, &config, seed);
    let b = run_sharded_batch(&build, &audience, &config, seed);
    let reproducible_ok = a.report == b.report && a.collection == b.collection;
    if !reproducible_ok {
        eprintln!("DETERMINISM VIOLATION: fixed (seed, shards) run not reproducible");
    }

    println!(
        "Sharded population engine — {visits} visits, seed {seed:#x}, {hardware} hw thread(s)"
    );
    print_table(&["shards", "visits/s", "speedup", "verdicts"], &rows);

    let best = points
        .iter()
        .map(|p| p.speedup_vs_serial)
        .fold(0.0f64, f64::max);

    args.write_results(
        "scale",
        &ScaleResult {
            visits,
            hardware_threads: hardware,
            serial_visits_per_sec: serial_vps,
            points,
            lockstep_ok,
            reproducible_ok,
            verdicts_stable,
        },
    );

    // Throughput gate, scaled smoothly to what this machine can
    // physically show: 40% parallel efficiency of the hardware thread
    // count, capped at the ISSUE's 4× target (reached at ≥ 10 threads)
    // and floored at 0.4× (sharding must never be catastrophically
    // slower than serial, even on one core). `ENCORE_MIN_SPEEDUP`
    // overrides for stricter or laxer environments — wall-clock speedup
    // on shared CI runners is inherently noisy, so the default leans
    // lenient; determinism violations always fail regardless.
    let required = args.min_speedup((0.4 * hardware as f64).clamp(0.4, 4.0));
    let throughput_ok = best >= required;
    if !throughput_ok {
        eprintln!(
            "THROUGHPUT REGRESSION: best speedup {best:.2}x < required {required:.2}x \
             ({hardware} hw threads)"
        );
    }

    if !(lockstep_ok && reproducible_ok && verdicts_stable && throughput_ok) {
        std::process::exit(1);
    }
}
