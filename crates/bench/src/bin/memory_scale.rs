//! `memory_scale` — resident analytics footprint vs traffic volume.
//!
//! The exact-mode collection server keeps every record, so analytics
//! memory grows linearly with traffic. Streaming mode replaces the
//! record log with a count-min sketch, a bottom-k reservoir, and
//! per-window count matrices — all bounded by key space and simulated
//! time, not by visit volume. This gate proves that claim on the §7.2
//! censored-world fixture at two traffic sizes a decade apart
//! (`visits/10` and `visits`, arrival gaps scaled 10× so the simulated
//! span — and with it the number of detection windows — stays
//! constant), and re-checks correctness while measuring: the streamed
//! verdicts at the large size must equal exact windowed detection over
//! the full record log.
//!
//! Gates (exit non-zero on any failure):
//!
//! * **bounded** — streaming resident analytics bytes at the large
//!   size stay under a fixed budget (8 MiB);
//! * **flat** — the large size costs at most 1.5× the small size
//!   (plus 64 KiB of slack), i.e. the curve is flat where exact mode
//!   grows 10×;
//! * **equivalent** — zero drops, streamed accepted count == exact
//!   record count, and identical window verdicts;
//! * **throughput** — streaming visits/s at the large size within
//!   1.15× of exact mode (override: `--min-speedup`/
//!   `ENCORE_MIN_SPEEDUP`, as a required streaming/exact ratio).
//!
//! Deduplication is disabled for the measurement: the per-open-window
//! dedup set is the one knob whose memory scales with accepted traffic
//! (documented in DESIGN.md), and the fixture generates no duplicates.
//!
//! Output: a table plus `results/memory_scale.json`. Overrides:
//! `--visits`/`ENCORE_VISITS` (large size, default 1,000,000),
//! `--window`/`ENCORE_WINDOW` (detection window in days, default 1),
//! `--seed`/`ENCORE_SEED`.

use bench::fixtures::RunArgs;
use bench::print_table;
use bench::shard_fixture;
use encore::FilteringDetector;
use netsim::geo::World;
use population::{run_sharded_world, Audience, ShardedWorldRun, StreamingSpec, WorldRecipe};
use serde::Serialize;
use sim_core::SimDuration;
use std::time::Instant;

/// One measured configuration.
#[derive(Serialize)]
struct MemoryPoint {
    visits: u64,
    streaming: bool,
    visits_per_sec: f64,
    resident_bytes: usize,
    accepted: u64,
    dropped: u64,
}

#[derive(Serialize)]
struct MemoryScaleResult {
    window_days: u64,
    points: Vec<MemoryPoint>,
    /// Peak RSS (Linux VmHWM) right after the two streaming runs —
    /// before exact mode inflates the high-water mark with its record
    /// log. `None` off Linux.
    streaming_peak_rss_bytes: Option<u64>,
    /// Peak RSS at process end, exact runs included.
    final_peak_rss_bytes: Option<u64>,
    bounded_ok: bool,
    flat_ok: bool,
    equivalent_ok: bool,
    throughput_ok: bool,
}

/// Streaming resident budget at the large size.
const MAX_STREAMING_BYTES: usize = 8 * 1024 * 1024;
/// Allowed large/small resident growth for the "flat" gate.
const FLAT_FACTOR: f64 = 1.5;
const FLAT_SLACK: usize = 64 * 1024;

/// Peak RSS of this process from `/proc/self/status` (`VmHWM`).
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The fixture recipe: `visits` batch arrivals over a constant
/// simulated span (gap shrinks as visits grow), daily rollups.
fn recipe(visits: u64, gap_ms: u64, window: SimDuration, streaming: bool) -> WorldRecipe {
    let mut batch = shard_fixture::batch(visits);
    batch.mean_gap = SimDuration::from_millis(gap_ms);
    let mut recipe = WorldRecipe::batch(batch).with_rollups(window);
    if streaming {
        let mut spec = StreamingSpec::with_window(window);
        // The open-window dedup set is the one analytics structure
        // whose memory scales with accepted traffic; the fixture
        // produces no wire duplicates, so measure without it.
        spec.config.dedup = false;
        recipe = recipe.with_streaming(spec);
    }
    recipe
}

fn run(
    visits: u64,
    gap_ms: u64,
    window: SimDuration,
    streaming: bool,
    seed: u64,
) -> (ShardedWorldRun, f64) {
    let audience = Audience::world(&World::builtin());
    let recipe = recipe(visits, gap_ms, window, streaming);
    let t = Instant::now();
    let run = run_sharded_world(&shard_fixture::build_censored, &audience, &recipe, 1, seed);
    let secs = t.elapsed().as_secs_f64();
    (run, visits as f64 / secs)
}

/// Approximate resident bytes of the exact-mode record log (snapshot
/// form: struct + owned strings per record).
fn exact_resident_bytes(run: &ShardedWorldRun) -> usize {
    run.collection
        .records
        .iter()
        .map(|r| {
            std::mem::size_of_val(r)
                + r.submission.target_url.len()
                + r.submission.user_agent.len()
                + r.referer.as_ref().map_or(0, String::len)
        })
        .sum()
}

fn main() {
    let args = RunArgs::parse();
    let hi = args.visits(1_000_000);
    let lo = (hi / 10).max(1);
    let window_days = args.window_days(1);
    let window = SimDuration::from_days(window_days);
    let seed = args.seed;
    // Gap scales inversely with visits so both sizes simulate the same
    // span — the window count must not vary with traffic volume, or
    // the flat gate would compare different analytics shapes.
    let (lo_gap, hi_gap) = (1_200u64, 120u64);

    println!(
        "Resident analytics vs traffic — {lo} and {hi} visits over a constant simulated span, \
         {window_days}-day window, seed {seed:#x}"
    );

    // Streaming runs first: the process high-water mark read after
    // them reflects streaming mode alone, before exact mode's record
    // log inflates it for good.
    let (s_lo, s_lo_vps) = run(lo, lo_gap, window, true, seed);
    let (s_hi, s_hi_vps) = run(hi, hi_gap, window, true, seed);
    let streaming_peak = peak_rss_bytes();
    let (e_lo, e_lo_vps) = run(lo, lo_gap, window, false, seed);
    let (e_hi, e_hi_vps) = run(hi, hi_gap, window, false, seed);
    let final_peak = peak_rss_bytes();

    let stats = |r: &ShardedWorldRun| r.collection.streaming.clone().expect("streaming stats");
    let (st_lo, st_hi) = (stats(&s_lo), stats(&s_hi));

    // Correctness while measuring: identical visit streams, full
    // accounting, identical verdicts at the large size.
    let mut equivalent_ok = true;
    for (streamed, exact, label) in [(&s_lo, &e_lo, "small"), (&s_hi, &e_hi, "large")] {
        if streamed.outcome.log != exact.outcome.log {
            eprintln!("EQUIVALENCE VIOLATION: {label} streaming run perturbed the visit stream");
            equivalent_ok = false;
        }
    }
    if st_hi.drops.total() != 0 || st_hi.accepted != e_hi.collection.records.len() as u64 {
        eprintln!(
            "EQUIVALENCE VIOLATION: accepted {} / dropped {} vs {} exact records",
            st_hi.accepted,
            st_hi.drops.total(),
            e_hi.collection.records.len()
        );
        equivalent_ok = false;
    }
    let det = FilteringDetector::default();
    let streamed_verdicts = det.judge_streamed(&st_hi);
    let exact_verdicts = det.detect_windows(&e_hi.collection.records, &e_hi.geo, window);
    if streamed_verdicts != exact_verdicts {
        eprintln!("EQUIVALENCE VIOLATION: streamed window verdicts differ from exact detection");
        equivalent_ok = false;
    }
    let flagged = streamed_verdicts
        .iter()
        .map(|w| w.detections.len())
        .sum::<usize>();

    let points = vec![
        MemoryPoint {
            visits: lo,
            streaming: true,
            visits_per_sec: s_lo_vps,
            resident_bytes: st_lo.resident_bytes(),
            accepted: st_lo.accepted,
            dropped: st_lo.drops.total(),
        },
        MemoryPoint {
            visits: hi,
            streaming: true,
            visits_per_sec: s_hi_vps,
            resident_bytes: st_hi.resident_bytes(),
            accepted: st_hi.accepted,
            dropped: st_hi.drops.total(),
        },
        MemoryPoint {
            visits: lo,
            streaming: false,
            visits_per_sec: e_lo_vps,
            resident_bytes: exact_resident_bytes(&e_lo),
            accepted: e_lo.collection.records.len() as u64,
            dropped: 0,
        },
        MemoryPoint {
            visits: hi,
            streaming: false,
            visits_per_sec: e_hi_vps,
            resident_bytes: exact_resident_bytes(&e_hi),
            accepted: e_hi.collection.records.len() as u64,
            dropped: 0,
        },
    ];

    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.visits.to_string(),
                if p.streaming { "streaming" } else { "exact" }.to_string(),
                format!("{:.0}", p.visits_per_sec),
                format!("{:.1} KiB", p.resident_bytes as f64 / 1024.0),
                p.accepted.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "visits",
            "mode",
            "visits/s",
            "analytics resident",
            "records",
        ],
        &rows,
    );
    if let Some(rss) = streaming_peak {
        println!(
            "peak RSS after streaming runs: {:.1} MiB (process end: {:.1} MiB)",
            rss as f64 / (1024.0 * 1024.0),
            final_peak.unwrap_or(rss) as f64 / (1024.0 * 1024.0),
        );
    }
    println!("window verdicts at {hi} visits: {flagged} detection(s), matched exact mode");

    let bounded_ok = st_hi.resident_bytes() <= MAX_STREAMING_BYTES;
    if !bounded_ok {
        eprintln!(
            "MEMORY REGRESSION: streaming resident {} bytes exceeds the {} byte budget",
            st_hi.resident_bytes(),
            MAX_STREAMING_BYTES
        );
    }
    let flat_ok = (st_hi.resident_bytes() as f64)
        <= FLAT_FACTOR * st_lo.resident_bytes() as f64 + FLAT_SLACK as f64;
    if !flat_ok {
        eprintln!(
            "MEMORY REGRESSION: streaming resident grew {} -> {} bytes over a 10x traffic \
             increase (gate: {FLAT_FACTOR}x + {FLAT_SLACK})",
            st_lo.resident_bytes(),
            st_hi.resident_bytes()
        );
    }
    // Streaming must not tax the hot path: required ratio of streaming
    // to exact visits/s at the large size (default 1/1.15).
    let required = args.min_speedup(1.0 / 1.15);
    let ratio = s_hi_vps / e_hi_vps;
    let throughput_ok = ratio >= required;
    if !throughput_ok {
        eprintln!(
            "THROUGHPUT REGRESSION: streaming at {:.0} visits/s is {ratio:.2}x exact \
             ({:.0} visits/s); gate requires >= {required:.2}x",
            s_hi_vps, e_hi_vps
        );
    }

    args.write_results(
        "memory_scale",
        &MemoryScaleResult {
            window_days,
            points,
            streaming_peak_rss_bytes: streaming_peak,
            final_peak_rss_bytes: final_peak,
            bounded_ok,
            flat_ok,
            equivalent_ok,
            throughput_ok,
        },
    );

    if !(bounded_ok && flat_ok && equivalent_ok && throughput_ok) {
        std::process::exit(1);
    }
}
