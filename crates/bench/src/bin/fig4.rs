//! Figure 4 — "Distribution of the number of images hosted by each of the
//! 178 domains tested, for images that are at most 1 KB, at most 5 KB,
//! and any size."
//!
//! Paper claims to reproduce (shape, not absolute values):
//! * ~70% of domains embed at least one image;
//! * almost all such images are less than 5 KB (the ≤5 KB curve hugs the
//!   all-sizes curve);
//! * over 60% of domains host single-packet (≤1 KB) images;
//! * a third of domains have hundreds of such images.

use bench::fixtures::RunArgs;
use bench::{cdf_rows, print_table, PaperWorld};
use encore::pipeline::TaskGenerator;
use serde::Serialize;
use sim_core::Cdf;
use std::collections::{BTreeMap, BTreeSet};
use websim::generator::WebConfig;

#[derive(Serialize)]
struct Fig4 {
    domains: usize,
    urls_fetched: usize,
    frac_domains_with_any_image: f64,
    frac_domains_with_le1kb_image: f64,
    frac_images_under_5kb: f64,
    frac_domains_hundreds_tiny: f64,
    cdf_all: Vec<(f64, f64)>,
    cdf_le_5kb: Vec<(f64, f64)>,
    cdf_le_1kb: Vec<(f64, f64)>,
}

fn main() {
    let args = RunArgs::parse();
    let mut pw = PaperWorld::build(&WebConfig::default(), args.seed);
    let hars = pw.fetch_corpus_hars();
    let generator = TaskGenerator::default();

    // Per-domain distinct images (url → bytes) aggregated over the ≤50
    // sampled pages.
    let mut per_domain: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    let mut fetched_domains: BTreeSet<String> = BTreeSet::new();
    for har in &hars {
        let analysis = generator.analyze(har);
        if let Some(host) = netsim::http::host_of(&analysis.page_url) {
            fetched_domains.insert(host.clone());
            let entry = per_domain.entry(host).or_default();
            for (url, bytes, _) in analysis.images {
                entry.insert(url, bytes);
            }
        }
    }

    let mut all = Vec::new();
    let mut le5 = Vec::new();
    let mut le1 = Vec::new();
    let mut total_images = 0usize;
    let mut small_images = 0usize;
    for domain in &fetched_domains {
        let images = per_domain.get(domain).cloned().unwrap_or_default();
        let n_all = images.len();
        let n_le5 = images.values().filter(|b| **b <= 5_000).count();
        let n_le1 = images.values().filter(|b| **b <= 1_000).count();
        total_images += n_all;
        small_images += n_le5;
        all.push(n_all as f64);
        le5.push(n_le5 as f64);
        le1.push(n_le1 as f64);
    }

    let cdf_all = Cdf::new(all);
    let cdf_le5 = Cdf::new(le5);
    let cdf_le1 = Cdf::new(le1.clone());

    // The paper's x-axis: 0–2000 images.
    let xs: Vec<f64> = (0..=20).map(|i| i as f64 * 100.0).collect();

    let result = Fig4 {
        domains: fetched_domains.len(),
        urls_fetched: hars.len(),
        frac_domains_with_any_image: 1.0 - cdf_all.fraction_at_most(0.0),
        frac_domains_with_le1kb_image: 1.0 - cdf_le1.fraction_at_most(0.0),
        frac_images_under_5kb: if total_images == 0 {
            0.0
        } else {
            small_images as f64 / total_images as f64
        },
        frac_domains_hundreds_tiny: 1.0 - cdf_le1.fraction_at_most(100.0),
        cdf_all: cdf_all.series_at(&xs),
        cdf_le_5kb: cdf_le5.series_at(&xs),
        cdf_le_1kb: cdf_le1.series_at(&xs),
    };

    println!("=== Figure 4: images per domain (CDF) ===");
    println!(
        "corpus: {} domains, {} URLs fetched",
        result.domains, result.urls_fetched
    );
    println!();
    let mut rows = Vec::new();
    for (i, &x) in xs.iter().enumerate() {
        rows.push(vec![
            format!("{x:.0}"),
            format!("{:.3}", result.cdf_le_1kb[i].1),
            format!("{:.3}", result.cdf_le_5kb[i].1),
            format!("{:.3}", result.cdf_all[i].1),
        ]);
    }
    print_table(&["images/domain", "F(<=1KB)", "F(<=5KB)", "F(all)"], &rows);
    println!();
    print_table(
        &["claim", "paper", "measured"],
        &[
            vec![
                "domains embedding >=1 image".into(),
                "~70%".into(),
                format!("{:.1}%", 100.0 * result.frac_domains_with_any_image),
            ],
            vec![
                "domains with <=1KB images".into(),
                ">60%".into(),
                format!("{:.1}%", 100.0 * result.frac_domains_with_le1kb_image),
            ],
            vec![
                "images under 5KB".into(),
                "almost all".into(),
                format!("{:.1}%", 100.0 * result.frac_images_under_5kb),
            ],
            vec![
                "domains with 100s of <=1KB images".into(),
                "~1/3".into(),
                format!("{:.1}%", 100.0 * result.frac_domains_hundreds_tiny),
            ],
        ],
    );
    let _ = cdf_rows(&result.cdf_all);
    args.write_results("fig4", &result);
}
