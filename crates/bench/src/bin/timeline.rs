//! Longitudinal extension experiment — censorship onset and lifting.
//!
//! Not a numbered figure in the paper, but its core motivation (§1):
//! censorship "varies over time in response to changing social or
//! political conditions (e.g., a national election)" and measuring it
//! requires *continuous* collection. We simulate a 30-day deployment of
//! the `bench::world_fixture` recipe: Turkey's March-2014-style Twitter
//! block is a `censor::timeline::PolicyTimeline` with an install event
//! at day 10 and a lift event at day 20, fired between visit arrivals on
//! one continuously-running event-driven world
//! (`population::world::WorldEngine`). The policy changes mutate the
//! live network through the middlebox generation counter — warm pooled
//! clients' compiled session pipelines invalidate and re-match, no
//! per-day world rebuilds — and the windowed detector localises both
//! transitions to the correct day.
//!
//! `--shards N` (or `ENCORE_SHARDS`) runs the same recipe across N
//! shards: the timeline broadcasts to every shard, arrivals thin 1/N,
//! and the merged collection feeds one detector. `--transport
//! {threads,process}` (or `ENCORE_TRANSPORT`) picks the shard backend —
//! in-process OS threads (the default) or worker processes speaking the
//! length-prefixed frame protocol via `bench`'s `shard_worker` binary;
//! both are byte-identical, so every check below is
//! transport-independent. At one shard the run is byte-identical to the
//! serial engine (CI diffs `results/timeline.json` against
//! `tests/golden/timeline.json`); at more shards the *verdict* — onset
//! day, lift day — must still match the serial golden, which this
//! binary checks itself when `--golden PATH`-less CI hands it
//! `tests/golden/timeline.json` via the default path.
//!
//! `--streaming` (or `ENCORE_STREAMING`) re-runs the same recipe with
//! bounded-memory analytics: workers ship one count-min/reservoir/
//! window-matrix sketch frame each instead of record chunks, the
//! verdict is judged from the merged matrices, and the same
//! serial-golden gate applies — streaming may change memory, never the
//! verdict. Results are written under `timeline_streaming*` so exact
//! golden diffs are untouched.

use bench::fixtures::RunArgs;
use bench::print_table;
use bench::specs::{BenchWorldSpec, SHARD_WORKER};
use bench::world_fixture::{self, TimelineJudgment, LIFT_DAY, ONSET_DAY, TARGET};
use netsim::geo::country;
use population::transport::TransportKind;
use population::RollupSeries;
use serde::{Deserialize, Serialize};

#[derive(Serialize)]
struct Timeline {
    shards: usize,
    days: Vec<(u64, usize, bool)>, // (day, measurements, TR flagged)
    onset_day: Option<u64>,
    lift_day: Option<u64>,
    policy_changes_applied: usize,
    rollups: RollupSeries,
    visits: u64,
}

/// The verdict fields of a previously written timeline artifact — what a
/// sharded run must agree with the serial golden on.
#[derive(Deserialize)]
struct GoldenVerdict {
    onset_day: Option<u64>,
    lift_day: Option<u64>,
}

fn main() {
    let args = RunArgs::parse();
    let shards = args.shards(1);
    let days = args.days(30);
    let transport = args.transport(TransportKind::Threads);
    let streaming = args.streaming(false);

    // High enough that Turkey's daily measurement cell clears the
    // detector's minimum-n guard with day-level statistical power.
    let spec = BenchWorldSpec::Timeline {
        days,
        rate: 150.0,
        streaming,
    };
    let run = match transport.run(SHARD_WORKER, &spec, shards, args.seed) {
        Ok(run) => run,
        Err(err) => {
            eprintln!("timeline: {transport} transport failed: {err}");
            std::process::exit(1);
        }
    };

    let TimelineJudgment {
        days: day_rows,
        onset_day,
        lift_day,
    } = if streaming {
        // Bounded-memory mode: no record log crosses the wire; the
        // verdict is judged from the merged per-window count matrices.
        if !run.collection.records.is_empty() {
            eprintln!(
                "STREAMING VIOLATION: {} exact records kept in streaming mode",
                run.collection.records.len()
            );
            std::process::exit(1);
        }
        let Some(stats) = run.collection.streaming.as_ref() else {
            eprintln!("STREAMING VIOLATION: streaming run carried no analytics sketch");
            std::process::exit(1);
        };
        if stats.drops.total() != 0 {
            eprintln!(
                "STREAMING VIOLATION: {} submissions dropped on the default ingest queue",
                stats.drops.total()
            );
            std::process::exit(1);
        }
        world_fixture::judge_timeline_streamed(stats, country("TR"), TARGET)
    } else {
        world_fixture::judge_timeline(&run.collection.records, &run.geo, country("TR"), TARGET)
    };

    println!(
        "=== timeline: Turkey blocks {TARGET} on day {ONSET_DAY}, lifts on day {LIFT_DAY} ==="
    );
    // The effective configuration is printed so a stray `ENCORE_*`
    // variable (or flag) is immediately visible when a golden diff
    // fails.
    println!(
        "({} visits over {days} days, seed {:#x}, across {} shard(s) on the {transport} \
         transport, {} analytics; {} policy events; one detector window per day)\n",
        run.outcome.report.visits,
        args.seed,
        shards,
        if streaming { "streaming" } else { "exact" },
        run.outcome.policy_changes_applied
    );
    print_table(
        &["day", "measurements", "TR flagged"],
        &day_rows
            .iter()
            .map(|(d, m, f)| {
                vec![
                    d.to_string(),
                    m.to_string(),
                    if *f {
                        "FILTERED".into()
                    } else {
                        "-".to_string()
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &["event", "ground truth", "detected"],
        &[
            vec![
                "block onset".into(),
                format!("day {ONSET_DAY}"),
                onset_day
                    .map(|d| format!("day {d}"))
                    .unwrap_or("missed".into()),
            ],
            vec![
                "block lifted".into(),
                format!("day {LIFT_DAY}"),
                lift_day
                    .map(|d| format!("day {d}"))
                    .unwrap_or("missed".into()),
            ],
        ],
    );

    let name = match (streaming, shards) {
        (false, 1) => "timeline".to_string(),
        (false, n) => format!("timeline_shards{n}"),
        (true, 1) => "timeline_streaming".to_string(),
        (true, n) => format!("timeline_streaming_shards{n}"),
    };
    args.write_results(
        &name,
        &Timeline {
            shards,
            days: day_rows,
            onset_day,
            lift_day,
            policy_changes_applied: run.outcome.policy_changes_applied,
            rollups: run.outcome.rollups.clone(),
            visits: run.outcome.report.visits,
        },
    );

    // Sharded and streaming runs gate themselves against the serial
    // golden: detector verdicts (onset/lift localisation) are required
    // to be invariant across shard counts *and* analytics modes, even
    // though the sampled visit stream (sharding) and the retained state
    // (streaming) are not. The golden was recorded at the default
    // (days, seed), so the gate only engages there — a `--days 5` run
    // legitimately never sees the day-10 onset and must not be reported
    // as drift.
    let golden_parameters = days == 30 && args.seed == bench::DEFAULT_SEED;
    let gated = shards > 1 || streaming;
    if gated && !golden_parameters {
        eprintln!(
            "[non-default days/seed: skipping the serial-golden verdict check, \
             which is only meaningful at days=30, seed={:#x}]",
            bench::DEFAULT_SEED
        );
    }
    if gated && golden_parameters {
        let golden_path = std::path::Path::new("tests/golden/timeline.json");
        match std::fs::read_to_string(golden_path) {
            Ok(json) => match serde_json::from_str::<GoldenVerdict>(&json) {
                Ok(golden) => {
                    if golden.onset_day != onset_day || golden.lift_day != lift_day {
                        eprintln!(
                            "VERDICT DRIFT at {shards} shards: serial golden localises \
                             onset={:?} lift={:?}, this run localises onset={onset_day:?} \
                             lift={lift_day:?}",
                            golden.onset_day, golden.lift_day
                        );
                        std::process::exit(1);
                    }
                    println!(
                        "\n[{shards}-shard verdict matches the serial golden: \
                         onset day {onset_day:?}, lift day {lift_day:?}]"
                    );
                }
                Err(e) => {
                    // At golden parameters the gate must never pass
                    // vacuously — an unreadable golden is a failure,
                    // not a skip (CI runs from the repo root where the
                    // golden is always present).
                    eprintln!("VERDICT GATE BROKEN: golden verdict unreadable: {e:?}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("VERDICT GATE BROKEN: no serial golden at {golden_path:?}: {e}");
                std::process::exit(1);
            }
        }
    }
}
