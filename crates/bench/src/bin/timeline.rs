//! Longitudinal extension experiment — censorship onset and lifting.
//!
//! Not a numbered figure in the paper, but its core motivation (§1):
//! censorship "varies over time in response to changing social or
//! political conditions (e.g., a national election)" and measuring it
//! requires *continuous* collection. We simulate a 30-day deployment on
//! **one continuously-running event-driven world**
//! (`population::world::WorldEngine`): Turkey's March-2014-style Twitter
//! block is a `censor::timeline::PolicyTimeline` with an install event
//! at day 10 and a lift event at day 20, fired between visit arrivals on
//! the same queue. The policy changes mutate the live network through
//! the middlebox generation counter — warm pooled clients' compiled
//! session pipelines invalidate and re-match, no per-day world rebuilds,
//! no phase restarts — and the windowed detector localises both
//! transitions to the correct day.
//!
//! Output is byte-reproducible for a fixed seed; CI diffs
//! `results/timeline.json` against `tests/golden/timeline.json`.

use bench::fixtures::{add_image_server, deploy_us, favicon_tasks};
use bench::{print_table, seed, write_results};
use censor::policy::{CensorPolicy, Mechanism};
use censor::timeline::{CensorSpec, PolicyChange, PolicyTimeline};
use encore::coordination::SchedulingStrategy;
use encore::delivery::OriginSite;
use encore::{FilteringDetector, GeoDb};
use netsim::geo::{country, World};
use netsim::network::Network;
use population::world::WorldEngine;
use population::{Audience, DeploymentConfig};
use serde::Serialize;
use sim_core::{SimDuration, SimRng, SimTime};

/// Ground truth: block switches on at day 10 and lifts at day 20.
const ONSET_DAY: u64 = 10;
const LIFT_DAY: u64 = 20;

#[derive(Serialize)]
struct Timeline {
    days: Vec<(u64, usize, bool)>, // (day, measurements, TR flagged)
    onset_day: Option<u64>,
    lift_day: Option<u64>,
    policy_changes_applied: usize,
    rollups: Vec<(u64, u64, usize)>, // (day, visits so far, collected so far)
    visits: u64,
}

fn day(d: u64) -> SimTime {
    SimTime::from_secs(d * 86_400)
}

fn main() {
    let world = World::builtin();
    let mut net = Network::new(world.clone());
    add_image_server(&mut net, "twitter.com", 500);

    let origins = vec![
        OriginSite::academic("origin-a.example").with_popularity(5.0),
        OriginSite::academic("origin-b.example").with_popularity(5.0),
    ];
    let mut sys = deploy_us(
        &mut net,
        favicon_tasks(&["twitter.com"]),
        SchedulingStrategy::RoundRobin,
        origins,
    );

    // The March-2014-style block as scheduled world events.
    let timeline = PolicyTimeline::new()
        .at(
            day(ONSET_DAY),
            PolicyChange::Install(CensorSpec::new(
                country("TR"),
                CensorPolicy::named("tr-election-block")
                    .block_domain("twitter.com", Mechanism::DnsNxDomain),
            )),
        )
        .at(
            day(LIFT_DAY),
            PolicyChange::Lift {
                name: "tr-election-block".into(),
            },
        );

    let mut rng = SimRng::new(seed());
    let audience = Audience::world(&world);
    let config = DeploymentConfig {
        duration: SimDuration::from_days(30),
        // High enough that Turkey's daily measurement cell clears the
        // detector's minimum-n guard with day-level statistical power.
        visits_per_day_per_weight: 150.0,
        ..DeploymentConfig::default()
    };

    let mut engine = WorldEngine::deployment(&mut net, &mut sys, &audience, &config, &mut rng);
    engine.schedule_timeline(timeline);
    // Daily progress rollups and hourly session maintenance, all on the
    // same queue as the arrivals and the policy changes.
    engine.schedule_rollups(SimDuration::from_days(1));
    engine.schedule_maintenance(SimDuration::from_secs(3_600));
    let outcome = engine.run();

    let geo = GeoDb::from_allocator(&net.allocator);
    let detector = FilteringDetector::default();
    let reports =
        detector.detect_windows(&sys.collection.records(), &geo, SimDuration::from_days(1));

    let mut days = Vec::new();
    let mut onset = None;
    let mut lift = None;
    let mut prev_flagged = false;
    for r in &reports {
        let flagged = r
            .detections
            .iter()
            .any(|d| d.country == country("TR") && d.domain == "twitter.com");
        if flagged && !prev_flagged && onset.is_none() {
            onset = Some(r.window);
        }
        if !flagged && prev_flagged && onset.is_some() && lift.is_none() {
            lift = Some(r.window);
        }
        prev_flagged = flagged;
        days.push((r.window, r.measurements, flagged));
    }

    println!("=== timeline: Turkey blocks twitter.com on day 10, lifts on day 20 ===");
    println!(
        "({} visits on one continuously-running world; {} policy events; one detector window per day)\n",
        outcome.report.visits, outcome.policy_changes_applied
    );
    print_table(
        &["day", "measurements", "TR flagged"],
        &days
            .iter()
            .map(|(d, m, f)| {
                vec![
                    d.to_string(),
                    m.to_string(),
                    if *f {
                        "FILTERED".into()
                    } else {
                        "-".to_string()
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &["event", "ground truth", "detected"],
        &[
            vec![
                "block onset".into(),
                format!("day {ONSET_DAY}"),
                onset.map(|d| format!("day {d}")).unwrap_or("missed".into()),
            ],
            vec![
                "block lifted".into(),
                format!("day {LIFT_DAY}"),
                lift.map(|d| format!("day {d}")).unwrap_or("missed".into()),
            ],
        ],
    );

    write_results(
        "timeline",
        &Timeline {
            days,
            onset_day: onset,
            lift_day: lift,
            policy_changes_applied: outcome.policy_changes_applied,
            rollups: outcome
                .rollups
                .iter()
                .map(|r| (r.at.as_secs() / 86_400, r.visits, r.collected))
                .collect(),
            visits: outcome.report.visits,
        },
    );
}
