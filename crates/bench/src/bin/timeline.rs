//! Longitudinal extension experiment — censorship onset and lifting.
//!
//! Not a numbered figure in the paper, but its core motivation (§1):
//! censorship "varies over time in response to changing social or
//! political conditions (e.g., a national election)" and measuring it
//! requires *continuous* collection. We simulate a 30-day deployment in
//! which Turkey switches on a Twitter block at day 10 and lifts it at
//! day 20 (as happened in March 2014), and show the windowed detector
//! localising both transitions to the correct day.

use bench::{print_table, seed, write_results};
use censor::national::NationalCensor;
use censor::policy::{CensorPolicy, Mechanism};
use encore::coordination::SchedulingStrategy;
use encore::delivery::OriginSite;
use encore::system::EncoreSystem;
use encore::tasks::{MeasurementId, MeasurementTask, TaskSpec};
use encore::{FilteringDetector, GeoDb};
use netsim::geo::{country, World};
use netsim::http::{ContentType, HttpResponse};
use netsim::network::{ConstHandler, Network};
use population::{run_deployment, Audience, DeploymentConfig};
use serde::Serialize;
use sim_core::{SimDuration, SimRng, SimTime};

#[derive(Serialize)]
struct Timeline {
    days: Vec<(u64, usize, bool)>, // (day, measurements, TR flagged)
    onset_day: Option<u64>,
    lift_day: Option<u64>,
}

fn main() {
    let world = World::builtin();
    let mut net = Network::new(world.clone());
    net.add_server(
        "twitter.com",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 500))),
    );

    // The March-2014-style block: on at day 10, lifted at day 20.
    let policy = CensorPolicy::named("tr-election-block")
        .block_domain("twitter.com", Mechanism::DnsNxDomain);
    let censor = NationalCensor::new(country("TR"), policy)
        .active_from(SimTime::from_secs(10 * 86_400))
        .active_until(SimTime::from_secs(20 * 86_400));
    net.add_middlebox(Box::new(censor));

    let tasks = vec![MeasurementTask {
        id: MeasurementId(0),
        spec: TaskSpec::Image {
            url: "http://twitter.com/favicon.ico".into(),
        },
    }];
    let origins = vec![
        OriginSite::academic("origin-a.example").with_popularity(5.0),
        OriginSite::academic("origin-b.example").with_popularity(5.0),
    ];
    let mut sys = EncoreSystem::deploy(
        &mut net,
        tasks,
        SchedulingStrategy::RoundRobin,
        origins,
        country("US"),
    );

    let mut rng = SimRng::new(seed());
    let audience = Audience::world(&world);
    let config = DeploymentConfig {
        duration: SimDuration::from_days(30),
        visits_per_day_per_weight: 60.0,
        ..DeploymentConfig::default()
    };
    let log = run_deployment(&mut net, &mut sys, &audience, &config, &mut rng);

    let geo = GeoDb::from_allocator(&net.allocator);
    let detector = FilteringDetector::default();
    let reports =
        detector.detect_windows(&sys.collection.records(), &geo, SimDuration::from_days(1));

    let mut days = Vec::new();
    let mut onset = None;
    let mut lift = None;
    let mut prev_flagged = false;
    for r in &reports {
        let flagged = r
            .detections
            .iter()
            .any(|d| d.country == country("TR") && d.domain == "twitter.com");
        if flagged && !prev_flagged && onset.is_none() {
            onset = Some(r.window);
        }
        if !flagged && prev_flagged && onset.is_some() && lift.is_none() {
            lift = Some(r.window);
        }
        prev_flagged = flagged;
        days.push((r.window, r.measurements, flagged));
    }

    println!("=== timeline: Turkey blocks twitter.com on day 10, lifts on day 20 ===");
    println!("({} visits; one detector window per day)\n", log.len());
    print_table(
        &["day", "measurements", "TR flagged"],
        &days
            .iter()
            .map(|(d, m, f)| {
                vec![
                    d.to_string(),
                    m.to_string(),
                    if *f {
                        "FILTERED".into()
                    } else {
                        "-".to_string()
                    },
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &["event", "ground truth", "detected"],
        &[
            vec![
                "block onset".into(),
                "day 10".into(),
                onset.map(|d| format!("day {d}")).unwrap_or("missed".into()),
            ],
            vec![
                "block lifted".into(),
                "day 20".into(),
                lift.map(|d| format!("day {d}")).unwrap_or("missed".into()),
            ],
        ],
    );

    write_results(
        "timeline",
        &Timeline {
            days,
            onset_day: onset,
            lift_day: lift,
        },
    );
}
