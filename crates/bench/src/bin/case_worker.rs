//! Shard worker process for simcheck's generated worlds.
//!
//! Spawned by the transport oracle's `ProcessTransport`: reads a
//! broadcast [`simcheck::CaseSpec`] frame and a job frame on stdin,
//! regenerates the coordinator's generated world from its
//! `(class, seed)` pair, runs its shard, and streams the outcome back
//! over stdout in bounded frame chunks under the credit window. Exit
//! code 0 on success; on failure an ERROR frame plus exit code 1.

use population::transport::worker_main;
use simcheck::CaseSpec;

fn main() {
    std::process::exit(worker_main::<CaseSpec>());
}
