//! §6.3 — "Will webmasters install Encore?" (cost side)
//!
//! Quantifies the paper's cost claims: "our prototype adds only 100 bytes
//! to each origin page and requires no additional requests or connections
//! between the client and the origin server … measurement tasks that
//! detect filtering of a domain (i.e., by loading small images) incur
//! overheads that are usually an insignificant fraction of a page's
//! network usage."

use bench::fixtures::RunArgs;
use bench::{print_table, PaperWorld};
use encore::delivery::{render_snippet, render_task_js, SNIPPET_BYTES};
use encore::pipeline::{GenerationConfig, TaskGenerator};
use encore::tasks::TaskType;
use serde::Serialize;
use sim_core::Cdf;
use websim::generator::WebConfig;

#[derive(Serialize)]
struct Overhead {
    snippet_bytes: usize,
    task_js_bytes: Vec<(String, usize)>,
    median_page_kb: f64,
    per_task_fetch_bytes: Vec<(String, u64)>,
    image_task_overhead_fraction_of_page: f64,
}

fn main() {
    let args = RunArgs::parse();
    let snippet = render_snippet("coordinator.encore-repro.net");

    // Typical fetched bytes per task type, from the generated task pool.
    let mut pw = PaperWorld::build(&WebConfig::default(), args.seed);
    let hars = pw.fetch_corpus_hars();
    let page_sizes: Vec<f64> = hars
        .iter()
        .filter(|h| h.page_ok)
        .map(|h| h.total_bytes() as f64 / 1_000.0)
        .collect();
    let median_page_kb = Cdf::new(page_sizes).median().unwrap_or(0.0);

    let tasks = pw.generate_tasks(
        &hars,
        GenerationConfig {
            max_image_bytes: 1_000,
            ..GenerationConfig::default()
        },
    );
    let _ = TaskGenerator::default();

    // Look up fetched-byte cost per task type from HAR ground truth.
    let mut byte_cost: std::collections::BTreeMap<TaskType, (u64, u64)> =
        std::collections::BTreeMap::new();
    for t in &tasks {
        let url = t.spec.target_url();
        let bytes = hars
            .iter()
            .flat_map(|h| h.entries.iter())
            .find(|e| e.url == url)
            .map(|e| e.body_bytes)
            .or_else(|| {
                // Iframe tasks: cost is the whole page.
                hars.iter()
                    .find(|h| h.page_url == url)
                    .map(|h| h.total_bytes())
            })
            .unwrap_or(0);
        let entry = byte_cost.entry(t.spec.task_type()).or_default();
        entry.0 += bytes;
        entry.1 += 1;
    }

    let per_task: Vec<(String, u64)> = byte_cost
        .iter()
        .map(|(tt, (sum, n))| (tt.to_string(), if *n == 0 { 0 } else { sum / n }))
        .collect();

    let avg_image = per_task
        .iter()
        .find(|(t, _)| t == "image")
        .map(|&(_, b)| b)
        .unwrap_or(0);
    let image_fraction = avg_image as f64 / (median_page_kb * 1_000.0);

    let js_sizes: Vec<(String, usize)> = {
        let mut sizes = Vec::new();
        for tt in TaskType::ALL {
            if let Some(task) = tasks.iter().find(|t| t.spec.task_type() == tt) {
                sizes.push((
                    tt.to_string(),
                    render_task_js(task, "collector.encore-repro.net").len(),
                ));
            }
        }
        sizes
    };

    let result = Overhead {
        snippet_bytes: snippet.len(),
        task_js_bytes: js_sizes.clone(),
        median_page_kb,
        per_task_fetch_bytes: per_task.clone(),
        image_task_overhead_fraction_of_page: image_fraction,
    };

    println!("=== §6.3 install & measurement overhead ===\n");
    println!("install snippet ({} bytes): {snippet}\n", snippet.len());
    print_table(
        &["task type", "avg fetched bytes", "task JS bytes"],
        &per_task
            .iter()
            .map(|(t, b)| {
                let js = js_sizes
                    .iter()
                    .find(|(n, _)| n == t)
                    .map(|(_, s)| s.to_string())
                    .unwrap_or_default();
                vec![t.clone(), b.to_string(), js]
            })
            .collect::<Vec<_>>(),
    );
    println!();
    print_table(
        &["claim", "paper", "measured"],
        &[
            vec![
                "snippet overhead per origin page".into(),
                "~100 bytes".into(),
                format!("{} bytes (accounted as {SNIPPET_BYTES})", snippet.len()),
            ],
            vec![
                "image task vs median page weight".into(),
                "insignificant".into(),
                format!(
                    "{avg_image} bytes = {:.3}% of {median_page_kb:.0} KB",
                    100.0 * image_fraction
                ),
            ],
        ],
    );
    args.write_results("overhead", &result);
}
