//! Figure 7 — "Comparison between load times for cached and uncached
//! images from 1,099 Encore clients. Cached images typically load within
//! tens of milliseconds, whereas uncached usually take at least 50 ms
//! longer to load."
//!
//! This is the measurement that validates the inline-frame task's
//! cache-timing inference. Each of 1,099 globally distributed clients
//! loads a single-pixel image uncached, then again from cache; we report
//! the three box plots (uncached, cached, difference) and the fraction of
//! clients whose difference exceeds the 50 ms decision threshold.

use bench::fixtures::RunArgs;
use bench::print_table;
use browser::{BrowserClient, Engine};
use netsim::geo::{country, World};
use netsim::http::{ContentType, HttpResponse};
use netsim::network::{ConstHandler, Network};
use population::Audience;
use serde::Serialize;
use sim_core::{FiveNumber, SimRng, SimTime};

#[derive(Serialize)]
struct Fig7 {
    clients: usize,
    uncached_ms: FiveNumber,
    cached_ms: FiveNumber,
    difference_ms: FiveNumber,
    frac_difference_over_50ms: f64,
    frac_cached_under_50ms: f64,
}

fn main() {
    let args = RunArgs::parse();
    let world = World::with_long_tail(170);
    let mut net = Network::new(world.clone());
    net.add_server(
        "pixel.encore-repro.net",
        country("US"),
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, 68))),
    );
    let root = SimRng::new(args.seed);
    let mut sample_rng = root.fork("fig7-sampling");
    let audience = Audience::world(&world);

    let n_clients = 1_099; // the paper's exact client count
    let mut uncached = Vec::with_capacity(n_clients);
    let mut cached = Vec::with_capacity(n_clients);
    let mut diff = Vec::with_capacity(n_clients);

    for i in 0..n_clients {
        let visitor = audience.sample(&mut sample_rng);
        let mut client = BrowserClient::new(
            &mut net,
            visitor.country,
            visitor.isp,
            Engine::Chrome,
            &root,
        );
        let t = SimTime::from_secs(i as u64 * 10);
        // Unique URL per client so the shared server never interferes;
        // each browser cache starts cold.
        let url = format!("http://pixel.encore-repro.net/p{i}.png");
        let cold = client.load_image(&mut net, &url, t);
        let warm = client.load_image(&mut net, &url, t + sim_core::SimDuration::from_secs(2));
        if cold.event != browser::LoadEvent::OnLoad || !warm.from_cache {
            // Transient failure: the paper's data also excluded clients
            // that failed to complete both loads.
            continue;
        }
        let u = cold.elapsed.as_millis_f64();
        let c = warm.elapsed.as_millis_f64();
        uncached.push(u);
        cached.push(c);
        diff.push(u - c);
    }

    let result = Fig7 {
        clients: uncached.len(),
        uncached_ms: FiveNumber::of(&uncached).expect("non-empty"),
        cached_ms: FiveNumber::of(&cached).expect("non-empty"),
        difference_ms: FiveNumber::of(&diff).expect("non-empty"),
        frac_difference_over_50ms: diff.iter().filter(|d| **d >= 50.0).count() as f64
            / diff.len() as f64,
        frac_cached_under_50ms: cached.iter().filter(|c| **c <= 50.0).count() as f64
            / cached.len() as f64,
    };

    println!("=== Figure 7: cached vs uncached image load times ===");
    println!("clients completing both loads: {}", result.clients);
    println!();
    let row = |name: &str, f: &FiveNumber| {
        vec![
            name.to_string(),
            format!("{:.1}", f.min),
            format!("{:.1}", f.q1),
            format!("{:.1}", f.median),
            format!("{:.1}", f.q3),
            format!("{:.1}", f.max),
            format!("{:.1}", f.mean),
        ]
    };
    print_table(
        &["series", "min", "q1", "median", "q3", "max", "mean"],
        &[
            row("uncached (ms)", &result.uncached_ms),
            row("cached (ms)", &result.cached_ms),
            row("difference (ms)", &result.difference_ms),
        ],
    );
    println!();
    print_table(
        &["claim", "paper", "measured"],
        &[
            vec![
                "cached loads within tens of ms".into(),
                "typical".into(),
                format!(
                    "median {:.1} ms, {:.0}% under 50 ms",
                    result.cached_ms.median,
                    100.0 * result.frac_cached_under_50ms
                ),
            ],
            vec![
                "uncached >=50 ms slower than cached".into(),
                "most clients".into(),
                format!("{:.1}%", 100.0 * result.frac_difference_over_50ms),
            ],
        ],
    );
    args.write_results("fig7", &result);
}
