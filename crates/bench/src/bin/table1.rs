//! Table 1 — "Measurement tasks use several mechanisms to discover
//! whether Web resources are filtered."
//!
//! Regenerates the table as a capability matrix: each task mechanism run
//! against the unfiltered control and all seven §7.1 filtering varieties,
//! on Chrome and Firefox. A mechanism "detects" a variety when it
//! reports success on the control and failure under the variety. The
//! table also verifies each mechanism's listed limitation:
//!
//! * images: explicit onload/onerror feedback;
//! * style sheets: only non-empty sheets;
//! * inline frames: cache-timing inference, cacheable-image pages only;
//! * scripts: Chrome only (onload iff HTTP 200).

use bench::fixtures::RunArgs;
use bench::print_table;
use browser::{BrowserClient, Engine};
use censor::testbed::{FilterVariety, Testbed};
use encore::tasks::{
    execute_task, MeasurementId, MeasurementTask, TaskOutcome, TaskSpec, TaskType,
    IFRAME_CACHE_THRESHOLD,
};
use netsim::geo::{country, IspClass, World};
use netsim::network::Network;
use serde::Serialize;
use sim_core::{SimRng, SimTime};
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Table1 {
    /// (task type, engine, variety) → outcome string.
    matrix: Vec<(String, String, String, String)>,
    /// Mechanisms correctly detecting all seven varieties on their
    /// supported engine.
    fully_detecting: Vec<String>,
}

fn spec_for(task_type: TaskType, tb: &Testbed, v: FilterVariety) -> TaskSpec {
    match task_type {
        TaskType::Image => TaskSpec::Image {
            url: tb.favicon_url(v),
        },
        TaskType::Stylesheet => TaskSpec::Stylesheet {
            url: tb.style_url(v),
        },
        TaskType::Script => TaskSpec::Script {
            url: tb.script_url(v),
        },
        TaskType::Iframe => TaskSpec::Iframe {
            page_url: tb.page_url(v),
            probe_image_url: format!("http://{}/embedded.png", v.hostname()),
            threshold: IFRAME_CACHE_THRESHOLD,
        },
    }
}

fn main() {
    let args = RunArgs::parse();
    let mut matrix = Vec::new();
    let mut detects: BTreeMap<(TaskType, Engine), (bool, usize)> = BTreeMap::new();

    for engine in [Engine::Chrome, Engine::Firefox] {
        for task_type in TaskType::ALL {
            let mut control_ok = false;
            let mut detected = 0usize;
            for variety in FilterVariety::ALL {
                // Fresh network per cell: no cache contamination.
                let mut net = Network::ideal(World::builtin());
                let tb = Testbed::install(&mut net);
                let root = SimRng::new(0x7AB1E);
                let mut client = BrowserClient::new(
                    &mut net,
                    country("DE"),
                    IspClass::Residential,
                    engine,
                    &root,
                );
                let spec = spec_for(task_type, &tb, variety);
                if !spec.compatible_with(engine) {
                    matrix.push((
                        task_type.to_string(),
                        engine.to_string(),
                        variety.slug().to_string(),
                        "not-scheduled".to_string(),
                    ));
                    continue;
                }
                let task = MeasurementTask {
                    id: MeasurementId(0),
                    spec,
                };
                let exec = execute_task(&task, &mut client, &mut net, SimTime::ZERO);
                assert!(
                    !exec.executed_untrusted_code,
                    "{task_type}/{engine}: executed untrusted code"
                );
                let outcome = match exec.outcome {
                    TaskOutcome::Success => "success",
                    TaskOutcome::Failure => "failure",
                };
                if variety == FilterVariety::Control {
                    control_ok = exec.outcome == TaskOutcome::Success;
                } else if exec.outcome == TaskOutcome::Failure {
                    detected += 1;
                }
                matrix.push((
                    task_type.to_string(),
                    engine.to_string(),
                    variety.slug().to_string(),
                    outcome.to_string(),
                ));
            }
            detects.insert((task_type, engine), (control_ok, detected));
        }
    }

    println!("=== Table 1: measurement mechanisms vs filtering varieties ===");
    println!("(success on control + failure under a variety = detection)\n");
    let mut rows = Vec::new();
    for engine in [Engine::Chrome, Engine::Firefox] {
        for task_type in TaskType::ALL {
            let mut row = vec![task_type.to_string(), engine.to_string()];
            for variety in FilterVariety::ALL {
                let cell = matrix
                    .iter()
                    .find(|(t, e, v, _)| {
                        *t == task_type.to_string()
                            && *e == engine.to_string()
                            && *v == variety.slug()
                    })
                    .map(|(_, _, _, o)| o.clone())
                    .unwrap_or_default();
                row.push(match cell.as_str() {
                    "success" => "ok".into(),
                    "failure" => "FILT".into(),
                    "not-scheduled" => "n/a".into(),
                    other => other.into(),
                });
            }
            rows.push(row);
        }
    }
    let mut headers: Vec<&str> = vec!["task", "engine"];
    let slugs: Vec<String> = FilterVariety::ALL
        .iter()
        .map(|v| v.slug().to_string())
        .collect();
    headers.extend(slugs.iter().map(|s| s.as_str()));
    print_table(&headers, &rows);

    println!();
    let mut fully = Vec::new();
    let mut summary_rows = Vec::new();
    for ((task_type, engine), (control_ok, detected)) in &detects {
        let verdict = if *control_ok && *detected == 7 {
            fully.push(format!("{task_type}/{engine}"));
            "detects all 7 varieties"
        } else if !control_ok {
            "control failed (unusable)"
        } else {
            "partial"
        };
        summary_rows.push(vec![
            task_type.to_string(),
            engine.to_string(),
            control_ok.to_string(),
            format!("{detected}/7"),
            verdict.to_string(),
        ]);
    }
    print_table(
        &[
            "task",
            "engine",
            "control ok",
            "varieties detected",
            "verdict",
        ],
        &summary_rows,
    );

    println!("\npaper shape: image/stylesheet detect everywhere; script is");
    println!("Chrome-only (not scheduled elsewhere); iframe detects via cache timing.");

    args.write_results(
        "table1",
        &Table1 {
            matrix,
            fully_detecting: fully,
        },
    );
}
