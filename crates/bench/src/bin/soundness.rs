//! §7.1 — "Are measurement tasks sound?"
//!
//! Reproduces the testbed experiment: "we built a Web censorship testbed
//! … For three months, we instructed approximately 30% of clients to
//! measure resources hosted by the testbed (or unfiltered control
//! resources) using the four task types."
//!
//! Expected shape:
//! * explicit-feedback tasks (image / stylesheet / script) report failure
//!   for ~100% of measurements of filtered varieties (no missed
//!   detections) and success for almost all control measurements;
//! * false-positive rates track network quality — "clients in India, a
//!   country with notoriously unreliable network connectivity,
//!   contributed to a 5% false positive rate for images";
//! * the iframe task is noisier (timing-based) but still separates
//!   filtered from control.

use bench::fixtures::RunArgs;
use bench::print_table;
use censor::testbed::{FilterVariety, Testbed};
use encore::coordination::SchedulingStrategy;
use encore::delivery::OriginSite;
use encore::system::EncoreSystem;
use encore::tasks::{
    MeasurementId, MeasurementTask, TaskOutcome, TaskSpec, TaskType, IFRAME_CACHE_THRESHOLD,
};
use encore::GeoDb;
use netsim::geo::{country, World};
use netsim::network::Network;
use population::{run_deployment, Audience, DeploymentConfig};
use serde::Serialize;
use sim_core::{SimDuration, SimRng};
use std::collections::BTreeMap;

fn testbed_tasks(tb: &Testbed) -> Vec<MeasurementTask> {
    let mut tasks = Vec::new();
    let mut id = 0u64;
    let mut push = |spec: TaskSpec| {
        tasks.push(MeasurementTask {
            id: MeasurementId(id),
            spec,
        });
        id += 1;
    };
    for v in FilterVariety::ALL {
        push(TaskSpec::Image {
            url: tb.favicon_url(v),
        });
        push(TaskSpec::Stylesheet {
            url: tb.style_url(v),
        });
        push(TaskSpec::Script {
            url: tb.script_url(v),
        });
        push(TaskSpec::Iframe {
            page_url: tb.page_url(v),
            probe_image_url: format!("http://{}/embedded.png", v.hostname()),
            threshold: IFRAME_CACHE_THRESHOLD,
        });
    }
    tasks
}

#[derive(Serialize, Default, Clone, Copy)]
struct Rates {
    n_filtered: u64,
    missed_detections: u64,
    n_control: u64,
    false_positives: u64,
}

#[derive(Serialize)]
struct Soundness {
    total_measurements: usize,
    by_task: Vec<(String, Rates)>,
    india_image_fp_rate: f64,
    us_image_fp_rate: f64,
}

fn main() {
    let args = RunArgs::parse();
    let world = World::with_long_tail(170);
    let mut net = Network::new(world.clone());
    let tb = Testbed::install(&mut net);
    let tasks = testbed_tasks(&tb);

    let origins = vec![
        OriginSite::academic("prof-a.example").with_popularity(3.0),
        OriginSite::academic("prof-b.example").with_popularity(2.0),
        OriginSite::academic("blog-c.example")
            .with_referer_stripping()
            .with_popularity(3.0),
    ];
    let mut sys = EncoreSystem::deploy(
        &mut net,
        tasks,
        SchedulingStrategy::RoundRobin,
        origins,
        country("US"),
    );

    let mut rng = SimRng::new(args.seed);
    let audience = Audience::world(&world);
    let config = DeploymentConfig {
        duration: SimDuration::from_days(90), // the paper's three months
        visits_per_day_per_weight: 40.0,
        ..DeploymentConfig::default()
    };
    let _log = run_deployment(&mut net, &mut sys, &audience, &config, &mut rng);

    let geo = GeoDb::from_allocator(&net.allocator);
    let records = sys.collection.records();

    let mut by_task: BTreeMap<TaskType, Rates> = BTreeMap::new();
    let mut india_images = (0u64, 0u64); // (control n, control failures)
    let mut us_images = (0u64, 0u64);
    let mut results = 0usize;

    for rec in &records {
        if rec.is_crawler() {
            continue; // "after excluding erroneously contributed measurements"
        }
        let Some(outcome) = rec.submission.outcome else {
            continue;
        };
        results += 1;
        let Some(host) = rec.target_domain() else {
            continue;
        };
        let Some(variety) = FilterVariety::from_hostname(&host) else {
            continue;
        };
        let stats = by_task.entry(rec.submission.task_type).or_default();
        if variety.expect_filtered() {
            stats.n_filtered += 1;
            if outcome == TaskOutcome::Success {
                stats.missed_detections += 1;
            }
        } else {
            stats.n_control += 1;
            if outcome == TaskOutcome::Failure {
                stats.false_positives += 1;
            }
            if rec.submission.task_type == TaskType::Image {
                match geo.lookup(rec.client_ip) {
                    Some(c) if c == country("IN") => {
                        india_images.0 += 1;
                        if outcome == TaskOutcome::Failure {
                            india_images.1 += 1;
                        }
                    }
                    Some(c) if c == country("US") => {
                        us_images.0 += 1;
                        if outcome == TaskOutcome::Failure {
                            us_images.1 += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    let rate = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    let india_fp = rate(india_images.1, india_images.0);
    let us_fp = rate(us_images.1, us_images.0);

    println!("=== §7.1 soundness: four task types vs the 7-variety testbed ===");
    println!("result measurements collected: {results} (paper: 8,573 for explicit types)\n");
    let mut rows = Vec::new();
    for (tt, r) in &by_task {
        rows.push(vec![
            tt.to_string(),
            r.n_filtered.to_string(),
            format!("{:.2}%", 100.0 * rate(r.missed_detections, r.n_filtered)),
            r.n_control.to_string(),
            format!("{:.2}%", 100.0 * rate(r.false_positives, r.n_control)),
        ]);
    }
    print_table(
        &[
            "task",
            "filtered n",
            "missed",
            "control n",
            "false positives",
        ],
        &rows,
    );
    println!();
    print_table(
        &["claim", "paper", "measured"],
        &[
            vec![
                "explicit tasks miss no filtering".into(),
                "no misses".into(),
                format!(
                    "image misses {:.2}%",
                    100.0
                        * rate(
                            by_task
                                .get(&TaskType::Image)
                                .map(|r| r.missed_detections)
                                .unwrap_or(0),
                            by_task
                                .get(&TaskType::Image)
                                .map(|r| r.n_filtered)
                                .unwrap_or(0)
                        )
                ),
            ],
            vec![
                "India image false-positive rate".into(),
                "~5%".into(),
                format!("{:.1}%", 100.0 * india_fp),
            ],
            vec![
                "US image false-positive rate".into(),
                "low".into(),
                format!("{:.1}%", 100.0 * us_fp),
            ],
        ],
    );

    args.write_results(
        "soundness",
        &Soundness {
            total_measurements: results,
            by_task: by_task
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            india_image_fp_rate: india_fp,
            us_image_fp_rate: us_fp,
        },
    );
}
