//! Generate the researcher-facing Markdown report (§3.1's "report them
//! to a central authority") from a fresh world-scale run — the artifact
//! a deployed Encore would publish, in the spirit of ONI country
//! profiles but grounded in continuous measurement.

use bench::fixtures::RunArgs;
use bench::fixtures::{deploy_us, favicon_tasks, install_image_targets, volunteer_origins};
use censor::registry::{install_world_censors, SAFE_TARGETS};
use encore::coordination::SchedulingStrategy;
use encore::reports::{country_reports, render_markdown};
use encore::{FilteringDetector, GeoDb};
use netsim::geo::World;
use netsim::network::Network;
use population::{run_deployment, Audience, DeploymentConfig};
use sim_core::{SimDuration, SimRng};

fn main() {
    let args = RunArgs::parse();
    let world = World::with_long_tail(170);
    let mut net = Network::new(world.clone());
    install_image_targets(&mut net, &SAFE_TARGETS);
    install_world_censors(&mut net);

    let mut sys = deploy_us(
        &mut net,
        favicon_tasks(&SAFE_TARGETS),
        SchedulingStrategy::RoundRobin,
        volunteer_origins("origin", 8, 2.0),
    );
    let mut rng = SimRng::new(args.seed);
    let config = DeploymentConfig {
        duration: SimDuration::from_days(21),
        visits_per_day_per_weight: 30.0,
        ..DeploymentConfig::default()
    };
    run_deployment(
        &mut net,
        &mut sys,
        &Audience::world(&world),
        &config,
        &mut rng,
    );

    let geo = GeoDb::from_allocator(&net.allocator);
    let reports = country_reports(
        &sys.collection.records(),
        &geo,
        &FilteringDetector::default(),
    );
    let markdown = render_markdown(&reports);

    // Print the flagged countries in full; elide the long healthy tail.
    for line in markdown.lines() {
        println!("{line}");
        if line.starts_with('#') && markdown.lines().count() > 400 {
            continue;
        }
    }
    if std::fs::create_dir_all("results").is_ok() {
        let _ = std::fs::write("results/report.md", &markdown);
        eprintln!("[written \"results/report.md\"]");
    }
    args.write_results("report", &reports);
}
