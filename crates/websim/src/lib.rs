//! # websim — the synthetic Web for the Encore reproduction
//!
//! Encore's feasibility analysis (paper §6.1) runs over real web content:
//! 178 Herdict-curated "high value" domains expanded to ~6,548 URLs, each
//! rendered to an HTTP Archive. This crate supplies the equivalent
//! substrate:
//!
//! * [`url`] — URL patterns (exact URL, domain, prefix — paper §5.1).
//! * [`site`] — sites as collections of pages and auxiliary resources,
//!   servable through `netsim`'s [`netsim::network::HttpHandler`].
//! * [`generator`] — a synthetic web generator whose content-size and
//!   cacheability distributions are calibrated so the pipeline reproduces
//!   the shapes of Figures 4–6.
//! * [`corpus`] — the generative corpus layer on top: Zipf rank
//!   popularity, scale-free cross-site links, multi-country demographic
//!   mixes, and benign-disruption events for standing worlds.
//! * [`search`] — the stand-in for "scraping site-specific results … from
//!   a popular search engine" used by the Pattern Expander.
//! * [`har`] — the HTTP Archive (HAR 1.2) data model consumed by the Task
//!   Generator.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod generator;
pub mod har;
pub mod search;
pub mod site;
pub mod url;

pub use corpus::{Corpus, CorpusConfig, CorpusError, CountryMix, Disruption, DisruptionKind};
pub use generator::{SyntheticWeb, WebConfig, WebConfigError};
pub use har::{Har, HarEntry};
pub use search::SearchIndex;
pub use site::{EmbedKind, EmbedRef, PageSpec, ResourceSpec, SiteContent, SiteHandler};
pub use url::UrlPattern;
