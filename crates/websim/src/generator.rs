//! Synthetic web generation, calibrated to the paper's Figures 4–6.
//!
//! The feasibility analysis of §6.1 measures three distributions over the
//! Herdict-derived corpus (178 domains, ≈6,548 URLs):
//!
//! * **Figure 4** — images per domain: ~70% of domains embed ≥1 image,
//!   almost all images are <5 KB, >60% of domains have single-packet
//!   (≤1 KB) images, and a third of domains host hundreds of them.
//! * **Figure 5** — page weight: spread roughly evenly over 0–2 MB with a
//!   long tail; over half of pages weigh ≥0.5 MB.
//! * **Figure 6** — cacheable images per page: ~70% of pages embed ≥1,
//!   half embed ≥5, but among pages ≤100 KB only ~30% embed any.
//!
//! The generator produces sites from three archetypes (text-heavy,
//! moderate, image-rich) whose mixture yields those marginals. Every knob
//! lives in [`WebConfig`] so the ablation benches can sweep them.

use crate::site::{EmbedKind, EmbedRef, PageSpec, ResourceSpec, SiteContent, SiteHandler};
use netsim::geo::{country, CountryCode};
use netsim::http::ContentType;
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use sim_core::dist::{LogNormal, Pareto, Sample};
use sim_core::SimRng;
use std::sync::Arc;

/// Site archetype, driving per-page image counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DomainProfile {
    /// Mostly prose; few or no images (API endpoints, plain blogs).
    TextHeavy,
    /// Typical org/news site.
    Moderate,
    /// Galleries, social media, photo-heavy news.
    ImageRich,
}

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WebConfig {
    /// Number of domains to generate (paper: 178 online domains).
    pub num_domains: usize,
    /// Archetype mixture (text, moderate, rich); normalised internally.
    pub profile_weights: [f64; 3],
    /// Median pages per domain ("most of these domains have more than 50
    /// pages").
    pub median_pages_per_domain: f64,
    /// Probability a page carries a heavy media blob (drives Figure 5's
    /// upper half).
    pub heavy_media_probability: f64,
    /// Probability an image resource is cacheable.
    pub image_cacheable_probability: f64,
    /// Probability a script is served with nosniff.
    pub script_nosniff_probability: f64,
    /// Probability a page embed points at a shared CDN rather than the
    /// site itself.
    pub cdn_embed_probability: f64,
    /// Probability a *page* has server-side side effects (shopping carts,
    /// logged-in mutations) — the Task Generator must skip these.
    pub page_side_effect_probability: f64,
}

impl Default for WebConfig {
    fn default() -> Self {
        WebConfig {
            num_domains: 178,
            profile_weights: [0.30, 0.35, 0.35],
            median_pages_per_domain: 70.0,
            heavy_media_probability: 0.55,
            image_cacheable_probability: 0.80,
            script_nosniff_probability: 0.5,
            cdn_embed_probability: 0.25,
            page_side_effect_probability: 0.05,
        }
    }
}

/// Why a [`WebConfig`] was rejected by [`WebConfig::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum WebConfigError {
    /// `num_domains == 0`: an empty corpus can host no measurements.
    NoDomains,
    /// `median_pages_per_domain` was non-positive, NaN, or infinite.
    InvalidPageCount(f64),
    /// A profile weight was negative/NaN, or all weights were zero.
    InvalidProfileWeights([f64; 3]),
    /// A probability knob was outside `[0, 1]` (field name, value).
    InvalidProbability(&'static str, f64),
}

impl std::fmt::Display for WebConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WebConfigError::NoDomains => write!(f, "num_domains must be at least 1"),
            WebConfigError::InvalidPageCount(v) => {
                write!(
                    f,
                    "median_pages_per_domain must be finite and positive, got {v}"
                )
            }
            WebConfigError::InvalidProfileWeights(w) => {
                write!(
                    f,
                    "profile_weights must be finite, non-negative, and not all zero, got {w:?}"
                )
            }
            WebConfigError::InvalidProbability(field, v) => {
                write!(f, "{field} must be a probability in [0, 1], got {v}")
            }
        }
    }
}

impl std::error::Error for WebConfigError {}

impl WebConfig {
    /// A small corpus for fast tests.
    pub fn small() -> WebConfig {
        WebConfig {
            num_domains: 12,
            median_pages_per_domain: 15.0,
            ..WebConfig::default()
        }
    }

    /// Reject degenerate parameters (zero sites or pages, NaN/negative
    /// weights, out-of-range probabilities) up front with a typed error,
    /// instead of panicking mid-generation deep inside a sampler.
    pub fn validate(&self) -> Result<(), WebConfigError> {
        if self.num_domains == 0 {
            return Err(WebConfigError::NoDomains);
        }
        if !self.median_pages_per_domain.is_finite() || self.median_pages_per_domain <= 0.0 {
            return Err(WebConfigError::InvalidPageCount(
                self.median_pages_per_domain,
            ));
        }
        let bad_weight = |w: f64| !w.is_finite() || w < 0.0;
        if self.profile_weights.iter().any(|&w| bad_weight(w))
            || self.profile_weights.iter().all(|&w| w == 0.0)
        {
            return Err(WebConfigError::InvalidProfileWeights(self.profile_weights));
        }
        for (name, v) in [
            ("heavy_media_probability", self.heavy_media_probability),
            (
                "image_cacheable_probability",
                self.image_cacheable_probability,
            ),
            (
                "script_nosniff_probability",
                self.script_nosniff_probability,
            ),
            ("cdn_embed_probability", self.cdn_embed_probability),
            (
                "page_side_effect_probability",
                self.page_side_effect_probability,
            ),
        ] {
            if !v.is_finite() || !(0.0..=1.0).contains(&v) {
                return Err(WebConfigError::InvalidProbability(name, v));
            }
        }
        Ok(())
    }
}

/// The generated web: content sites plus shared CDNs.
///
/// Sites are `Arc`-shared so a generated web is `Send + Sync`: the same
/// corpus can be installed on every shard of a sharded world and captured
/// by `WorldRecipe` mutation closures.
#[derive(Debug, Clone)]
pub struct SyntheticWeb {
    /// Content sites (the measurement-target corpus), in generation
    /// (= popularity-rank) order.
    pub sites: Vec<Arc<SiteContent>>,
    /// Shared CDN sites (bootstrap/jquery/common icons).
    pub cdns: Vec<Arc<SiteContent>>,
}

/// Countries where the corpus' servers live (weighted towards the US/EU,
/// like the real hosting market).
const HOSTING: [(&str, f64); 5] = [
    ("US", 0.55),
    ("DE", 0.15),
    ("NL", 0.10),
    ("GB", 0.10),
    ("SG", 0.10),
];

fn sample_image_bytes(rng: &mut SimRng) -> u64 {
    // Mixture matched to "almost all such images are less than 5 KB":
    // 45% tiny icons (150 B–1 KB), 42% small (1–5 KB), 13% photos.
    let u = rng.unit();
    if u < 0.45 {
        rng.range_u64(150, 1_000)
    } else if u < 0.87 {
        rng.range_u64(1_000, 5_000)
    } else {
        (LogNormal::from_median(15_000.0, 0.9).sample(rng) as u64).clamp(5_000, 120_000)
    }
}

fn profile_of(cfg: &WebConfig, rng: &mut SimRng) -> DomainProfile {
    let idx = rng
        .pick_weighted(&cfg.profile_weights)
        .expect("profile weights positive");
    [
        DomainProfile::TextHeavy,
        DomainProfile::Moderate,
        DomainProfile::ImageRich,
    ][idx]
}

fn domain_name(profile: DomainProfile, index: usize) -> String {
    // Names evoke the Herdict "high value" list: human-rights orgs, press
    // freedom groups, circumvention tools, social media.
    let (stem, tld) = match (profile, index % 4) {
        (DomainProfile::TextHeavy, 0) => ("rights-watch", "org"),
        (DomainProfile::TextHeavy, 1) => ("free-press", "org"),
        (DomainProfile::TextHeavy, 2) => ("exile-blog", "net"),
        (DomainProfile::TextHeavy, _) => ("circumvent-tool", "org"),
        (DomainProfile::Moderate, 0) => ("daily-news", "com"),
        (DomainProfile::Moderate, 1) => ("opposition-party", "org"),
        (DomainProfile::Moderate, 2) => ("diaspora-forum", "net"),
        (DomainProfile::Moderate, _) => ("independent-radio", "com"),
        (DomainProfile::ImageRich, 0) => ("photo-journal", "com"),
        (DomainProfile::ImageRich, 1) => ("protest-gallery", "org"),
        (DomainProfile::ImageRich, 2) => ("street-media", "net"),
        (DomainProfile::ImageRich, _) => ("video-share", "com"),
    };
    format!("{stem}-{index}.{tld}")
}

fn build_cdn(name: &str) -> SiteContent {
    let mut cdn = SiteContent::new(name);
    cdn.add_resource(ResourceSpec {
        path: "/bootstrap.min.css".into(),
        content_type: ContentType::Stylesheet,
        bytes: 23_000,
        cacheable: true,
        nosniff: false,
        side_effects: false,
    });
    cdn.add_resource(ResourceSpec {
        path: "/jquery.min.js".into(),
        content_type: ContentType::Script,
        bytes: 33_000,
        cacheable: true,
        nosniff: true,
        side_effects: false,
    });
    // The "Facebook thumbs-up" problem (paper §4.3.2): an icon embedded by
    // *many* pages, likely already in the browser cache — the iframe task
    // must not use such images as its cache probe.
    cdn.add_resource(ResourceSpec {
        path: "/like-icon.png".into(),
        content_type: ContentType::Image,
        bytes: 700,
        cacheable: true,
        nosniff: false,
        side_effects: false,
    });
    cdn
}

fn build_site(
    cfg: &WebConfig,
    profile: DomainProfile,
    index: usize,
    cdns: &[Arc<SiteContent>],
    rng: &mut SimRng,
) -> SiteContent {
    let mut site = SiteContent::new(domain_name(profile, index));

    // Site-wide shared assets: favicon, logo, site CSS, site JS. Every
    // page embeds a subset of these, so a 50-page HAR sample sees them
    // once but they make nearly every domain image-measurable.
    site.add_resource(ResourceSpec {
        path: "/favicon.ico".into(),
        content_type: ContentType::Image,
        bytes: rng.range_u64(200, 900),
        cacheable: true,
        nosniff: false,
        side_effects: false,
    });
    site.add_resource(ResourceSpec {
        path: "/logo.png".into(),
        content_type: ContentType::Image,
        bytes: rng.range_u64(800, 4_500),
        cacheable: true,
        nosniff: false,
        side_effects: false,
    });
    site.add_resource(ResourceSpec {
        path: "/site.css".into(),
        content_type: ContentType::Stylesheet,
        bytes: rng.range_u64(4_000, 40_000),
        cacheable: true,
        nosniff: false,
        side_effects: false,
    });
    site.add_resource(ResourceSpec {
        path: "/site.js".into(),
        content_type: ContentType::Script,
        bytes: rng.range_u64(15_000, 120_000),
        cacheable: true,
        nosniff: rng.chance(cfg.script_nosniff_probability),
        side_effects: false,
    });

    let page_count = (LogNormal::from_median(cfg.median_pages_per_domain, 0.7).sample(rng)
        as usize)
        .clamp(3, 400);

    // TextHeavy sites skip images entirely ~85% of the time (these are
    // Figure 4's "30% of domains embed no image" mass).
    let site_has_images = match profile {
        DomainProfile::TextHeavy => rng.chance(0.15),
        _ => true,
    };

    for p in 0..page_count {
        let mut embeds = Vec::new();
        let mut weight: u64 = 0;
        let html_bytes =
            (LogNormal::from_median(22_000.0, 0.8).sample(rng) as u64).clamp(2_000, 200_000);
        weight += html_bytes;

        // Shared assets on every page.
        embeds.push(EmbedRef {
            url: site.url("/site.css"),
            kind: EmbedKind::Stylesheet,
        });
        embeds.push(EmbedRef {
            url: site.url("/site.js"),
            kind: EmbedKind::Script,
        });
        if site_has_images {
            embeds.push(EmbedRef {
                url: site.url("/logo.png"),
                kind: EmbedKind::Image,
            });
        }

        // CDN embeds (cross-origin).
        if rng.chance(cfg.cdn_embed_probability) && !cdns.is_empty() {
            let cdn = rng.pick(cdns);
            embeds.push(EmbedRef {
                url: cdn.url("/bootstrap.min.css"),
                kind: EmbedKind::Stylesheet,
            });
            if rng.chance(0.6) {
                embeds.push(EmbedRef {
                    url: cdn.url("/like-icon.png"),
                    kind: EmbedKind::Image,
                });
            }
        }

        // Page-specific images.
        let n_images = if !site_has_images {
            0
        } else {
            match profile {
                DomainProfile::TextHeavy => rng.range_u64(0, 3) as usize,
                DomainProfile::Moderate => rng.range_u64(0, 8) as usize,
                DomainProfile::ImageRich => rng.range_u64(8, 40) as usize,
            }
        };
        for i in 0..n_images {
            let bytes = sample_image_bytes(rng);
            let path = format!("/img/p{p}-i{i}.png");
            site.add_resource(ResourceSpec {
                path: path.clone(),
                content_type: ContentType::Image,
                bytes,
                cacheable: rng.chance(cfg.image_cacheable_probability),
                nosniff: false,
                side_effects: false,
            });
            weight += bytes;
            embeds.push(EmbedRef {
                url: site.url(&path),
                kind: EmbedKind::Image,
            });
        }

        // Page-specific script (analytics etc.) on some pages.
        if rng.chance(0.4) {
            let bytes = rng.range_u64(5_000, 90_000);
            let path = format!("/js/p{p}.js");
            site.add_resource(ResourceSpec {
                path: path.clone(),
                content_type: ContentType::Script,
                bytes,
                cacheable: true,
                nosniff: rng.chance(cfg.script_nosniff_probability),
                side_effects: false,
            });
            weight += bytes;
            embeds.push(EmbedRef {
                url: site.url(&path),
                kind: EmbedKind::Script,
            });
        }

        // Heavy media blob: Figure 5's 0.5–2 MB mass.
        let mut has_large_media = false;
        if rng.chance(cfg.heavy_media_probability) {
            let bytes = rng.range_u64(150_000, 1_900_000)
                + (Pareto::new(1.0, 1.6).sample(rng) * 20_000.0) as u64;
            let path = format!("/media/p{p}.bin");
            site.add_resource(ResourceSpec {
                path: path.clone(),
                content_type: ContentType::Other,
                bytes,
                cacheable: false,
                nosniff: false,
                side_effects: false,
            });
            weight += bytes;
            // Model as a script-like embed so HAR capture fetches it; the
            // Task Generator treats Other content as large media.
            embeds.push(EmbedRef {
                url: site.url(&path),
                kind: EmbedKind::Script,
            });
            has_large_media = bytes > 300_000;
        }

        let _ = weight; // page weight is measured via HAR capture

        site.add_page(PageSpec {
            path: format!("/page/{p}.html"),
            html_bytes,
            embeds,
            has_large_media,
            side_effects: rng.chance(cfg.page_side_effect_probability),
            popularity: Pareto::new(1.0, 1.1).sample(rng),
        });
    }
    site
}

impl SyntheticWeb {
    /// Generate a web corpus.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate [`WebConfig`]; callers with untrusted
    /// parameters should use [`SyntheticWeb::try_generate`].
    pub fn generate(cfg: &WebConfig, rng: &mut SimRng) -> SyntheticWeb {
        SyntheticWeb::try_generate(cfg, rng).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Generate a web corpus, rejecting degenerate configs with a typed
    /// error instead of panicking.
    pub fn try_generate(cfg: &WebConfig, rng: &mut SimRng) -> Result<SyntheticWeb, WebConfigError> {
        cfg.validate()?;
        let mut rng = rng.fork("websim-generator");
        let cdns: Vec<Arc<SiteContent>> = vec![
            Arc::new(build_cdn("cdn-alpha.example")),
            Arc::new(build_cdn("cdn-beta.example")),
        ];
        let mut sites = Vec::with_capacity(cfg.num_domains);
        for i in 0..cfg.num_domains {
            let profile = profile_of(cfg, &mut rng);
            let mut site_rng = rng.fork_indexed("site", i as u64);
            sites.push(Arc::new(build_site(cfg, profile, i, &cdns, &mut site_rng)));
        }
        Ok(SyntheticWeb { sites, cdns })
    }

    /// Install every site (and CDN) as a server in the network, hosted in
    /// a weighted-random hosting country.
    pub fn install(&self, network: &mut Network, rng: &mut SimRng) {
        let mut rng = rng.fork("websim-install");
        let weights: Vec<f64> = HOSTING.iter().map(|&(_, w)| w).collect();
        for site in self.sites.iter().chain(self.cdns.iter()) {
            let idx = rng.pick_weighted(&weights).expect("weights positive");
            let cc: CountryCode = country(HOSTING[idx].0);
            network.add_server(
                &site.domain,
                cc,
                Box::new(SiteHandler::new(Arc::clone(site))),
            );
        }
    }

    /// All content-site domains (not CDNs).
    ///
    /// The order is **guaranteed deterministic**: generation (= insertion)
    /// order, which for a corpus is also popularity-rank order. Goldens
    /// and interned-id assignment (first-seen order in `netsim`'s DNS
    /// interner) depend on this being byte-stable across runs — it never
    /// reflects map iteration order.
    pub fn domains(&self) -> Vec<String> {
        self.sites.iter().map(|s| s.domain.clone()).collect()
    }

    /// Look up a site by domain.
    pub fn site(&self, domain: &str) -> Option<&Arc<SiteContent>> {
        self.sites
            .iter()
            .chain(self.cdns.iter())
            .find(|s| s.domain == domain)
    }

    /// Total number of pages across all content sites.
    pub fn total_pages(&self) -> usize {
        self.sites.iter().map(|s| s.pages.len()).sum()
    }
}

/// Build a large, popular "social media" style site (facebook/youtube/
/// twitter stand-ins for §7.2): small favicon, lots of cacheable images,
/// enormous page count implied but only a handful instantiated.
pub fn social_site(domain: &str, rng: &mut SimRng) -> SiteContent {
    let mut s = SiteContent::new(domain);
    s.add_resource(ResourceSpec {
        path: "/favicon.ico".into(),
        content_type: ContentType::Image,
        bytes: 500,
        cacheable: true,
        nosniff: false,
        side_effects: false,
    });
    for i in 0..20 {
        s.add_resource(ResourceSpec {
            path: format!("/static/icon{i}.png"),
            content_type: ContentType::Image,
            bytes: rng.range_u64(300, 2_000),
            cacheable: true,
            nosniff: false,
            side_effects: false,
        });
        s.add_page(PageSpec {
            path: format!("/p/{i}"),
            html_bytes: rng.range_u64(40_000, 300_000),
            embeds: vec![
                EmbedRef {
                    url: s.url(&format!("/static/icon{i}.png")),
                    kind: EmbedKind::Image,
                },
                EmbedRef {
                    url: s.url("/favicon.ico"),
                    kind: EmbedKind::Image,
                },
            ],
            has_large_media: false,
            side_effects: true, // logged-in social pages mutate state
            popularity: 100.0 / (i + 1) as f64,
        });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::Cdf;

    fn corpus() -> SyntheticWeb {
        let mut rng = SimRng::new(0xFEED);
        SyntheticWeb::generate(&WebConfig::default(), &mut rng)
    }

    /// Compile-time regression guard: `SyntheticWeb`/`SiteHandler` held
    /// `Rc<SiteContent>` until PR 10, silently cutting generated webs off
    /// from every sharded/transported/streaming path.
    #[test]
    fn generated_web_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SyntheticWeb>();
        assert_send_sync::<SiteHandler>();
        assert_send_sync::<std::sync::Arc<SiteContent>>();
    }

    #[test]
    fn config_rejects_zero_domains() {
        let cfg = WebConfig {
            num_domains: 0,
            ..WebConfig::default()
        };
        assert_eq!(cfg.validate(), Err(WebConfigError::NoDomains));
        let mut rng = SimRng::new(1);
        assert!(SyntheticWeb::try_generate(&cfg, &mut rng).is_err());
    }

    #[test]
    fn config_rejects_degenerate_page_counts() {
        for bad in [0.0, -3.0, f64::NAN, f64::INFINITY] {
            let cfg = WebConfig {
                median_pages_per_domain: bad,
                ..WebConfig::default()
            };
            assert!(
                matches!(cfg.validate(), Err(WebConfigError::InvalidPageCount(_))),
                "median_pages_per_domain = {bad} must be rejected"
            );
        }
    }

    #[test]
    fn config_rejects_bad_profile_weights() {
        for bad in [[0.0, 0.0, 0.0], [1.0, -1.0, 1.0], [f64::NAN, 1.0, 1.0]] {
            let cfg = WebConfig {
                profile_weights: bad,
                ..WebConfig::default()
            };
            assert!(
                matches!(
                    cfg.validate(),
                    Err(WebConfigError::InvalidProfileWeights(_))
                ),
                "profile_weights = {bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn config_rejects_out_of_range_probabilities() {
        let cfg = WebConfig {
            cdn_embed_probability: 1.5,
            ..WebConfig::default()
        };
        assert_eq!(
            cfg.validate(),
            Err(WebConfigError::InvalidProbability(
                "cdn_embed_probability",
                1.5
            ))
        );
        let cfg = WebConfig {
            heavy_media_probability: f64::NAN,
            ..WebConfig::default()
        };
        assert!(matches!(
            cfg.validate(),
            Err(WebConfigError::InvalidProbability(
                "heavy_media_probability",
                _
            ))
        ));
    }

    #[test]
    fn domains_are_byte_stable_across_runs_and_calls() {
        let gen = |seed| {
            let mut rng = SimRng::new(seed);
            SyntheticWeb::generate(&WebConfig::small(), &mut rng)
        };
        let a = gen(0xD0_0D);
        let b = gen(0xD0_0D);
        // Same seed → byte-identical ordered domain list, call after call.
        let first = serde_json::to_string(&a.domains()).unwrap();
        assert_eq!(first, serde_json::to_string(&a.domains()).unwrap());
        assert_eq!(first, serde_json::to_string(&b.domains()).unwrap());
    }

    #[test]
    fn generates_requested_domain_count() {
        let web = corpus();
        assert_eq!(web.sites.len(), 178);
        assert_eq!(web.cdns.len(), 2);
        assert_eq!(web.domains().len(), 178);
    }

    #[test]
    fn generation_is_deterministic() {
        let mut r1 = SimRng::new(42);
        let mut r2 = SimRng::new(42);
        let a = SyntheticWeb::generate(&WebConfig::small(), &mut r1);
        let b = SyntheticWeb::generate(&WebConfig::small(), &mut r2);
        assert_eq!(a.domains(), b.domains());
        for (sa, sb) in a.sites.iter().zip(b.sites.iter()) {
            assert_eq!(sa.pages.len(), sb.pages.len(), "{}", sa.domain);
            assert_eq!(sa.resources.len(), sb.resources.len());
        }
    }

    #[test]
    fn domains_are_unique() {
        let web = corpus();
        let mut names = web.domains();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 178);
    }

    #[test]
    fn fig4_shape_most_domains_have_images_and_they_are_small() {
        let web = corpus();
        let mut image_counts = Vec::new();
        let mut tiny_counts = Vec::new();
        let mut all_images = 0usize;
        let mut small_images = 0usize;
        for site in &web.sites {
            let images: Vec<_> = site
                .resources
                .values()
                .filter(|r| r.content_type == ContentType::Image)
                .collect();
            image_counts.push(images.len() as f64);
            tiny_counts.push(images.iter().filter(|r| r.bytes <= 1_000).count() as f64);
            all_images += images.len();
            small_images += images.iter().filter(|r| r.bytes <= 5_000).count();
        }
        let cdf_all = Cdf::new(image_counts);
        // ≥65% of domains embed at least one image.
        assert!(
            1.0 - cdf_all.fraction_at_most(0.0) > 0.60,
            "domains with images: {}",
            1.0 - cdf_all.fraction_at_most(0.0)
        );
        // Almost all images are <5 KB.
        let small_frac = small_images as f64 / all_images as f64;
        assert!(small_frac > 0.80, "small fraction = {small_frac}");
        // A third-ish of domains host hundreds of single-packet images.
        let cdf_tiny = Cdf::new(tiny_counts);
        let hundreds = 1.0 - cdf_tiny.fraction_at_most(100.0);
        assert!(
            (0.18..0.60).contains(&hundreds),
            "domains with hundreds of tiny images: {hundreds}"
        );
    }

    #[test]
    fn fig5_shape_pages_are_heavy() {
        let web = corpus();
        // Approximate page weight from ground truth (same-site embeds).
        let mut weights = Vec::new();
        for site in web.sites.iter().take(60) {
            for path in site.pages.keys() {
                if let Some(w) = site.page_weight_lower_bound(path) {
                    weights.push(w as f64 / 1_000.0); // KB
                }
            }
        }
        let cdf = Cdf::new(weights);
        let heavy = 1.0 - cdf.fraction_at_most(500.0);
        assert!(
            (0.35..0.75).contains(&heavy),
            "pages ≥500 KB: {heavy} (want ≈half)"
        );
    }

    #[test]
    fn fig6_shape_cacheable_images_per_page() {
        let web = corpus();
        let mut per_page = Vec::new();
        let mut small_page_has_cacheable = Vec::new();
        for site in &web.sites {
            for (path, page) in &site.pages {
                let cacheable = page
                    .embeds
                    .iter()
                    .filter(|e| {
                        e.kind == EmbedKind::Image
                            && e.url.starts_with(&format!("http://{}", site.domain))
                    })
                    .filter(|e| {
                        let p = e.url.trim_start_matches(&format!("http://{}", site.domain));
                        site.resource(p).is_some_and(|r| r.cacheable)
                    })
                    .count();
                per_page.push(cacheable as f64);
                if site.page_weight_lower_bound(path).unwrap_or(u64::MAX) <= 100_000 {
                    small_page_has_cacheable.push(if cacheable > 0 { 1.0 } else { 0.0 });
                }
            }
        }
        let cdf = Cdf::new(per_page);
        let any = 1.0 - cdf.fraction_at_most(0.0);
        assert!(
            (0.55..0.95).contains(&any),
            "pages with ≥1 cacheable image: {any}"
        );
        let five_plus = 1.0 - cdf.fraction_at_most(4.0);
        assert!(
            (0.25..0.75).contains(&five_plus),
            "pages with ≥5 cacheable images: {five_plus}"
        );
        // Small pages are much less likely to have one.
        let small_any: f64 = small_page_has_cacheable.iter().sum::<f64>()
            / small_page_has_cacheable.len().max(1) as f64;
        assert!(
            small_any < any,
            "≤100 KB pages should be image-poorer: {small_any} vs {any}"
        );
    }

    #[test]
    fn install_registers_all_servers() {
        let mut rng = SimRng::new(3);
        let web = SyntheticWeb::generate(&WebConfig::small(), &mut rng);
        let mut n = Network::ideal(netsim::geo::World::builtin());
        web.install(&mut n, &mut rng);
        assert_eq!(n.server_count(), web.sites.len() + web.cdns.len());
        // DNS resolves every domain.
        for d in web.domains() {
            assert!(n.dns.authoritative(&d).is_some(), "{d} not in DNS");
        }
    }

    #[test]
    fn social_site_has_favicon_and_cacheable_icons() {
        let mut rng = SimRng::new(9);
        let s = social_site("facebook.com", &mut rng);
        let fav = s.resource("/favicon.ico").unwrap();
        assert!(fav.cacheable);
        assert!(fav.bytes <= 1_000);
        assert!(s.pages.len() >= 10);
        assert!(s.pages.values().all(|p| p.side_effects));
    }

    #[test]
    fn pages_reference_existing_same_site_resources() {
        let web = corpus();
        let site = &web.sites[0];
        for page in site.pages.values() {
            for e in &page.embeds {
                if let Some(p) = e.url.strip_prefix(&format!("http://{}", site.domain)) {
                    assert!(
                        site.resource(p).is_some(),
                        "dangling embed {} on {}",
                        e.url,
                        page.path
                    );
                }
            }
        }
    }
}
