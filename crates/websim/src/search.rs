//! The search-engine stand-in for pattern expansion.
//!
//! Paper §5.2: "We currently expand URL patterns to a sample of up to 50
//! URLs by scraping site-specific results (i.e., using the site: search
//! operator) from a popular search engine." This module provides that
//! interface over the synthetic web: an index of every page URL, queryable
//! by pattern, returning results in popularity order capped at a limit.

use crate::generator::SyntheticWeb;
use crate::url::UrlPattern;
use std::collections::BTreeMap;

/// Default result cap, as in the paper's prototype.
pub const DEFAULT_RESULT_LIMIT: usize = 50;

/// A page-URL index over the synthetic web.
#[derive(Debug, Clone, Default)]
pub struct SearchIndex {
    /// domain → page URLs in rank (popularity) order.
    by_domain: BTreeMap<String, Vec<String>>,
}

impl SearchIndex {
    /// Build the index from a generated web.
    pub fn build(web: &SyntheticWeb) -> SearchIndex {
        let mut by_domain = BTreeMap::new();
        for site in &web.sites {
            by_domain.insert(site.domain.clone(), site.pages_by_popularity());
        }
        SearchIndex { by_domain }
    }

    /// Register extra URLs for a domain (e.g. hand-added social sites).
    pub fn add_domain(&mut self, domain: &str, urls: Vec<String>) {
        self.by_domain.insert(domain.to_string(), urls);
    }

    /// `site:`-style query: all indexed URLs matching `pattern`, in rank
    /// order, capped at `limit`.
    pub fn query(&self, pattern: &UrlPattern, limit: usize) -> Vec<String> {
        match pattern {
            UrlPattern::Exact(u) => {
                // Trivial patterns need no search (paper §5.2).
                vec![u.clone()]
            }
            UrlPattern::Domain(d) => {
                let key = d.to_ascii_lowercase();
                self.by_domain
                    .get(&key)
                    .map(|urls| urls.iter().take(limit).cloned().collect())
                    .unwrap_or_default()
            }
            UrlPattern::Prefix(_) => {
                let domain = pattern.domain().unwrap_or_default();
                self.by_domain
                    .get(&domain)
                    .map(|urls| {
                        urls.iter()
                            .filter(|u| pattern.matches(u))
                            .take(limit)
                            .cloned()
                            .collect()
                    })
                    .unwrap_or_default()
            }
        }
    }

    /// Number of indexed domains.
    pub fn domain_count(&self) -> usize {
        self.by_domain.len()
    }

    /// Total indexed URLs.
    pub fn url_count(&self) -> usize {
        self.by_domain.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WebConfig;
    use sim_core::SimRng;

    fn index() -> (SyntheticWeb, SearchIndex) {
        let mut rng = SimRng::new(0xBEEF);
        let web = SyntheticWeb::generate(&WebConfig::small(), &mut rng);
        let idx = SearchIndex::build(&web);
        (web, idx)
    }

    #[test]
    fn indexes_every_content_domain() {
        let (web, idx) = index();
        assert_eq!(idx.domain_count(), web.sites.len());
        assert_eq!(idx.url_count(), web.total_pages());
    }

    #[test]
    fn domain_query_caps_at_limit() {
        let (web, idx) = index();
        // Find a domain with more than 5 pages.
        let domain = web
            .sites
            .iter()
            .find(|s| s.pages.len() > 5)
            .map(|s| s.domain.clone())
            .expect("some site has >5 pages");
        let results = idx.query(&UrlPattern::Domain(domain.clone()), 5);
        assert_eq!(results.len(), 5);
        for u in &results {
            assert!(u.contains(&domain));
        }
    }

    #[test]
    fn domain_query_returns_popularity_order() {
        let (web, idx) = index();
        let site = &web.sites[0];
        let results = idx.query(&UrlPattern::Domain(site.domain.clone()), 1_000);
        assert_eq!(results, site.pages_by_popularity());
    }

    #[test]
    fn exact_query_is_identity() {
        let (_, idx) = index();
        let u = "http://anything.example/whatever".to_string();
        assert_eq!(idx.query(&UrlPattern::Exact(u.clone()), 50), vec![u]);
    }

    #[test]
    fn prefix_query_filters() {
        let (web, idx) = index();
        let site = &web.sites[0];
        let prefix = format!("http://{}/page/1", site.domain);
        let results = idx.query(&UrlPattern::Prefix(prefix.clone()), 50);
        assert!(!results.is_empty());
        for u in &results {
            assert!(u.to_ascii_lowercase().starts_with(&prefix));
        }
    }

    #[test]
    fn unknown_domain_returns_empty() {
        let (_, idx) = index();
        assert!(idx
            .query(&UrlPattern::Domain("nonexistent.example".into()), 50)
            .is_empty());
    }

    #[test]
    fn add_domain_extends_index() {
        let (_, mut idx) = index();
        idx.add_domain(
            "youtube.com",
            vec![
                "http://youtube.com/watch1".into(),
                "http://youtube.com/watch2".into(),
            ],
        );
        let r = idx.query(&UrlPattern::Domain("youtube.com".into()), 50);
        assert_eq!(r.len(), 2);
    }
}
