//! URL patterns.
//!
//! Paper §5.1: a measurement-target list "can contain either specific URLs
//! if Encore is testing the reachability of a specific page; or a URL
//! pattern denoting sets of URLs (e.g., an entire domain name or URL
//! prefix)".

use netsim::http::{host_of, path_of};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A measurement-target pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UrlPattern {
    /// One exact URL.
    Exact(String),
    /// Every URL on a domain (including subdomains).
    Domain(String),
    /// Every URL sharing a prefix.
    Prefix(String),
}

impl UrlPattern {
    /// Parse from the textual forms used in target lists:
    ///
    /// * `example.com` (no scheme, no path) → [`UrlPattern::Domain`]
    /// * `http://example.com/section/*` → [`UrlPattern::Prefix`]
    /// * `http://example.com/page.html` → [`UrlPattern::Exact`]
    pub fn parse(s: &str) -> UrlPattern {
        let s = s.trim();
        if let Some(prefix) = s.strip_suffix("/*").or_else(|| s.strip_suffix('*')) {
            return UrlPattern::Prefix(prefix.to_string());
        }
        if !s.contains("://") && !s.starts_with("//") {
            return UrlPattern::Domain(s.trim_end_matches('/').to_ascii_lowercase());
        }
        match (host_of(s), path_of(s).as_str()) {
            (Some(host), "/") if s.trim_end_matches('/').ends_with(&host) => {
                // `http://example.com` or `http://example.com/`: treat a
                // bare origin as the whole domain.
                UrlPattern::Domain(host)
            }
            _ => UrlPattern::Exact(s.to_string()),
        }
    }

    /// Whether `url` matches this pattern.
    pub fn matches(&self, url: &str) -> bool {
        match self {
            UrlPattern::Exact(e) => normalize(url) == normalize(e),
            UrlPattern::Domain(d) => host_of(url).is_some_and(|h| {
                let d = d.to_ascii_lowercase();
                h == d || h.ends_with(&format!(".{d}"))
            }),
            UrlPattern::Prefix(p) => normalize(url).starts_with(&normalize(p)),
        }
    }

    /// Whether the pattern denotes exactly one URL ("some patterns are
    /// trivial … and require no work", §5.2).
    pub fn is_trivial(&self) -> bool {
        matches!(self, UrlPattern::Exact(_))
    }

    /// The domain this pattern concerns, if derivable.
    pub fn domain(&self) -> Option<String> {
        match self {
            UrlPattern::Domain(d) => Some(d.clone()),
            UrlPattern::Exact(u) | UrlPattern::Prefix(u) => host_of(u),
        }
    }
}

fn normalize(u: &str) -> String {
    let lower = u.trim().to_ascii_lowercase();
    lower
        .strip_prefix("http://")
        .or_else(|| lower.strip_prefix("https://"))
        .unwrap_or(&lower)
        .to_string()
}

impl fmt::Display for UrlPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrlPattern::Exact(u) => write!(f, "{u}"),
            UrlPattern::Domain(d) => write!(f, "{d}"),
            UrlPattern::Prefix(p) => write!(f, "{p}*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_bare_domain() {
        assert_eq!(
            UrlPattern::parse("Example.COM"),
            UrlPattern::Domain("example.com".into())
        );
        assert_eq!(
            UrlPattern::parse("example.com/"),
            UrlPattern::Domain("example.com".into())
        );
    }

    #[test]
    fn parse_prefix() {
        assert_eq!(
            UrlPattern::parse("http://example.com/blog/*"),
            UrlPattern::Prefix("http://example.com/blog".into())
        );
    }

    #[test]
    fn parse_exact() {
        assert_eq!(
            UrlPattern::parse("http://example.com/post.html"),
            UrlPattern::Exact("http://example.com/post.html".into())
        );
    }

    #[test]
    fn domain_pattern_matches_subdomains_and_paths() {
        let p = UrlPattern::Domain("example.com".into());
        assert!(p.matches("http://example.com/a"));
        assert!(p.matches("http://www.example.com/b?q=1"));
        assert!(!p.matches("http://example.org/"));
        assert!(!p.matches("http://badexample.com/"));
    }

    #[test]
    fn prefix_pattern_matching() {
        let p = UrlPattern::Prefix("http://example.com/blog".into());
        assert!(p.matches("http://example.com/blog/post-1"));
        assert!(p.matches("https://EXAMPLE.com/blog/post-2"));
        assert!(!p.matches("http://example.com/about"));
    }

    #[test]
    fn exact_pattern_matching() {
        let p = UrlPattern::Exact("http://example.com/post".into());
        assert!(p.matches("http://example.com/post"));
        assert!(p.matches("HTTPS://example.com/post"));
        assert!(!p.matches("http://example.com/post/"));
    }

    #[test]
    fn triviality() {
        assert!(UrlPattern::parse("http://x.com/a.html").is_trivial());
        assert!(!UrlPattern::parse("x.com").is_trivial());
        assert!(!UrlPattern::parse("http://x.com/a/*").is_trivial());
    }

    #[test]
    fn domain_extraction() {
        assert_eq!(
            UrlPattern::parse("http://x.com/a/*").domain().as_deref(),
            Some("x.com")
        );
        assert_eq!(
            UrlPattern::parse("x.com").domain().as_deref(),
            Some("x.com")
        );
        assert_eq!(
            UrlPattern::parse("http://y.org/p.html").domain().as_deref(),
            Some("y.org")
        );
    }

    #[test]
    fn display_roundtrips_meaningfully() {
        assert_eq!(UrlPattern::Domain("x.com".into()).to_string(), "x.com");
        assert_eq!(
            UrlPattern::Prefix("http://x.com/a".into()).to_string(),
            "http://x.com/a*"
        );
    }
}
