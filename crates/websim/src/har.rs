//! HTTP Archive (HAR 1.2) data model.
//!
//! Paper §5.2: "the Target Fetcher collects detailed information about
//! each URL by loading and rendering it in a real Web browser and
//! recording its behavior in an HTTP Archive (HAR) file … which documents
//! the set of resources that a browser downloads while rendering a URL,
//! timing information for each operation, and the HTTP headers of each
//! request and response".
//!
//! We model the subset of HAR 1.2 the Task Generator consumes. HARs are
//! produced by the browser emulator's headless mode (the PhantomJS
//! stand-in) and serialise to JSON via serde, as real HARs would.

use netsim::http::ContentType;
use serde::{Deserialize, Serialize};
use sim_core::SimDuration;

/// One fetched resource within a page load.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarEntry {
    /// Resource URL.
    pub url: String,
    /// HTTP status (0 when the fetch failed before a response).
    pub status: u16,
    /// Declared content type.
    pub content_type: ContentType,
    /// Body size in bytes.
    pub body_bytes: u64,
    /// Whether cache headers permit reuse.
    pub cacheable: bool,
    /// Whether `X-Content-Type-Options: nosniff` was present.
    pub nosniff: bool,
    /// Total fetch time for this resource.
    pub time: SimDuration,
    /// Whether the fetch succeeded with a valid body.
    pub ok: bool,
}

impl HarEntry {
    /// Whether this entry is a successfully fetched image.
    pub fn is_image(&self) -> bool {
        self.ok && self.content_type == ContentType::Image
    }

    /// Whether this entry is a cacheable, successfully fetched image —
    /// the raw material of the iframe task (Figure 6).
    pub fn is_cacheable_image(&self) -> bool {
        self.is_image() && self.cacheable
    }
}

/// An archive of one page load.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Har {
    /// The page URL that was rendered.
    pub page_url: String,
    /// Every fetched resource, in fetch order. The first entry is the
    /// page's own HTML.
    pub entries: Vec<HarEntry>,
    /// Whether the top-level page load succeeded.
    pub page_ok: bool,
}

impl Har {
    /// Total bytes transferred ("page size" in Figure 5: "the sum of
    /// sizes of all objects loaded by a page").
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.body_bytes).sum()
    }

    /// Entries that are successfully fetched images.
    pub fn images(&self) -> impl Iterator<Item = &HarEntry> {
        self.entries.iter().filter(|e| e.is_image())
    }

    /// Entries that are cacheable images.
    pub fn cacheable_images(&self) -> impl Iterator<Item = &HarEntry> {
        self.entries.iter().filter(|e| e.is_cacheable_image())
    }

    /// Whether any fetched object exceeds `bytes` (the §5.2 "large
    /// object" exclusion).
    pub fn has_object_larger_than(&self, bytes: u64) -> bool {
        self.entries.iter().any(|e| e.body_bytes > bytes)
    }

    /// Entries on a different origin than the page itself.
    pub fn cross_origin_entries(&self) -> impl Iterator<Item = &HarEntry> {
        let page_host = netsim::http::host_of(&self.page_url);
        self.entries
            .iter()
            .filter(move |e| netsim::http::host_of(&e.url) != page_host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(url: &str, ct: ContentType, bytes: u64, cacheable: bool) -> HarEntry {
        HarEntry {
            url: url.into(),
            status: 200,
            content_type: ct,
            body_bytes: bytes,
            cacheable,
            nosniff: false,
            time: SimDuration::from_millis(80),
            ok: true,
        }
    }

    fn demo() -> Har {
        Har {
            page_url: "http://site.org/page/1.html".into(),
            entries: vec![
                entry(
                    "http://site.org/page/1.html",
                    ContentType::Html,
                    20_000,
                    false,
                ),
                entry("http://site.org/logo.png", ContentType::Image, 900, true),
                entry(
                    "http://site.org/photo.jpg",
                    ContentType::Image,
                    45_000,
                    false,
                ),
                entry("http://cdn.example/like.png", ContentType::Image, 700, true),
                entry("http://site.org/site.js", ContentType::Script, 60_000, true),
            ],
            page_ok: true,
        }
    }

    #[test]
    fn total_bytes_sums_everything() {
        assert_eq!(demo().total_bytes(), 20_000 + 900 + 45_000 + 700 + 60_000);
    }

    #[test]
    fn image_filters() {
        let h = demo();
        assert_eq!(h.images().count(), 3);
        assert_eq!(h.cacheable_images().count(), 2);
    }

    #[test]
    fn failed_entries_are_not_images() {
        let mut e = entry("http://x/y.png", ContentType::Image, 100, true);
        e.ok = false;
        assert!(!e.is_image());
        assert!(!e.is_cacheable_image());
    }

    #[test]
    fn large_object_detection() {
        let h = demo();
        assert!(h.has_object_larger_than(50_000));
        assert!(!h.has_object_larger_than(100_000));
    }

    #[test]
    fn cross_origin_detection() {
        let h = demo();
        let cross: Vec<_> = h.cross_origin_entries().map(|e| e.url.as_str()).collect();
        assert_eq!(cross, vec!["http://cdn.example/like.png"]);
    }

    #[test]
    fn serialises_to_json() {
        let h = demo();
        let json = serde_json::to_string(&h).unwrap();
        let back: Har = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
