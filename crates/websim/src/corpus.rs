//! Seeded generative corpus: a Zipf-popularity web with scale-free
//! cross-site links, plus benign-disruption events.
//!
//! Encore's real deployment rode heterogeneous third-party pages across
//! many countries; this module grows [`SyntheticWeb`] into that substrate:
//!
//! * **Rank popularity** — site `i` (generation order) receives the Zipf
//!   probability mass of rank `i` ([`sim_core::Zipf`]), so a handful of
//!   head sites dominate client attention while a long tail stays
//!   measurable.
//! * **Scale-free cross-site links** — preferential attachment (new sites
//!   link to already well-linked ones, cf. *Communication Bottlenecks in
//!   Scale-Free Networks*) materialised as real cross-origin image embeds,
//!   so HAR capture sees them.
//! * **CDN / multi-origin assets** — inherited from the generator's shared
//!   CDNs plus the new cross-site embeds.
//! * **Demographic mixes** — [`CountryMix`]: seeded Zipf-weighted client
//!   populations over a country list; the bench/simcheck layers pair each
//!   country with its censor regime from the registry.
//! * **Benign disruptions** — [`Disruption`]: origin outages, cert
//!   rotations, and site redesigns that break measurement tasks, applied
//!   to a standing [`Network`] by swapping the origin's HTTP handler in
//!   place (no address churn, so shard determinism is preserved). A
//!   `Disruption` is plain `Copy` data and a [`Corpus`] is cheaply
//!   clonable (`Arc`-shared sites), so both can be captured by
//!   `Send + Sync` world-recipe mutation closures.
//!
//! Everything is a pure function of `(config, seed)`: two shards that
//! build the same corpus get byte-identical content, handlers, and
//! disruption behaviour.

use crate::generator::{SyntheticWeb, WebConfig, WebConfigError};
use crate::har::{Har, HarEntry};
use crate::site::{EmbedKind, EmbedRef, SiteContent, SiteHandler};
use netsim::http::{host_of, path_of, ContentType, HttpResponse};
use netsim::network::{ConstHandler, HttpHandler, Network};
use serde::{Deserialize, Serialize};
use sim_core::dist::{Zipf, ZipfError};
use sim_core::{SimDuration, SimRng};
use std::sync::Arc;

/// Corpus generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Per-site content generation knobs.
    pub web: WebConfig,
    /// Zipf exponent for site rank-popularity (1.0 ≈ classic web traffic;
    /// 0.0 = uniform).
    pub zipf_exponent: f64,
    /// Cross-site links added per site (preferential attachment); each
    /// becomes a cross-origin image embed on one of the site's pages.
    pub cross_links_per_site: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            web: WebConfig::default(),
            zipf_exponent: 1.0,
            cross_links_per_site: 2,
        }
    }
}

impl CorpusConfig {
    /// A small corpus for fast tests.
    pub fn small() -> CorpusConfig {
        CorpusConfig {
            web: WebConfig::small(),
            ..CorpusConfig::default()
        }
    }
}

/// Why a [`Corpus`] could not be generated.
#[derive(Debug, Clone, PartialEq)]
pub enum CorpusError {
    /// The per-site generator config was degenerate.
    Web(WebConfigError),
    /// The popularity distribution was degenerate (bad exponent).
    Popularity(ZipfError),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Web(e) => write!(f, "web config: {e}"),
            CorpusError::Popularity(e) => write!(f, "popularity: {e}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<WebConfigError> for CorpusError {
    fn from(e: WebConfigError) -> Self {
        CorpusError::Web(e)
    }
}

impl From<ZipfError> for CorpusError {
    fn from(e: ZipfError) -> Self {
        CorpusError::Popularity(e)
    }
}

/// A generated web corpus with rank popularity and cross-site structure.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The underlying generated web (sites in rank order).
    pub web: SyntheticWeb,
    /// Per-rank popularity share (Zipf mass; sums to 1).
    popularity: Vec<f64>,
    /// Cross-site links as `(from_rank, to_rank)` pairs.
    pub links: Vec<(usize, usize)>,
}

impl Corpus {
    /// Generate a corpus. Deterministic in `(cfg, rng seed)`.
    pub fn generate(cfg: &CorpusConfig, rng: &mut SimRng) -> Result<Corpus, CorpusError> {
        let mut web = SyntheticWeb::try_generate(&cfg.web, rng)?;
        let n = web.sites.len();
        let zipf = Zipf::try_new(n, cfg.zipf_exponent)?;
        let popularity: Vec<f64> = (0..n).map(|r| zipf.mass(r)).collect();

        // Preferential attachment: site i links to an earlier site chosen
        // proportionally to (in-degree + 1), yielding a scale-free
        // in-degree distribution with rank-0-adjacent hubs.
        let mut link_rng = rng.fork("corpus-links");
        let mut in_degree = vec![0usize; n];
        let mut links = Vec::new();
        for i in 1..n {
            for _ in 0..cfg.cross_links_per_site {
                let weights: Vec<f64> = in_degree[..i].iter().map(|&d| d as f64 + 1.0).collect();
                let j = link_rng.pick_weighted(&weights).expect("weights positive");
                in_degree[j] += 1;
                links.push((i, j));
            }
        }

        // Materialise each link as a cross-origin image embed on one page
        // of the linking site, so HAR capture observes the link graph.
        for &(i, j) in &links {
            let target_url = web.sites[j].url("/logo.png");
            let site =
                Arc::get_mut(&mut web.sites[i]).expect("freshly generated sites are unshared");
            let keys: Vec<String> = site.pages.keys().cloned().collect();
            let page_key = link_rng.pick(&keys).clone();
            let page = site.pages.get_mut(&page_key).expect("picked existing page");
            page.embeds.push(EmbedRef {
                url: target_url,
                kind: EmbedKind::Image,
            });
        }

        Ok(Corpus {
            web,
            popularity,
            links,
        })
    }

    /// Install every site and CDN into the network (delegates to
    /// [`SyntheticWeb::install`]; hosting countries drawn from `rng`).
    pub fn install(&self, network: &mut Network, rng: &mut SimRng) {
        self.web.install(network, rng);
    }

    /// Number of content sites.
    pub fn len(&self) -> usize {
        self.web.sites.len()
    }

    /// Whether the corpus has no sites (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.web.sites.is_empty()
    }

    /// Domain of the site at `rank` (0 = most popular).
    pub fn domain(&self, rank: usize) -> &str {
        &self.web.sites[rank].domain
    }

    /// All content-site domains, rank-ordered (deterministic).
    pub fn domains(&self) -> Vec<String> {
        self.web.domains()
    }

    /// Popularity share of `rank` (0.0 for out-of-range ranks).
    pub fn popularity(&self, rank: usize) -> f64 {
        self.popularity.get(rank).copied().unwrap_or(0.0)
    }

    /// Per-rank popularity shares.
    pub fn popularity_shares(&self) -> &[f64] {
        &self.popularity
    }

    /// The `k` most popular domains — the natural measurement-target set.
    pub fn measurement_domains(&self, k: usize) -> Vec<String> {
        self.domains().into_iter().take(k).collect()
    }

    /// The canonical single-packet measurement probe for a site: its
    /// favicon (every generated site has one).
    pub fn probe_url(&self, rank: usize) -> String {
        self.web.sites[rank].url("/favicon.ico")
    }

    /// Cross-site in-degrees by rank (hubs of the scale-free graph).
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.len()];
        for &(_, j) in &self.links {
            deg[j] += 1;
        }
        deg
    }

    /// Ground-truth HAR for a page: what a browser on an uncensored ideal
    /// path would record. Embeds are resolved against the corpus' own
    /// sites and CDNs; dangling references become failed (404) entries.
    /// Timing is a pure function of body size, so the HAR is deterministic.
    pub fn har_for_page(&self, domain: &str, path: &str) -> Option<Har> {
        let site = self.web.site(domain)?;
        let page = site.page(path)?;
        let mut entries = vec![HarEntry {
            url: site.url(path),
            status: 200,
            content_type: ContentType::Html,
            body_bytes: page.html_bytes,
            cacheable: false,
            nosniff: false,
            time: fetch_time(page.html_bytes),
            ok: true,
        }];
        for e in &page.embeds {
            let resolved = host_of(&e.url)
                .and_then(|h| self.web.site(&h))
                .and_then(|s| s.resource(&path_of(&e.url)).cloned());
            entries.push(match resolved {
                Some(r) => HarEntry {
                    url: e.url.clone(),
                    status: 200,
                    content_type: r.content_type,
                    body_bytes: r.bytes,
                    cacheable: r.cacheable,
                    nosniff: r.nosniff,
                    time: fetch_time(r.bytes),
                    ok: true,
                },
                None => HarEntry {
                    url: e.url.clone(),
                    status: 404,
                    content_type: ContentType::Html,
                    body_bytes: 0,
                    cacheable: false,
                    nosniff: false,
                    time: fetch_time(0),
                    ok: false,
                },
            });
        }
        Some(Har {
            page_url: site.url(path),
            entries,
            page_ok: true,
        })
    }

    /// The site at `rank` after a redesign: shared assets move under
    /// `/assets/` and every same-site embed is rewritten to match. A
    /// measurement task pinned to the *old* `/favicon.ico` URL starts
    /// failing globally — the benign breakage §5.2's task refresh guards
    /// against.
    pub fn redesigned_site(&self, rank: usize) -> Option<Arc<SiteContent>> {
        const MOVED: [&str; 4] = ["/favicon.ico", "/logo.png", "/site.css", "/site.js"];
        let moved = |path: &str| -> String {
            if MOVED.contains(&path) {
                format!("/assets{path}")
            } else {
                path.to_string()
            }
        };
        let site = self.web.sites.get(rank)?;
        let mut redesigned = SiteContent::new(site.domain.clone());
        for (path, res) in &site.resources {
            let mut r = res.clone();
            r.path = moved(path);
            redesigned.add_resource(r);
        }
        let prefix = format!("http://{}", site.domain);
        for page in site.pages.values() {
            let mut p = page.clone();
            for e in &mut p.embeds {
                if let Some(rel) = e.url.strip_prefix(&prefix) {
                    e.url = format!("{prefix}{}", moved(rel));
                }
            }
            redesigned.add_page(p);
        }
        Some(Arc::new(redesigned))
    }
}

/// Deterministic model fetch time for a ground-truth HAR entry.
fn fetch_time(bytes: u64) -> SimDuration {
    SimDuration::from_millis(12 + bytes / 40_000)
}

/// What a benign disruption does to its origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisruptionKind {
    /// The origin goes dark: every request 404s until the outage ends.
    OriginOutage,
    /// A botched certificate rotation: responses arrive but fail
    /// validation until the rotation completes.
    CertRotation,
    /// A site redesign moves shared assets (permanent): tasks pinned to
    /// old URLs break globally.
    Redesign,
}

/// One scheduled benign-disruption event against a corpus site.
///
/// Disruptions model the non-censorship failures Encore must not confuse
/// with filtering: they hit the origin, so they fail *everywhere* — the
/// detector's cross-region control (a resource failing in every region is
/// an outage, not filtering) is what keeps them out of the verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Disruption {
    /// Day the disruption starts (caller converts to sim time).
    pub day: u64,
    /// Days until service is restored (ignored for [`DisruptionKind::Redesign`],
    /// which is permanent).
    pub duration_days: u64,
    /// Rank of the affected site.
    pub site: usize,
    /// What happens.
    pub kind: DisruptionKind,
}

impl Disruption {
    /// Day the disruption ends (handler restored), if it ever does.
    pub fn end_day(&self) -> Option<u64> {
        match self.kind {
            DisruptionKind::Redesign => None,
            _ => Some(self.day + self.duration_days),
        }
    }

    /// Apply the disruption to a standing network by swapping the origin's
    /// handler in place (no address churn). Returns `false` if the site is
    /// not installed.
    pub fn apply(&self, corpus: &Corpus, net: &mut Network) -> bool {
        let Some(site) = corpus.web.sites.get(self.site) else {
            return false;
        };
        let handler: Box<dyn HttpHandler> = match self.kind {
            DisruptionKind::OriginOutage => Box::new(ConstHandler(HttpResponse::not_found())),
            DisruptionKind::CertRotation => Box::new(ConstHandler(
                HttpResponse::ok(ContentType::Html, 1_024).with_invalid_body(),
            )),
            DisruptionKind::Redesign => Box::new(SiteHandler::new(
                self.redesigned(corpus).expect("rank exists: checked above"),
            )),
        };
        net.replace_server_handler(&site.domain, handler)
    }

    /// Restore the original handler (ends an outage or rotation; reverts a
    /// redesign if a schedule ever wants to).
    pub fn revert(&self, corpus: &Corpus, net: &mut Network) -> bool {
        let Some(site) = corpus.web.sites.get(self.site) else {
            return false;
        };
        net.replace_server_handler(&site.domain, Box::new(SiteHandler::new(Arc::clone(site))))
    }

    fn redesigned(&self, corpus: &Corpus) -> Option<Arc<SiteContent>> {
        corpus.redesigned_site(self.site)
    }
}

/// A seeded multi-country client demographic: country codes with client
/// population weights. The weights are the Zipf masses of the country's
/// position in the (caller-ordered) list, so the first country dominates
/// the audience the way a deployment's top market does. The bench and
/// simcheck layers pair each country with its censor regime from the
/// registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountryMix {
    /// `(country code, weight)` pairs; weights sum to 1.
    pub weights: Vec<(String, f64)>,
}

impl CountryMix {
    /// Build a mix over `countries` with Zipf exponent `s`.
    pub fn zipf(countries: &[&str], s: f64) -> Result<CountryMix, ZipfError> {
        let zipf = Zipf::try_new(countries.len(), s)?;
        Ok(CountryMix {
            weights: countries
                .iter()
                .enumerate()
                .map(|(i, cc)| (cc.to_string(), zipf.mass(i)))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::WebConfig;
    use netsim::geo::World;

    fn corpus(seed: u64) -> Corpus {
        let mut rng = SimRng::new(seed);
        Corpus::generate(&CorpusConfig::small(), &mut rng).unwrap()
    }

    #[test]
    fn corpus_is_send_sync_and_cheap_to_clone() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Corpus>();
        assert_send_sync::<Disruption>();
    }

    #[test]
    fn generation_is_deterministic() {
        let a = corpus(0xC0FF);
        let b = corpus(0xC0FF);
        assert_eq!(a.domains(), b.domains());
        assert_eq!(a.links, b.links);
        assert_eq!(a.popularity_shares(), b.popularity_shares());
    }

    #[test]
    fn popularity_is_normalised_and_rank_ordered() {
        let c = corpus(7);
        let total: f64 = c.popularity_shares().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total = {total}");
        for r in 1..c.len() {
            assert!(c.popularity(r) <= c.popularity(r - 1));
        }
        assert_eq!(c.popularity(c.len()), 0.0);
    }

    #[test]
    fn link_graph_is_scale_free_ish() {
        let mut rng = SimRng::new(0x5CA1E);
        let cfg = CorpusConfig {
            web: WebConfig {
                num_domains: 40,
                median_pages_per_domain: 5.0,
                ..WebConfig::default()
            },
            zipf_exponent: 1.0,
            cross_links_per_site: 2,
        };
        let c = Corpus::generate(&cfg, &mut rng).unwrap();
        assert_eq!(c.links.len(), 39 * 2);
        let deg = c.in_degrees();
        let max = *deg.iter().max().unwrap();
        let mean = deg.iter().sum::<usize>() as f64 / deg.len() as f64;
        // Preferential attachment concentrates links on hubs: the best-
        // linked site should sit far above the mean degree.
        assert!(
            max as f64 >= 3.0 * mean,
            "max in-degree {max} vs mean {mean:.2} — not heavy-tailed"
        );
    }

    #[test]
    fn cross_links_appear_in_ground_truth_hars() {
        let c = corpus(11);
        let (from, to) = c.links[0];
        let from_site = &c.web.sites[from];
        let target = c.web.sites[to].url("/logo.png");
        let har = from_site
            .pages
            .keys()
            .find_map(|p| {
                let h = c.har_for_page(&from_site.domain, p)?;
                h.entries.iter().any(|e| e.url == target).then_some(h)
            })
            .expect("some page of the linking site embeds the link target");
        // The linked logo resolves as a real cross-origin image entry.
        let entry = har.entries.iter().find(|e| e.url == target).unwrap();
        assert!(entry.is_image(), "cross-site link must fetch as an image");
        assert!(har.cross_origin_entries().any(|e| e.url == target));
    }

    #[test]
    fn degenerate_configs_are_typed_errors() {
        let mut rng = SimRng::new(1);
        let bad_web = CorpusConfig {
            web: WebConfig {
                num_domains: 0,
                ..WebConfig::default()
            },
            ..CorpusConfig::default()
        };
        assert!(matches!(
            Corpus::generate(&bad_web, &mut rng),
            Err(CorpusError::Web(WebConfigError::NoDomains))
        ));
        let bad_zipf = CorpusConfig {
            zipf_exponent: f64::NAN,
            ..CorpusConfig::small()
        };
        assert!(matches!(
            Corpus::generate(&bad_zipf, &mut rng),
            Err(CorpusError::Popularity(ZipfError::InvalidExponent(_)))
        ));
    }

    #[test]
    fn redesign_moves_shared_assets_and_rewrites_embeds() {
        let c = corpus(21);
        let redesigned = c.redesigned_site(0).unwrap();
        assert!(redesigned.resource("/favicon.ico").is_none());
        assert!(redesigned.resource("/assets/favicon.ico").is_some());
        let prefix = format!("http://{}", redesigned.domain);
        for page in redesigned.pages.values() {
            for e in &page.embeds {
                if let Some(rel) = e.url.strip_prefix(&prefix) {
                    assert!(
                        redesigned.resource(&path_of(&e.url)).is_some(),
                        "embed {rel} dangles after redesign"
                    );
                }
            }
        }
    }

    #[test]
    fn disruptions_swap_handlers_in_place() {
        let c = corpus(33);
        let mut rng = SimRng::new(33);
        let mut net = Network::ideal(World::builtin());
        c.install(&mut net, &mut rng);
        let servers_before = net.server_count();
        let outage = Disruption {
            day: 3,
            duration_days: 1,
            site: 1,
            kind: DisruptionKind::OriginOutage,
        };
        assert_eq!(outage.end_day(), Some(4));
        assert!(outage.apply(&c, &mut net));
        assert!(outage.revert(&c, &mut net));
        let redesign = Disruption {
            day: 10,
            duration_days: 0,
            site: 0,
            kind: DisruptionKind::Redesign,
        };
        assert_eq!(redesign.end_day(), None);
        assert!(redesign.apply(&c, &mut net));
        // In-place swaps: no new servers, no address churn.
        assert_eq!(net.server_count(), servers_before);
        let missing = Disruption {
            day: 1,
            duration_days: 1,
            site: 9_999,
            kind: DisruptionKind::OriginOutage,
        };
        assert!(!missing.apply(&c, &mut net));
    }

    #[test]
    fn country_mix_is_normalised_and_ordered() {
        let mix = CountryMix::zipf(&["CN", "IR", "RU", "US"], 1.0).unwrap();
        let total: f64 = mix.weights.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(mix.weights[0].0, "CN");
        assert!(mix.weights[0].1 > mix.weights[3].1);
        assert!(CountryMix::zipf(&[], 1.0).is_err());
    }
}
