//! Sites: pages plus auxiliary resources, servable over the simulated
//! network.
//!
//! A [`SiteContent`] is the ground-truth content of one domain. Pages
//! embed resources ([`EmbedRef`]) which may live on the same domain or on
//! another (CDNs — paper §4.3.1: "sites often load common style sheets
//! (e.g., Bootstrap) from a CDN"). The [`SiteHandler`] adapter serves a
//! site through `netsim`'s [`HttpHandler`] interface.

use netsim::http::{ContentType, HttpRequest, HttpResponse};
use netsim::network::HttpHandler;
use serde::{Deserialize, Serialize};
use sim_core::SimTime;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Re-export: how a page embeds a resource (defined in `netsim::http` so
/// the embed list can travel on [`HttpResponse`]).
pub use netsim::http::EmbedKind;

/// Re-export: one embedded-resource reference on a page.
pub use netsim::http::Embedded as EmbedRef;

/// A non-page resource hosted by a site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// Path on the site (`/img/logo.png`).
    pub path: String,
    /// Content type.
    pub content_type: ContentType,
    /// Size in bytes.
    pub bytes: u64,
    /// Whether responses carry cache-friendly headers.
    pub cacheable: bool,
    /// Whether script resources are served with
    /// `X-Content-Type-Options: nosniff`.
    pub nosniff: bool,
    /// Whether fetching this resource has server-side side effects
    /// (paper §4.2: "measurement tasks should try to only test URLs
    /// without obvious server side-effects").
    pub side_effects: bool,
}

/// An HTML page hosted by a site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageSpec {
    /// Path on the site (`/articles/1`).
    pub path: String,
    /// Size of the HTML itself, bytes.
    pub html_bytes: u64,
    /// Embedded resources, in document order.
    pub embeds: Vec<EmbedRef>,
    /// Whether the page hosts large media (flash/video) — the §5.2 Task
    /// Generator "excludes pages that load flash applets, videos, or any
    /// other large objects".
    pub has_large_media: bool,
    /// Whether loading the page has server-side side effects.
    pub side_effects: bool,
    /// Relative popularity (drives search ranking).
    pub popularity: f64,
}

/// The full content of one domain.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteContent {
    /// The DNS domain, e.g. `humanrights-example.org`.
    pub domain: String,
    /// Pages by path.
    pub pages: BTreeMap<String, PageSpec>,
    /// Auxiliary resources by path.
    pub resources: BTreeMap<String, ResourceSpec>,
}

impl SiteContent {
    /// New empty site.
    pub fn new(domain: impl Into<String>) -> SiteContent {
        SiteContent {
            domain: domain.into(),
            ..SiteContent::default()
        }
    }

    /// Absolute URL of a path on this site.
    pub fn url(&self, path: &str) -> String {
        format!("http://{}{}", self.domain, path)
    }

    /// Add a page.
    pub fn add_page(&mut self, page: PageSpec) {
        self.pages.insert(page.path.clone(), page);
    }

    /// Add a resource.
    pub fn add_resource(&mut self, res: ResourceSpec) {
        self.resources.insert(res.path.clone(), res);
    }

    /// Look up a page.
    pub fn page(&self, path: &str) -> Option<&PageSpec> {
        self.pages.get(path)
    }

    /// Look up a resource.
    pub fn resource(&self, path: &str) -> Option<&ResourceSpec> {
        self.resources.get(path)
    }

    /// All page URLs, most popular first (deterministic tie-break by
    /// path) — the order a search engine would rank them.
    pub fn pages_by_popularity(&self) -> Vec<String> {
        let mut pages: Vec<_> = self.pages.values().collect();
        pages.sort_by(|a, b| {
            b.popularity
                .partial_cmp(&a.popularity)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.path.cmp(&b.path))
        });
        pages.iter().map(|p| self.url(&p.path)).collect()
    }

    /// Total transfer size of a page: HTML plus all same-site embeds plus
    /// an estimate for cross-site embeds resolved by the caller. Used by
    /// tests; the authoritative number comes from HAR capture.
    pub fn page_weight_lower_bound(&self, path: &str) -> Option<u64> {
        let page = self.pages.get(path)?;
        let mut total = page.html_bytes;
        for e in &page.embeds {
            if let Some(p) = e.url.strip_prefix(&format!("http://{}", self.domain)) {
                if let Some(r) = self.resources.get(p) {
                    total += r.bytes;
                }
            }
        }
        Some(total)
    }
}

/// Serves a [`SiteContent`] over HTTP.
///
/// Content is shared via [`Arc`] so the same generated site can be
/// installed on every shard of a sharded world and captured by
/// `Send + Sync` recipe mutations (e.g. a redesign event swapping the
/// handler mid-run).
pub struct SiteHandler {
    content: Arc<SiteContent>,
}

impl SiteHandler {
    /// Wrap shared site content.
    pub fn new(content: Arc<SiteContent>) -> SiteHandler {
        SiteHandler { content }
    }

    /// The site this handler serves.
    pub fn content(&self) -> &Arc<SiteContent> {
        &self.content
    }
}

impl HttpHandler for SiteHandler {
    fn handle(
        &self,
        req: &HttpRequest,
        _client_ip: std::net::Ipv4Addr,
        _now: SimTime,
    ) -> HttpResponse {
        let path = req.path();
        if let Some(page) = self.content.page(path) {
            // Pages are dynamic HTML: not cacheable. The embed list rides
            // along so browsers can fetch subresources.
            return HttpResponse::ok(ContentType::Html, page.html_bytes)
                .no_store()
                .with_embeds(page.embeds.clone());
        }
        if let Some(res) = self.content.resource(path) {
            let mut r = HttpResponse::ok(res.content_type, res.bytes);
            if !res.cacheable {
                r = r.no_store();
            }
            if res.nosniff {
                r = r.with_nosniff();
            }
            return r;
        }
        HttpResponse::not_found()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_site() -> SiteContent {
        let mut s = SiteContent::new("demo.org");
        s.add_resource(ResourceSpec {
            path: "/favicon.ico".into(),
            content_type: ContentType::Image,
            bytes: 430,
            cacheable: true,
            nosniff: false,
            side_effects: false,
        });
        s.add_resource(ResourceSpec {
            path: "/app.js".into(),
            content_type: ContentType::Script,
            bytes: 52_000,
            cacheable: true,
            nosniff: true,
            side_effects: false,
        });
        s.add_page(PageSpec {
            path: "/index.html".into(),
            html_bytes: 18_000,
            embeds: vec![
                EmbedRef {
                    url: "http://demo.org/favicon.ico".into(),
                    kind: EmbedKind::Image,
                },
                EmbedRef {
                    url: "http://cdn.example/bootstrap.css".into(),
                    kind: EmbedKind::Stylesheet,
                },
            ],
            has_large_media: false,
            side_effects: false,
            popularity: 1.0,
        });
        s.add_page(PageSpec {
            path: "/contact.html".into(),
            html_bytes: 4_000,
            embeds: vec![],
            has_large_media: false,
            side_effects: false,
            popularity: 0.2,
        });
        s
    }

    #[test]
    fn url_construction() {
        let s = demo_site();
        assert_eq!(s.url("/favicon.ico"), "http://demo.org/favicon.ico");
    }

    #[test]
    fn popularity_ordering() {
        let s = demo_site();
        let pages = s.pages_by_popularity();
        assert_eq!(pages[0], "http://demo.org/index.html");
        assert_eq!(pages[1], "http://demo.org/contact.html");
    }

    #[test]
    fn page_weight_counts_same_site_embeds_only() {
        let s = demo_site();
        // index.html = 18000 HTML + 430 favicon; the CDN stylesheet is not
        // counted by the lower bound.
        assert_eq!(s.page_weight_lower_bound("/index.html"), Some(18_430));
        assert_eq!(s.page_weight_lower_bound("/missing"), None);
    }

    #[test]
    fn handler_serves_pages_and_resources() {
        let s = Arc::new(demo_site());
        let h = SiteHandler::new(s);
        let page = h.handle(
            &HttpRequest::get("http://demo.org/index.html"),
            std::net::Ipv4Addr::UNSPECIFIED,
            SimTime::ZERO,
        );
        assert_eq!(page.content_type, ContentType::Html);
        assert!(!page.is_cacheable(), "pages are dynamic");
        let ico = h.handle(
            &HttpRequest::get("http://demo.org/favicon.ico"),
            std::net::Ipv4Addr::UNSPECIFIED,
            SimTime::ZERO,
        );
        assert_eq!(ico.content_type, ContentType::Image);
        assert!(ico.is_cacheable());
        assert_eq!(ico.body_bytes, 430);
        let js = h.handle(
            &HttpRequest::get("http://demo.org/app.js"),
            std::net::Ipv4Addr::UNSPECIFIED,
            SimTime::ZERO,
        );
        assert!(js.nosniff);
        let missing = h.handle(
            &HttpRequest::get("http://demo.org/nope"),
            std::net::Ipv4Addr::UNSPECIFIED,
            SimTime::ZERO,
        );
        assert_eq!(missing.status, netsim::http::StatusCode::NOT_FOUND);
    }
}
