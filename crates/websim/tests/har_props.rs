//! Property tests for `websim::har` over *generated* corpora: round-trip
//! byte-equality and the image/cross-origin invariants must hold for every
//! HAR the corpus layer can synthesise, not just hand-built fixtures.

use proptest::prelude::*;
use sim_core::SimRng;
use websim::corpus::{Corpus, CorpusConfig};
use websim::generator::WebConfig;
use websim::Har;

/// A small seeded corpus (3–6 sites, few pages) — cheap enough to build
/// per proptest case.
fn tiny_corpus(seed: u64, num_domains: usize, zipf_exponent: f64) -> Corpus {
    let cfg = CorpusConfig {
        web: WebConfig {
            num_domains,
            median_pages_per_domain: 4.0,
            ..WebConfig::default()
        },
        zipf_exponent,
        cross_links_per_site: 1,
    };
    let mut rng = SimRng::new(seed);
    Corpus::generate(&cfg, &mut rng).expect("valid config")
}

/// Every HAR of every page of a corpus site, for exercising invariants.
fn hars_of_rank(corpus: &Corpus, rank: usize) -> Vec<Har> {
    let site = &corpus.web.sites[rank % corpus.len()];
    site.pages
        .keys()
        .map(|p| corpus.har_for_page(&site.domain, p).expect("page exists"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn har_round_trips_byte_identically(
        seed in any::<u64>(),
        n in 3usize..6,
        s in 0.5f64..1.8,
        rank in 0usize..6,
    ) {
        let corpus = tiny_corpus(seed, n, s);
        for har in hars_of_rank(&corpus, rank) {
            let json = serde_json::to_string(&har).unwrap();
            let back: Har = serde_json::from_str(&json).unwrap();
            prop_assert_eq!(&back, &har, "value round-trip");
            // Byte equality: re-serialising the deserialised value must
            // reproduce the original bytes exactly.
            prop_assert_eq!(serde_json::to_string(&back).unwrap(), json);
        }
    }

    #[test]
    fn cross_origin_entries_are_exactly_the_foreign_hosts(
        seed in any::<u64>(),
        n in 3usize..6,
        rank in 0usize..6,
    ) {
        let corpus = tiny_corpus(seed, n, 1.0);
        for har in hars_of_rank(&corpus, rank) {
            let page_host = netsim::http::host_of(&har.page_url);
            prop_assert!(page_host.is_some());
            let cross: Vec<_> = har.cross_origin_entries().collect();
            for e in &cross {
                prop_assert!(netsim::http::host_of(&e.url) != page_host);
            }
            // Complement check: every non-cross entry is on the page host.
            let cross_urls: Vec<&str> = cross.iter().map(|e| e.url.as_str()).collect();
            for e in &har.entries {
                if !cross_urls.contains(&e.url.as_str()) {
                    prop_assert_eq!(netsim::http::host_of(&e.url), page_host.clone());
                }
            }
        }
    }

    #[test]
    fn image_filters_nest_and_bytes_sum(
        seed in any::<u64>(),
        n in 3usize..6,
        rank in 0usize..6,
    ) {
        let corpus = tiny_corpus(seed, n, 1.0);
        for har in hars_of_rank(&corpus, rank) {
            let images: Vec<_> = har.images().collect();
            let cacheable: Vec<_> = har.cacheable_images().collect();
            // cacheable_images ⊆ images ⊆ ok entries.
            prop_assert!(cacheable.len() <= images.len());
            for e in &cacheable {
                prop_assert!(e.cacheable && e.is_image());
            }
            for e in &images {
                prop_assert!(e.ok, "failed entries must never count as images");
                prop_assert!(images.len() <= har.entries.len());
            }
            let sum: u64 = har.entries.iter().map(|e| e.body_bytes).sum();
            prop_assert_eq!(har.total_bytes(), sum);
            // The page's own HTML is entry 0 and on the page host.
            prop_assert_eq!(har.entries[0].url.as_str(), har.page_url.as_str());
        }
    }
}
