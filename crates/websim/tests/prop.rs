//! Property tests for the synthetic web.

use proptest::prelude::*;
use sim_core::SimRng;
use websim::generator::{SyntheticWeb, WebConfig};
use websim::har::{Har, HarEntry};
use websim::{SearchIndex, UrlPattern};

fn tiny_config() -> WebConfig {
    WebConfig {
        num_domains: 6,
        median_pages_per_domain: 8.0,
        ..WebConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generation_deterministic_across_seeds(seed in any::<u64>()) {
        let a = SyntheticWeb::generate(&tiny_config(), &mut SimRng::new(seed));
        let b = SyntheticWeb::generate(&tiny_config(), &mut SimRng::new(seed));
        prop_assert_eq!(a.domains(), b.domains());
        prop_assert_eq!(a.total_pages(), b.total_pages());
    }

    #[test]
    fn search_respects_limit(seed in any::<u64>(), limit in 0usize..100) {
        let web = SyntheticWeb::generate(&tiny_config(), &mut SimRng::new(seed));
        let index = SearchIndex::build(&web);
        for d in web.domains() {
            let results = index.query(&UrlPattern::Domain(d.clone()), limit);
            prop_assert!(results.len() <= limit);
            for u in &results {
                prop_assert!(UrlPattern::Domain(d.clone()).matches(u));
            }
        }
    }

    #[test]
    fn every_generated_embed_resolves(seed in any::<u64>()) {
        let web = SyntheticWeb::generate(&tiny_config(), &mut SimRng::new(seed));
        for site in &web.sites {
            for page in site.pages.values() {
                for e in &page.embeds {
                    let host = netsim::http::host_of(&e.url).expect("embed URL well-formed");
                    let owner = web.site(&host).expect("embed host exists in corpus");
                    let path = netsim::http::path_of(&e.url);
                    prop_assert!(
                        owner.resource(&path).is_some(),
                        "dangling embed {} on {}/{}",
                        e.url,
                        site.domain,
                        page.path
                    );
                }
            }
        }
    }
}

proptest! {
    #[test]
    fn har_total_bytes_is_sum(sizes in proptest::collection::vec(0u64..1_000_000, 0..50)) {
        let har = Har {
            page_url: "http://x.com/p".into(),
            entries: sizes
                .iter()
                .enumerate()
                .map(|(i, s)| HarEntry {
                    url: format!("http://x.com/r{i}"),
                    status: 200,
                    content_type: netsim::http::ContentType::Other,
                    body_bytes: *s,
                    cacheable: false,
                    nosniff: false,
                    time: sim_core::SimDuration::from_millis(1),
                    ok: true,
                })
                .collect(),
            page_ok: true,
        };
        prop_assert_eq!(har.total_bytes(), sizes.iter().sum::<u64>());
        let cap = sizes.iter().copied().max().unwrap_or(0);
        prop_assert!(!har.has_object_larger_than(cap));
        if cap > 0 {
            prop_assert!(har.has_object_larger_than(cap - 1));
        }
    }

    #[test]
    fn pattern_parse_matches_roundtrip(
        domain in "[a-z]{1,10}\\.(com|org)",
    ) {
        // A parsed bare domain pattern matches pages on that domain.
        let p = UrlPattern::parse(&domain);
        let url = format!("http://{domain}/any/page");
        prop_assert!(p.matches(&url));
        let parsed_domain = p.domain();
        prop_assert_eq!(parsed_domain.as_deref(), Some(domain.as_str()));
    }
}
