//! # browser — Web-browser emulation for the Encore reproduction
//!
//! The original Encore runs as JavaScript inside real browsers; its
//! inferences rest entirely on *browser behaviour*: which cross-origin
//! loads are permitted, which events fire on success and failure, what the
//! cache does, and how engines differ (paper §3.2, §4.3, Table 1). This
//! crate reimplements that behaviour natively:
//!
//! * [`engine`] — browser engines and their security quirks. Chrome's
//!   "fires `onload` iff HTTP 200 regardless of MIME" script behaviour
//!   (§4.3.2) is modelled here, as is `nosniff` handling.
//! * [`sop`] — the same-origin policy: cross-origin *embedding* is
//!   allowed; cross-origin *reads* (XHR without CORS) are not.
//! * [`cache`] — the HTTP cache, whose hit/miss timing asymmetry powers
//!   the inline-frame task (Figure 7).
//! * [`loader`] — the four Table 1 loaders (`img`, stylesheet, script,
//!   iframe) plus raw fetch, each returning exactly the events a page
//!   could observe.
//! * [`client`] — a browser at a vantage point: engine + cache + device
//!   speed + host.
//! * [`headless`] — the PhantomJS stand-in: render a page, record a HAR.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod headless;
pub mod loader;
pub mod sop;

pub use cache::BrowserCache;
pub use client::BrowserClient;
pub use engine::Engine;
pub use loader::{IframeLoad, LoadEvent, ResourceLoad};
pub use sop::Origin;
