//! The same-origin policy.
//!
//! Paper §3.2: "an origin is defined as the protocol, port, and DNS
//! domain". Sites "cannot receive data from another origin; in particular,
//! browsers restrict cross-origin reads from scripts … However,
//! cross-origin embedding is typically allowed and can leak some read
//! access. The cornerstone of Encore's design is to use information leaked
//! by cross-origin embedding."

use serde::{Deserialize, Serialize};
use std::fmt;

/// A web origin: scheme, host, port.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Origin {
    /// URL scheme (`http`/`https`).
    pub scheme: String,
    /// Lower-cased host.
    pub host: String,
    /// Port (default 80/443 by scheme).
    pub port: u16,
}

impl Origin {
    /// Parse the origin of an absolute URL. Returns `None` for malformed
    /// URLs.
    pub fn of(url: &str) -> Option<Origin> {
        let (scheme, rest) = if let Some(r) = url.strip_prefix("http://") {
            ("http", r)
        } else if let Some(r) = url.strip_prefix("https://") {
            ("https", r)
        } else if let Some(r) = url.strip_prefix("//") {
            ("http", r)
        } else {
            return None;
        };
        let end = rest.find(['/', '?', '#']).unwrap_or(rest.len());
        let hostport = &rest[..end];
        if hostport.is_empty() {
            return None;
        }
        let (host, port) = match hostport.split_once(':') {
            Some((h, p)) => (h, p.parse().ok()?),
            None => (hostport, if scheme == "https" { 443 } else { 80 }),
        };
        if host.is_empty() {
            return None;
        }
        Some(Origin {
            scheme: scheme.to_string(),
            host: host.to_ascii_lowercase(),
            port,
        })
    }

    /// Whether two URLs share an origin.
    pub fn same_origin(a: &str, b: &str) -> bool {
        match (Origin::of(a), Origin::of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}

impl fmt::Display for Origin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}:{}", self.scheme, self.host, self.port)
    }
}

/// Ways a document can cause a fetch, with different SOP treatment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FetchContext {
    /// `XMLHttpRequest` — cross-origin reads require CORS, which "default
    /// Cross-origin Resource Sharing settings prevent … from nearly all
    /// domains" (§4.2).
    Xhr,
    /// `<img>` embedding.
    ImageEmbed,
    /// `<link rel=stylesheet>` embedding.
    StylesheetEmbed,
    /// `<script src=…>` embedding.
    ScriptEmbed,
    /// `<iframe src=…>` embedding.
    IframeEmbed,
}

/// Whether the SOP permits a document at `page_url` to issue this fetch to
/// `target_url`. `target_allows_cors` models the target responding with
/// `Access-Control-Allow-Origin` (Encore's own collection server does;
/// arbitrary measurement targets do not).
pub fn fetch_permitted(
    page_url: &str,
    target_url: &str,
    ctx: FetchContext,
    target_allows_cors: bool,
) -> bool {
    match ctx {
        FetchContext::Xhr => Origin::same_origin(page_url, target_url) || target_allows_cors,
        // Embedding is always permitted cross-origin; what differs is how
        // much the embedder can *read* back, which the loaders model.
        FetchContext::ImageEmbed
        | FetchContext::StylesheetEmbed
        | FetchContext::ScriptEmbed
        | FetchContext::IframeEmbed => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_parsing() {
        let o = Origin::of("http://Example.com/path").unwrap();
        assert_eq!(o.host, "example.com");
        assert_eq!(o.port, 80);
        assert_eq!(o.scheme, "http");
        let o2 = Origin::of("https://example.com:8443/x").unwrap();
        assert_eq!(o2.port, 8443);
        assert!(Origin::of("garbage").is_none());
        assert!(Origin::of("http://").is_none());
    }

    #[test]
    fn same_origin_requires_all_three_components() {
        assert!(Origin::same_origin("http://a.com/x", "http://a.com/y?z"));
        assert!(!Origin::same_origin("http://a.com/", "https://a.com/"));
        assert!(!Origin::same_origin("http://a.com/", "http://b.com/"));
        assert!(!Origin::same_origin("http://a.com/", "http://a.com:8080/"));
        // Subdomains are different origins.
        assert!(!Origin::same_origin("http://a.com/", "http://www.a.com/"));
    }

    #[test]
    fn xhr_blocked_cross_origin_without_cors() {
        assert!(!fetch_permitted(
            "http://origin.com/page",
            "http://target.com/data",
            FetchContext::Xhr,
            false
        ));
        assert!(fetch_permitted(
            "http://origin.com/page",
            "http://target.com/data",
            FetchContext::Xhr,
            true
        ));
        assert!(fetch_permitted(
            "http://origin.com/page",
            "http://origin.com/data",
            FetchContext::Xhr,
            false
        ));
    }

    #[test]
    fn embedding_always_permitted() {
        for ctx in [
            FetchContext::ImageEmbed,
            FetchContext::StylesheetEmbed,
            FetchContext::ScriptEmbed,
            FetchContext::IframeEmbed,
        ] {
            assert!(fetch_permitted(
                "http://origin.com/page",
                "http://censored.com/favicon.ico",
                ctx,
                false
            ));
        }
    }

    #[test]
    fn display_format() {
        let o = Origin::of("http://a.com/").unwrap();
        assert_eq!(o.to_string(), "http://a.com:80");
    }
}
