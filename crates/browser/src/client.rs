//! A browser at a vantage point.
//!
//! A [`BrowserClient`] ties together a network host (country, ISP,
//! address), an engine, an HTTP cache, and a device-speed factor. Device
//! speed models client-side render cost variance — the paper's §5.3 list
//! of non-censorship failure causes includes "high client system load",
//! and Figure 7's cached-load distribution has a tail produced by slow
//! devices.

use crate::cache::BrowserCache;
use crate::engine::Engine;
use netsim::geo::{CountryCode, IspClass};
use netsim::host::Host;
use netsim::network::{FetchOutcome, Network};
use netsim::session::FetchSession;
use netsim::HttpRequest;
use sim_core::dist::{LogNormal, Sample};
use sim_core::{SimDuration, SimRng, SimTime};

/// A simulated browser client.
pub struct BrowserClient {
    /// Network identity (address, country, ISP).
    pub host: Host,
    /// Browser engine.
    pub engine: Engine,
    /// The HTTP cache.
    pub cache: BrowserCache,
    /// The transport session: compiled censor pipeline, DNS host cache,
    /// keep-alive connection pool. All of this client's traffic flows
    /// through it.
    pub session: FetchSession,
    /// Render-cost multiplier (1.0 = median 2014 device; larger is
    /// slower).
    pub device_speed: f64,
    /// The client's private randomness stream.
    pub rng: SimRng,
    /// Reusable request buffer for the redirect-following loaders: the
    /// URL (and referer, via `scratch_referer`) strings are recycled
    /// across fetches so the warm visit path performs no heap allocation.
    pub(crate) scratch_req: HttpRequest,
    /// Recycled `Referer` string for `scratch_req` (stored separately
    /// because `HttpRequest::referer` is an `Option` whose `None` state
    /// would otherwise drop the buffer).
    pub(crate) scratch_referer: String,
}

impl BrowserClient {
    /// Create a client attached to `network` in `country`.
    pub fn new(
        network: &mut Network,
        country: CountryCode,
        isp: IspClass,
        engine: Engine,
        root_rng: &SimRng,
    ) -> BrowserClient {
        let host = network.add_client(country, isp);
        let rng = root_rng.fork_indexed("browser-client", host.id.0);
        let mut client = BrowserClient {
            session: FetchSession::new(host.clone()),
            host,
            engine,
            cache: BrowserCache::default(),
            device_speed: 1.0,
            rng,
            scratch_req: HttpRequest::get(String::new()),
            scratch_referer: String::new(),
        };
        // Log-normal device speed: median 1×, some clients 3×+ slower.
        client.device_speed = LogNormal::new(0.0, 0.45)
            .sample(&mut client.rng)
            .clamp(0.3, 6.0);
        client
    }

    /// Issue one HTTP request through this client's transport session.
    ///
    /// This is the only way a browser client touches the network: DNS,
    /// TCP, and HTTP stages (and the censors interposed on them) are
    /// driven entirely by the session layer in `netsim`.
    pub fn fetch_once(
        &mut self,
        net: &mut Network,
        req: &HttpRequest,
        now: SimTime,
    ) -> FetchOutcome {
        self.session.fetch(net, req, now, &mut self.rng)
    }

    /// Time to decode/render `bytes` of fetched content on this device.
    /// Used for both cache hits (where it dominates) and network loads
    /// (where it adds a small tail).
    pub fn render_time(&mut self, bytes: u64) -> SimDuration {
        let jitter = LogNormal::new(0.0, 0.35).sample(&mut self.rng);
        let base_ms = 1.5 + bytes as f64 / 1_000_000.0 * 25.0;
        SimDuration::from_millis_f64(base_ms * self.device_speed * jitter)
    }

    /// Time for a cache lookup plus render — the total latency of a
    /// cached resource load (Figure 7's "cached" distribution).
    pub fn cached_load_time(&mut self, bytes: u64) -> SimDuration {
        SimDuration::from_millis_f64(0.3) + self.render_time(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::geo::{country, World};

    fn client() -> BrowserClient {
        let mut n = Network::ideal(World::builtin());
        let root = SimRng::new(7);
        BrowserClient::new(
            &mut n,
            country("PK"),
            IspClass::Residential,
            Engine::Chrome,
            &root,
        )
    }

    #[test]
    fn client_carries_host_identity() {
        let c = client();
        assert_eq!(c.host.country, country("PK"));
        assert_eq!(c.engine, Engine::Chrome);
    }

    #[test]
    fn device_speed_within_bounds() {
        let c = client();
        assert!((0.3..=6.0).contains(&c.device_speed));
    }

    #[test]
    fn render_time_grows_with_bytes() {
        let mut c = client();
        let small: f64 = (0..50)
            .map(|_| c.render_time(500).as_millis_f64())
            .sum::<f64>()
            / 50.0;
        let large: f64 = (0..50)
            .map(|_| c.render_time(2_000_000).as_millis_f64())
            .sum::<f64>()
            / 50.0;
        assert!(large > small * 2.0, "small={small} large={large}");
    }

    #[test]
    fn cached_loads_are_fast() {
        let mut c = client();
        // A favicon-sized cached load is typically well under 50 ms
        // (Figure 7: "cached images typically load within tens of
        // milliseconds").
        let avg: f64 = (0..100)
            .map(|_| c.cached_load_time(400).as_millis_f64())
            .sum::<f64>()
            / 100.0;
        assert!(avg < 50.0, "avg cached load = {avg}ms");
    }

    #[test]
    fn distinct_clients_have_distinct_streams() {
        let mut n = Network::ideal(World::builtin());
        let root = SimRng::new(7);
        let mut a = BrowserClient::new(
            &mut n,
            country("US"),
            IspClass::Residential,
            Engine::Chrome,
            &root,
        );
        let mut b = BrowserClient::new(
            &mut n,
            country("US"),
            IspClass::Residential,
            Engine::Chrome,
            &root,
        );
        // Same construction parameters, different host ids → different
        // randomness (device speeds or render draws diverge).
        let ra: Vec<u64> = (0..4).map(|_| a.render_time(1_000).as_micros()).collect();
        let rb: Vec<u64> = (0..4).map(|_| b.render_time(1_000).as_micros()).collect();
        assert_ne!(ra, rb);
    }
}
