//! Browser engines and their security-relevant differences.
//!
//! Encore tailors measurement tasks to the client's browser (paper §5.3:
//! "we should only schedule the script task type … on clients running
//! Chrome"). The behavioural differences that matter:
//!
//! * **Chrome** invokes a `<script>`'s `onload` whenever the fetch
//!   returned HTTP 200 — even for non-JavaScript bodies — provided
//!   `X-Content-Type-Options: nosniff` prevents execution (§4.3.2). This
//!   turns the script tag into a generic reachability probe, Chrome-only.
//! * Other engines fire `onerror` when the fetched body fails to parse as
//!   JavaScript, and dangerously *execute* it when it does (or when MIME
//!   sniffing mistakes it for JavaScript) — which is why Encore restricts
//!   the script task to Chrome.
//! * All 2014-era engines fire `onload`/`onerror` correctly for images
//!   and apply cross-origin stylesheets (the CSS-XSS bugs were fixed,
//!   §4.3.1).

use serde::{Deserialize, Serialize};
use sim_core::dist::Empirical;
use std::fmt;

/// A browser engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Engine {
    /// Google Chrome (Blink).
    Chrome,
    /// Mozilla Firefox (Gecko).
    Firefox,
    /// Apple Safari (WebKit).
    Safari,
    /// Internet Explorer (Trident).
    InternetExplorer,
}

impl Engine {
    /// All engines in a fixed order.
    pub const ALL: [Engine; 4] = [
        Engine::Chrome,
        Engine::Firefox,
        Engine::Safari,
        Engine::InternetExplorer,
    ];

    /// Whether `<script>` `onload` fires purely on HTTP 200 (Chrome's
    /// behaviour, the basis of the Chrome-only script task).
    pub fn script_onload_on_http_200(self) -> bool {
        matches!(self, Engine::Chrome)
    }

    /// Whether the engine honours `X-Content-Type-Options: nosniff`
    /// (2014: Chrome and IE did; Firefox shipped it later, Safari later
    /// still).
    pub fn respects_nosniff(self) -> bool {
        matches!(self, Engine::Chrome | Engine::InternetExplorer)
    }

    /// Global market share circa 2014, used when sampling client
    /// populations.
    pub fn market_share(self) -> f64 {
        match self {
            Engine::Chrome => 0.45,
            Engine::Firefox => 0.18,
            Engine::Safari => 0.13,
            Engine::InternetExplorer => 0.24,
        }
    }

    /// An [`Empirical`] distribution over engines weighted by market
    /// share.
    pub fn market_distribution() -> Empirical<Engine> {
        Empirical::new(
            Engine::ALL
                .into_iter()
                .map(|e| (e, e.market_share()))
                .collect(),
        )
    }
}

impl Engine {
    /// The engine's display name as a static string (hot paths build
    /// user-agent values from this without allocating).
    pub fn name(self) -> &'static str {
        match self {
            Engine::Chrome => "Chrome",
            Engine::Firefox => "Firefox",
            Engine::Safari => "Safari",
            Engine::InternetExplorer => "IE",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::SimRng;

    #[test]
    fn only_chrome_has_the_script_side_channel() {
        assert!(Engine::Chrome.script_onload_on_http_200());
        for e in [Engine::Firefox, Engine::Safari, Engine::InternetExplorer] {
            assert!(!e.script_onload_on_http_200(), "{e}");
        }
    }

    #[test]
    fn market_shares_sum_to_one() {
        let total: f64 = Engine::ALL.iter().map(|e| e.market_share()).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn market_distribution_samples_all_engines() {
        let d = Engine::market_distribution();
        let mut rng = SimRng::new(5);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..1_000 {
            seen.insert(*d.sample(&mut rng));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn chrome_respects_nosniff() {
        assert!(Engine::Chrome.respects_nosniff());
        assert!(!Engine::Safari.respects_nosniff());
    }
}
