//! The four cross-origin loaders of paper Table 1.
//!
//! | Mechanism   | Feedback                                   |
//! |-------------|--------------------------------------------|
//! | Images      | `onload` iff fetched *and rendered*        |
//! | Style sheets| style observably applied (computed style)  |
//! | Inline frames| none — cache timing only                  |
//! | Scripts     | Chrome: `onload` iff HTTP 200; others: executes or `onerror` |
//!
//! Each loader returns exactly what page JavaScript could observe: an
//! event plus elapsed time. Ground truth (did the censor interfere?) never
//! leaks through this interface — Encore must infer it, as in the paper.

use crate::client::BrowserClient;
use netsim::http::{ContentType, EmbedKind, HttpRequest, HttpResponse, StatusCode};
use netsim::network::Network;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};

/// The DOM event a load produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoadEvent {
    /// `onload` fired.
    OnLoad,
    /// `onerror` fired (or, for stylesheets, the style was observably not
    /// applied).
    OnError,
}

/// Result of an image / stylesheet / script load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceLoad {
    /// The observable event.
    pub event: LoadEvent,
    /// Wall time from issuing the load to the event.
    pub elapsed: SimDuration,
    /// Whether the resource came from the browser cache.
    pub from_cache: bool,
    /// Script loads only: whether the engine executed content fetched
    /// from an untrusted origin (the §4.3.2 security hazard motivating
    /// Chrome-only deployment of the script task).
    pub executed_untrusted: bool,
    /// Whether the failure carried a near-source congestion signal (the
    /// fetch was shed at an overloaded transit link rather than
    /// censored) — observable client-side as a distinct fast
    /// connection-stage error, like `NS_ERROR_NET_RESET` vs a timeout.
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub congestion_signaled: bool,
}

/// Result of an iframe load. Note the absence of a success event:
/// "browsers … provide no explicit notification about whether an inline
/// frame loaded successfully" (§4.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IframeLoad {
    /// Time until the iframe's `onload` fired (fires whether or not the
    /// page actually rendered useful content).
    pub elapsed: SimDuration,
    /// How many subresources were fetched into the cache (observable only
    /// indirectly, via timing).
    pub subresources_fetched: usize,
    /// Whether the frame's own fetch failed with a near-source
    /// congestion signal (see [`ResourceLoad::congestion_signaled`]).
    #[serde(default, skip_serializing_if = "std::ops::Not::not")]
    pub congestion_signaled: bool,
}

/// Maximum redirect hops a loader follows.
const MAX_REDIRECTS: usize = 3;

impl BrowserClient {
    /// Raw fetch with redirect following. Returns the final response (or
    /// error) and total elapsed time. Does not consult the cache.
    ///
    /// The request is built into the client's recycled scratch buffers, so
    /// repeated calls perform no heap allocation of their own — the hot
    /// visit path issues thousands of these.
    pub fn fetch_following_redirects(
        &mut self,
        net: &mut Network,
        url: &str,
        referer: Option<&str>,
        now: SimTime,
    ) -> (
        Result<HttpResponse, netsim::network::FetchError>,
        SimDuration,
    ) {
        let mut req = std::mem::replace(&mut self.scratch_req, HttpRequest::get(String::new()));
        req.method = netsim::http::Method::Get;
        req.body_bytes = 0;
        req.url.clear();
        req.url.push_str(url);
        req.referer = referer.map(|r| {
            let mut buf = std::mem::take(&mut self.scratch_referer);
            buf.clear();
            buf.push_str(r);
            buf
        });

        let mut elapsed = SimDuration::ZERO;
        // None = redirect budget exhausted: browsers abort with an error.
        let mut verdict = None;
        for _ in 0..=MAX_REDIRECTS {
            let out = self.fetch_once(net, &req, now + elapsed);
            elapsed += out.timings.total();
            match out.result {
                Ok(resp) if resp.status.is_redirect() => match &resp.location {
                    Some(loc) => {
                        req.url.clear();
                        req.url.push_str(loc);
                    }
                    None => {
                        verdict = Some(Ok(resp));
                        break;
                    }
                },
                other => {
                    verdict = Some(other);
                    break;
                }
            }
        }
        // Reclaim the buffers for the next call. `scratch_req.url` is left
        // holding the final URL so `fetch_following_redirects_traced` can
        // report it without re-deriving the hop chain.
        if let Some(buf) = req.referer.take() {
            self.scratch_referer = buf;
        }
        self.scratch_req = req;
        (
            verdict.unwrap_or(Err(netsim::network::FetchError::ResponseTimeout)),
            elapsed,
        )
    }

    /// Like [`BrowserClient::fetch_following_redirects`] but also returns
    /// the final URL after redirects (allocating — used by the HAR
    /// recorder, which runs off the hot path).
    pub fn fetch_following_redirects_traced(
        &mut self,
        net: &mut Network,
        url: &str,
        referer: Option<&str>,
        now: SimTime,
    ) -> (
        Result<HttpResponse, netsim::network::FetchError>,
        SimDuration,
        String,
    ) {
        let (result, elapsed) = self.fetch_following_redirects(net, url, referer, now);
        let final_url = self.scratch_req.url.clone();
        (result, elapsed, final_url)
    }

    /// `<img src=…>`: `onload` iff the browser fetched **and rendered**
    /// the image; `onerror` otherwise (including when a censor substitutes
    /// an HTML block page — HTML is not a renderable image).
    pub fn load_image(&mut self, net: &mut Network, url: &str, now: SimTime) -> ResourceLoad {
        if let Some(cached) = self.cache.lookup(url) {
            let ok = cached.content_type == ContentType::Image && cached.valid_body;
            return ResourceLoad {
                event: if ok {
                    LoadEvent::OnLoad
                } else {
                    LoadEvent::OnError
                },
                elapsed: self.cached_load_time(cached.body_bytes),
                from_cache: true,
                executed_untrusted: false,
                congestion_signaled: false,
            };
        }
        let (result, net_time) = self.fetch_following_redirects(net, url, None, now);
        match result {
            Ok(resp) => {
                let renders = resp.status.is_success()
                    && resp.content_type == ContentType::Image
                    && resp.valid_body;
                if renders {
                    self.cache.store(url, &resp);
                    ResourceLoad {
                        event: LoadEvent::OnLoad,
                        elapsed: net_time + self.render_time(resp.body_bytes),
                        from_cache: false,
                        executed_untrusted: false,
                        congestion_signaled: false,
                    }
                } else {
                    ResourceLoad {
                        event: LoadEvent::OnError,
                        elapsed: net_time + self.render_time(256),
                        from_cache: false,
                        executed_untrusted: false,
                        congestion_signaled: false,
                    }
                }
            }
            Err(e) => ResourceLoad {
                event: LoadEvent::OnError,
                elapsed: net_time,
                from_cache: false,
                executed_untrusted: false,
                congestion_signaled: matches!(e, netsim::network::FetchError::Congested),
            },
        }
    }

    /// `<link rel="stylesheet">` inside a sandbox iframe, success detected
    /// by `getComputedStyle` (§4.3.1): "applied" iff the fetch succeeded
    /// and the body is a valid, non-empty stylesheet.
    pub fn load_stylesheet(&mut self, net: &mut Network, url: &str, now: SimTime) -> ResourceLoad {
        if let Some(cached) = self.cache.lookup(url) {
            let ok = cached.content_type == ContentType::Stylesheet
                && cached.valid_body
                && cached.body_bytes > 0;
            return ResourceLoad {
                event: if ok {
                    LoadEvent::OnLoad
                } else {
                    LoadEvent::OnError
                },
                elapsed: self.cached_load_time(cached.body_bytes),
                from_cache: true,
                executed_untrusted: false,
                congestion_signaled: false,
            };
        }
        let (result, net_time) = self.fetch_following_redirects(net, url, None, now);
        match result {
            Ok(resp) => {
                let applied = resp.status.is_success()
                    && resp.content_type == ContentType::Stylesheet
                    && resp.valid_body
                    && resp.body_bytes > 0; // Table 1: "only non-empty style sheets"
                if applied {
                    self.cache.store(url, &resp);
                }
                ResourceLoad {
                    event: if applied {
                        LoadEvent::OnLoad
                    } else {
                        LoadEvent::OnError
                    },
                    elapsed: net_time + self.render_time(resp.body_bytes.min(4_096)),
                    from_cache: false,
                    executed_untrusted: false,
                    congestion_signaled: false,
                }
            }
            Err(e) => ResourceLoad {
                event: LoadEvent::OnError,
                elapsed: net_time,
                from_cache: false,
                executed_untrusted: false,
                congestion_signaled: matches!(e, netsim::network::FetchError::Congested),
            },
        }
    }

    /// `<script src=…>`. Engine-dependent (§4.3.2):
    ///
    /// * Chrome fires `onload` iff the fetch returned HTTP 200 — even for
    ///   non-JavaScript bodies — and respects `nosniff`, so properly
    ///   configured targets are never executed.
    /// * Other engines attempt to *execute* the body: `onload` iff it
    ///   parses as JavaScript, `onerror` otherwise. Executing arbitrary
    ///   cross-origin content is the security hazard that restricts this
    ///   task to Chrome.
    pub fn load_script(&mut self, net: &mut Network, url: &str, now: SimTime) -> ResourceLoad {
        let (result, net_time) = self.fetch_following_redirects(net, url, None, now);
        match result {
            Ok(resp) => {
                let is_200 = resp.status == StatusCode::OK;
                let is_js = resp.content_type == ContentType::Script && resp.valid_body;
                let nosniff_blocks = resp.nosniff && !is_js && self.engine.respects_nosniff();
                let (event, executed) = if self.engine.script_onload_on_http_200() {
                    // Chrome: onload on any 200. Real JS would execute,
                    // but Encore sandboxes its script tasks (§4.2:
                    // "Encore must carefully sandbox the embedded
                    // content"), and nosniff keeps non-JS inert — so no
                    // unsandboxed untrusted execution occurs on Chrome.
                    (
                        if is_200 {
                            LoadEvent::OnLoad
                        } else {
                            LoadEvent::OnError
                        },
                        false,
                    )
                } else if nosniff_blocks {
                    (LoadEvent::OnError, false)
                } else if is_200 && is_js {
                    (LoadEvent::OnLoad, true)
                } else {
                    // Non-JS body: parse failure. Engines that ignore
                    // nosniff *attempted* execution of untrusted bytes.
                    (LoadEvent::OnError, false)
                };
                ResourceLoad {
                    event,
                    elapsed: net_time + self.render_time(resp.body_bytes.min(65_536)),
                    from_cache: false,
                    executed_untrusted: executed,
                    congestion_signaled: false,
                }
            }
            Err(e) => ResourceLoad {
                event: LoadEvent::OnError,
                elapsed: net_time,
                from_cache: false,
                executed_untrusted: false,
                congestion_signaled: matches!(e, netsim::network::FetchError::Congested),
            },
        }
    }

    /// `<iframe src=…>`: loads the page and, if the HTML arrives, all its
    /// subresources — populating the cache. Provides **no** success
    /// signal; the caller (Encore's iframe task) must probe the cache by
    /// timing.
    pub fn load_iframe(&mut self, net: &mut Network, url: &str, now: SimTime) -> IframeLoad {
        let (result, mut elapsed) = self.fetch_following_redirects(net, url, None, now);
        let congestion_signaled = matches!(result, Err(netsim::network::FetchError::Congested));
        let mut fetched = 0usize;
        if let Ok(resp) = result {
            if resp.status.is_success() && resp.content_type == ContentType::Html {
                // Browsers parallelise subresource fetches (~6 connections
                // per host): elapsed grows by the *maximum* over a wave
                // rather than the sum. We fetch sequentially for cache
                // correctness but charge parallel time.
                let mut wave_max = SimDuration::ZERO;
                let embeds = resp.embeds.clone();
                for (i, embed) in embeds.iter().enumerate() {
                    let sub = match embed.kind {
                        EmbedKind::Image => self.load_image(net, &embed.url, now + elapsed),
                        EmbedKind::Stylesheet => {
                            self.load_stylesheet(net, &embed.url, now + elapsed)
                        }
                        EmbedKind::Script => self.load_script(net, &embed.url, now + elapsed),
                    };
                    fetched += 1;
                    wave_max = wave_max.max(sub.elapsed);
                    if (i + 1) % 6 == 0 {
                        elapsed += wave_max;
                        wave_max = SimDuration::ZERO;
                    }
                }
                elapsed += wave_max;
                elapsed += self.render_time(resp.body_bytes);
            }
        }
        IframeLoad {
            elapsed,
            subresources_fetched: fetched,
            congestion_signaled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use netsim::geo::{country, IspClass, World};
    use netsim::network::ConstHandler;
    use sim_core::SimRng;

    fn setup(engine: Engine) -> (Network, BrowserClient) {
        let mut n = Network::ideal(World::builtin());
        let root = SimRng::new(0xB0B);
        let c = BrowserClient::new(&mut n, country("US"), IspClass::Residential, engine, &root);
        (n, c)
    }

    fn add(n: &mut Network, name: &str, resp: HttpResponse) {
        n.add_server(name, country("US"), Box::new(ConstHandler(resp)));
    }

    #[test]
    fn image_onload_on_success() {
        let (mut n, mut c) = setup(Engine::Firefox);
        add(&mut n, "t.com", HttpResponse::ok(ContentType::Image, 400));
        let r = c.load_image(&mut n, "http://t.com/favicon.ico", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnLoad);
        assert!(!r.from_cache);
        assert!(
            r.elapsed > SimDuration::from_millis(10),
            "network time included"
        );
    }

    #[test]
    fn image_onerror_on_dns_failure() {
        let (mut n, mut c) = setup(Engine::Firefox);
        let r = c.load_image(&mut n, "http://missing.example/x.png", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnError);
    }

    #[test]
    fn image_onerror_on_block_page() {
        // A censor's HTML block page can't render as an image.
        let (mut n, mut c) = setup(Engine::Firefox);
        add(&mut n, "t.com", HttpResponse::block_page());
        let r = c.load_image(&mut n, "http://t.com/x.png", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnError);
    }

    #[test]
    fn image_onerror_on_404() {
        let (mut n, mut c) = setup(Engine::Chrome);
        add(&mut n, "t.com", HttpResponse::not_found());
        let r = c.load_image(&mut n, "http://t.com/x.png", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnError);
    }

    #[test]
    fn image_onerror_on_invalid_body() {
        let (mut n, mut c) = setup(Engine::Chrome);
        add(
            &mut n,
            "t.com",
            HttpResponse::ok(ContentType::Image, 400).with_invalid_body(),
        );
        let r = c.load_image(&mut n, "http://t.com/x.png", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnError);
    }

    #[test]
    fn second_image_load_hits_cache_and_is_much_faster() {
        let (mut n, mut c) = setup(Engine::Chrome);
        add(&mut n, "t.com", HttpResponse::ok(ContentType::Image, 400));
        let cold = c.load_image(&mut n, "http://t.com/i.png", SimTime::ZERO);
        let warm = c.load_image(&mut n, "http://t.com/i.png", SimTime::from_secs(1));
        assert!(!cold.from_cache);
        assert!(warm.from_cache);
        assert_eq!(warm.event, LoadEvent::OnLoad);
        // Figure 7's separation: uncached ≥ 50 ms slower than cached.
        assert!(
            cold.elapsed >= warm.elapsed + SimDuration::from_millis(50),
            "cold {} vs warm {}",
            cold.elapsed,
            warm.elapsed
        );
    }

    #[test]
    fn non_cacheable_image_not_cached() {
        let (mut n, mut c) = setup(Engine::Chrome);
        add(
            &mut n,
            "t.com",
            HttpResponse::ok(ContentType::Image, 400).no_store(),
        );
        c.load_image(&mut n, "http://t.com/i.png", SimTime::ZERO);
        let again = c.load_image(&mut n, "http://t.com/i.png", SimTime::from_secs(1));
        assert!(!again.from_cache);
    }

    #[test]
    fn stylesheet_applied_detection() {
        let (mut n, mut c) = setup(Engine::Safari);
        add(
            &mut n,
            "t.com",
            HttpResponse::ok(ContentType::Stylesheet, 2_000),
        );
        let r = c.load_stylesheet(&mut n, "http://t.com/s.css", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnLoad);
    }

    #[test]
    fn empty_stylesheet_is_undetectable() {
        // Table 1: "Only non-empty style sheets".
        let (mut n, mut c) = setup(Engine::Safari);
        add(
            &mut n,
            "t.com",
            HttpResponse::ok(ContentType::Stylesheet, 0),
        );
        let r = c.load_stylesheet(&mut n, "http://t.com/s.css", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnError);
    }

    #[test]
    fn stylesheet_blockpage_not_applied() {
        let (mut n, mut c) = setup(Engine::Safari);
        add(&mut n, "t.com", HttpResponse::block_page());
        let r = c.load_stylesheet(&mut n, "http://t.com/s.css", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnError);
    }

    #[test]
    fn chrome_script_onload_on_any_200() {
        // The Chrome side channel: a 200 HTML page (not JS!) still fires
        // onload.
        let (mut n, mut c) = setup(Engine::Chrome);
        add(
            &mut n,
            "t.com",
            HttpResponse::ok(ContentType::Html, 20_000).with_nosniff(),
        );
        let r = c.load_script(&mut n, "http://t.com/page.html", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnLoad);
        assert!(!r.executed_untrusted, "nosniff + non-JS must not execute");
    }

    #[test]
    fn chrome_script_onerror_on_404() {
        let (mut n, mut c) = setup(Engine::Chrome);
        add(&mut n, "t.com", HttpResponse::not_found());
        let r = c.load_script(&mut n, "http://t.com/x.js", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnError);
    }

    #[test]
    fn firefox_script_executes_valid_js() {
        let (mut n, mut c) = setup(Engine::Firefox);
        add(
            &mut n,
            "t.com",
            HttpResponse::ok(ContentType::Script, 30_000),
        );
        let r = c.load_script(&mut n, "http://t.com/lib.js", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnLoad);
        assert!(r.executed_untrusted, "non-Chrome executed remote JS");
    }

    #[test]
    fn firefox_script_onerror_on_html_body() {
        let (mut n, mut c) = setup(Engine::Firefox);
        add(&mut n, "t.com", HttpResponse::ok(ContentType::Html, 20_000));
        let r = c.load_script(&mut n, "http://t.com/page.html", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnError);
        assert!(!r.executed_untrusted);
    }

    #[test]
    fn ie_respects_nosniff() {
        let (mut n, mut c) = setup(Engine::InternetExplorer);
        add(
            &mut n,
            "t.com",
            HttpResponse::ok(ContentType::Html, 20_000).with_nosniff(),
        );
        let r = c.load_script(&mut n, "http://t.com/page.html", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnError);
        assert!(!r.executed_untrusted);
    }

    #[test]
    fn iframe_populates_cache_with_embeds() {
        let mut n = Network::ideal(World::builtin());
        let root = SimRng::new(0xB0B);
        let mut c = BrowserClient::new(
            &mut n,
            country("US"),
            IspClass::Residential,
            Engine::Chrome,
            &root,
        );
        // Page with an embedded cacheable image.
        let page = HttpResponse::ok(ContentType::Html, 30_000)
            .no_store()
            .with_embeds(vec![netsim::http::Embedded {
                url: "http://t.com/inner.png".into(),
                kind: EmbedKind::Image,
            }]);
        struct PageHandler(HttpResponse);
        impl netsim::network::HttpHandler for PageHandler {
            fn handle(
                &self,
                req: &HttpRequest,
                _ip: std::net::Ipv4Addr,
                _now: SimTime,
            ) -> HttpResponse {
                if req.path() == "/page.html" {
                    self.0.clone()
                } else if req.path() == "/inner.png" {
                    HttpResponse::ok(ContentType::Image, 900)
                } else {
                    HttpResponse::not_found()
                }
            }
        }
        n.add_server("t.com", country("US"), Box::new(PageHandler(page)));
        let r = c.load_iframe(&mut n, "http://t.com/page.html", SimTime::ZERO);
        assert_eq!(r.subresources_fetched, 1);
        assert!(c.cache.contains("http://t.com/inner.png"));
        // The cache-timing probe now distinguishes loaded from not-loaded.
        let probe = c.load_image(&mut n, "http://t.com/inner.png", SimTime::from_secs(1));
        assert!(probe.from_cache);
        assert!(probe.elapsed < SimDuration::from_millis(50));
    }

    #[test]
    fn iframe_failure_fetches_nothing() {
        let (mut n, mut c) = setup(Engine::Chrome);
        let r = c.load_iframe(&mut n, "http://gone.example/page.html", SimTime::ZERO);
        assert_eq!(r.subresources_fetched, 0);
        assert!(c.cache.is_empty());
    }

    #[test]
    fn redirects_are_followed() {
        let (mut n, mut c) = setup(Engine::Chrome);
        add(
            &mut n,
            "real.com",
            HttpResponse::ok(ContentType::Image, 500),
        );
        add(
            &mut n,
            "alias.com",
            HttpResponse::redirect("http://real.com/i.png"),
        );
        let r = c.load_image(&mut n, "http://alias.com/old.png", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnLoad);
    }

    #[test]
    fn redirect_loop_errors_out() {
        let (mut n, mut c) = setup(Engine::Chrome);
        add(
            &mut n,
            "loop.com",
            HttpResponse::redirect("http://loop.com/again"),
        );
        let r = c.load_image(&mut n, "http://loop.com/start", SimTime::ZERO);
        assert_eq!(r.event, LoadEvent::OnError);
    }
}
