//! The browser HTTP cache.
//!
//! The inline-frame task (paper §4.3.2) infers whether a page loaded by
//! timing a subsequent image fetch: "If rendering this image is fast
//! (e.g., less than a few milliseconds) we assume that the image was
//! cached from the previous fetch". That inference is only as good as the
//! cache model, so we model an LRU cache keyed by URL, storing enough of
//! the response to replay it, with session-scoped entries (Encore tasks
//! run within one page view; TTL subtleties don't matter at that scale,
//! but capacity eviction does).

use netsim::http::HttpResponse;
use std::collections::HashMap;

/// A bounded LRU cache of successful, cacheable responses.
#[derive(Debug, Clone)]
pub struct BrowserCache {
    entries: HashMap<String, (HttpResponse, u64)>,
    /// Logical clock for LRU ordering.
    tick: u64,
    capacity: usize,
    hits: u64,
    misses: u64,
}

/// Default entry capacity. Real 2014 browser caches held tens of
/// thousands of objects; what matters here is that it comfortably exceeds
/// one page's resource count.
pub const DEFAULT_CAPACITY: usize = 4_096;

impl Default for BrowserCache {
    fn default() -> Self {
        BrowserCache::new(DEFAULT_CAPACITY)
    }
}

impl BrowserCache {
    /// Create a cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> BrowserCache {
        BrowserCache {
            entries: HashMap::new(),
            tick: 0,
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    /// Store a response if its headers permit caching.
    pub fn store(&mut self, url: &str, resp: &HttpResponse) {
        if !resp.is_cacheable() {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(url) {
            // Evict the least recently used entry. HashMap iteration order
            // is non-deterministic, so pick the minimum (tick, key) pair —
            // key as tie-break keeps eviction deterministic.
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(k, (_, t))| (*t, (*k).clone()))
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.tick += 1;
        self.entries
            .insert(url.to_string(), (resp.clone(), self.tick));
    }

    /// Look up a URL, refreshing its recency. Records hit/miss stats.
    pub fn lookup(&mut self, url: &str) -> Option<HttpResponse> {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.get_mut(url) {
            Some((resp, t)) => {
                *t = tick;
                self.hits += 1;
                Some(resp.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Peek without touching recency or stats (tests, diagnostics).
    pub fn contains(&self, url: &str) -> bool {
        self.entries.contains_key(url)
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Clear everything (a fresh browsing session).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::http::ContentType;

    fn img() -> HttpResponse {
        HttpResponse::ok(ContentType::Image, 500)
    }

    #[test]
    fn stores_and_returns_cacheable() {
        let mut c = BrowserCache::default();
        c.store("http://x/a.png", &img());
        assert!(c.contains("http://x/a.png"));
        assert_eq!(c.lookup("http://x/a.png").unwrap().body_bytes, 500);
        assert_eq!(c.stats(), (1, 0));
    }

    #[test]
    fn refuses_non_cacheable() {
        let mut c = BrowserCache::default();
        c.store("http://x/a.png", &img().no_store());
        assert!(c.is_empty());
        let mut nf = img();
        nf.status = netsim::http::StatusCode::NOT_FOUND;
        c.store("http://x/404", &nf);
        assert!(c.is_empty());
    }

    #[test]
    fn miss_recorded() {
        let mut c = BrowserCache::default();
        assert!(c.lookup("http://x/missing").is_none());
        assert_eq!(c.stats(), (0, 1));
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = BrowserCache::new(2);
        c.store("http://x/1", &img());
        c.store("http://x/2", &img());
        // Touch 1 so 2 becomes LRU.
        c.lookup("http://x/1");
        c.store("http://x/3", &img());
        assert!(c.contains("http://x/1"));
        assert!(!c.contains("http://x/2"));
        assert!(c.contains("http://x/3"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn restore_existing_does_not_evict() {
        let mut c = BrowserCache::new(2);
        c.store("http://x/1", &img());
        c.store("http://x/2", &img());
        c.store("http://x/1", &img()); // update in place
        assert_eq!(c.len(), 2);
        assert!(c.contains("http://x/2"));
    }

    #[test]
    fn clear_resets_entries() {
        let mut c = BrowserCache::default();
        c.store("http://x/1", &img());
        c.clear();
        assert!(c.is_empty());
    }
}
