//! Headless rendering — the PhantomJS stand-in.
//!
//! Paper §5.2: "the Target Fetcher collects detailed information about
//! each URL by loading and rendering it in a real Web browser and
//! recording its behavior in an HTTP Archive (HAR) file. We use the
//! PhantomJS headless browser hosted on servers at Georgia Tech."
//!
//! [`BrowserClient::render_har`](crate::BrowserClient) loads a page with a fresh cache and records every fetch
//! into a [`Har`]. The headless browser should run from an *unfiltered*
//! vantage point (the paper's Georgia Tech servers); the caller chooses
//! where to host it.

use crate::client::BrowserClient;
use netsim::http::{ContentType, EmbedKind, HttpRequest};
use netsim::network::Network;
use sim_core::SimTime;
use websim::har::{Har, HarEntry};

impl BrowserClient {
    /// Render `url` and record a HAR. The cache is cleared first so the
    /// archive reflects a cold load (what a new visitor transfers).
    pub fn render_har(&mut self, net: &mut Network, url: &str, now: SimTime) -> Har {
        self.cache.clear();
        // A HAR documents what a *new visitor* transfers: cold HTTP cache,
        // cold DNS, cold connections.
        self.session.reset();
        let mut har = Har {
            page_url: url.to_string(),
            entries: Vec::new(),
            page_ok: false,
        };

        let (result, elapsed, final_url) =
            self.fetch_following_redirects_traced(net, url, None, now);
        match result {
            Ok(resp) => {
                let page_ok = resp.status.is_success() && resp.content_type == ContentType::Html;
                har.page_ok = page_ok;
                har.entries.push(HarEntry {
                    url: final_url,
                    status: resp.status.0,
                    content_type: resp.content_type,
                    body_bytes: resp.body_bytes,
                    cacheable: resp.is_cacheable(),
                    nosniff: resp.nosniff,
                    time: elapsed,
                    ok: page_ok,
                });
                if page_ok {
                    for embed in resp.embeds.clone() {
                        let req = HttpRequest::get(&embed.url).with_referer(url);
                        let out = self.fetch_once(net, &req, now + elapsed);
                        let entry = match out.result {
                            Ok(sub) => {
                                let expected = match embed.kind {
                                    EmbedKind::Image => sub.content_type == ContentType::Image,
                                    EmbedKind::Stylesheet => {
                                        sub.content_type == ContentType::Stylesheet
                                    }
                                    // Script slots also carry media blobs in
                                    // the generator; any successful body
                                    // counts as fetched.
                                    EmbedKind::Script => true,
                                };
                                HarEntry {
                                    url: embed.url.clone(),
                                    status: sub.status.0,
                                    content_type: sub.content_type,
                                    body_bytes: sub.body_bytes,
                                    cacheable: sub.is_cacheable(),
                                    nosniff: sub.nosniff,
                                    time: out.timings.total(),
                                    ok: sub.status.is_success() && sub.valid_body && expected,
                                }
                            }
                            Err(_) => HarEntry {
                                url: embed.url.clone(),
                                status: 0,
                                content_type: ContentType::Other,
                                body_bytes: 0,
                                cacheable: false,
                                nosniff: false,
                                time: out.timings.total(),
                                ok: false,
                            },
                        };
                        har.entries.push(entry);
                    }
                }
            }
            Err(_) => {
                har.entries.push(HarEntry {
                    url: url.to_string(),
                    status: 0,
                    content_type: ContentType::Other,
                    body_bytes: 0,
                    cacheable: false,
                    nosniff: false,
                    time: elapsed,
                    ok: false,
                });
            }
        }
        har
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use netsim::geo::{country, IspClass, World};
    use sim_core::SimRng;
    use websim::generator::{SyntheticWeb, WebConfig};

    fn corpus_network() -> (Network, SyntheticWeb, BrowserClient) {
        let mut rng = SimRng::new(0xAB);
        let web = SyntheticWeb::generate(&WebConfig::small(), &mut rng);
        let mut n = Network::ideal(World::builtin());
        web.install(&mut n, &mut rng);
        let root = SimRng::new(1);
        let fetcher = BrowserClient::new(
            &mut n,
            country("US"),
            IspClass::Datacenter,
            Engine::Chrome,
            &root,
        );
        (n, web, fetcher)
    }

    #[test]
    fn har_captures_page_and_embeds() {
        let (mut n, web, mut fetcher) = corpus_network();
        let site = &web.sites[0];
        let page_path = site.pages.keys().next().unwrap().clone();
        let url = site.url(&page_path);
        let har = fetcher.render_har(&mut n, &url, SimTime::ZERO);
        assert!(har.page_ok);
        let n_embeds = site.page(&page_path).unwrap().embeds.len();
        assert_eq!(har.entries.len(), 1 + n_embeds);
        assert!(har.total_bytes() > 0);
    }

    #[test]
    fn har_total_matches_ground_truth_lower_bound() {
        let (mut n, web, mut fetcher) = corpus_network();
        let site = &web.sites[1];
        let page_path = site.pages.keys().next().unwrap().clone();
        let har = fetcher.render_har(&mut n, &site.url(&page_path), SimTime::ZERO);
        // HAR includes cross-origin embeds, so it is >= the same-site
        // lower bound.
        let lb = site.page_weight_lower_bound(&page_path).unwrap();
        assert!(
            har.total_bytes() >= lb,
            "har {} < lower bound {lb}",
            har.total_bytes()
        );
    }

    #[test]
    fn har_for_dead_url_records_failure() {
        let (mut n, _, mut fetcher) = corpus_network();
        let har = fetcher.render_har(&mut n, "http://offline.example/x", SimTime::ZERO);
        assert!(!har.page_ok);
        assert_eq!(har.entries.len(), 1);
        assert_eq!(har.entries[0].status, 0);
    }

    #[test]
    fn har_marks_cacheable_images() {
        let (mut n, web, mut fetcher) = corpus_network();
        // Find a page with at least one same-site cacheable image embed.
        let mut found = false;
        'outer: for site in &web.sites {
            for (path, page) in &site.pages {
                let has = page.embeds.iter().any(|e| {
                    e.kind == EmbedKind::Image
                        && e.url
                            .strip_prefix(&format!("http://{}", site.domain))
                            .and_then(|p| site.resource(p))
                            .is_some_and(|r| r.cacheable)
                });
                if has {
                    let har = fetcher.render_har(&mut n, &site.url(path), SimTime::ZERO);
                    assert!(har.cacheable_images().count() >= 1);
                    found = true;
                    break 'outer;
                }
            }
        }
        assert!(found, "corpus should contain cacheable images");
    }
}
