//! Property tests for the browser emulator.

use browser::cache::BrowserCache;
use browser::sop::{fetch_permitted, FetchContext};
use browser::Origin;
use netsim::http::{ContentType, HttpResponse};
use proptest::prelude::*;

proptest! {
    #[test]
    fn origin_parse_never_panics(s in ".{0,150}") {
        let _ = Origin::of(&s);
        let _ = Origin::same_origin(&s, "http://a.com/");
    }

    #[test]
    fn same_origin_is_reflexive_for_wellformed(
        host in "[a-z][a-z0-9-]{0,15}\\.(com|org|net)",
        path in "[a-z0-9/._-]{0,30}",
    ) {
        let url = format!("http://{host}/{path}");
        prop_assert!(Origin::same_origin(&url, &url));
    }

    #[test]
    fn same_origin_is_symmetric(
        a in "https?://[a-z]{1,8}\\.(com|org)(:[0-9]{2,4})?/[a-z0-9]{0,10}",
        b in "https?://[a-z]{1,8}\\.(com|org)(:[0-9]{2,4})?/[a-z0-9]{0,10}",
    ) {
        prop_assert_eq!(Origin::same_origin(&a, &b), Origin::same_origin(&b, &a));
    }

    #[test]
    fn embedding_always_permitted_xhr_needs_cors_or_same_origin(
        page in "http://[a-z]{1,8}\\.com/",
        target in "http://[a-z]{1,8}\\.org/x",
    ) {
        for ctx in [
            FetchContext::ImageEmbed,
            FetchContext::StylesheetEmbed,
            FetchContext::ScriptEmbed,
            FetchContext::IframeEmbed,
        ] {
            prop_assert!(fetch_permitted(&page, &target, ctx, false));
        }
        // Cross-origin XHR: only with CORS.
        prop_assert!(!fetch_permitted(&page, &target, FetchContext::Xhr, false));
        prop_assert!(fetch_permitted(&page, &target, FetchContext::Xhr, true));
        prop_assert!(fetch_permitted(&page, &page, FetchContext::Xhr, false));
    }

    #[test]
    fn cache_never_exceeds_capacity(
        capacity in 1usize..50,
        urls in proptest::collection::vec("[a-z0-9]{1,12}", 0..200),
    ) {
        let mut cache = BrowserCache::new(capacity);
        for u in &urls {
            cache.store(&format!("http://x.com/{u}"), &HttpResponse::ok(ContentType::Image, 100));
            prop_assert!(cache.len() <= capacity);
        }
    }

    #[test]
    fn cache_lookup_after_store_hits(urls in proptest::collection::vec("[a-z0-9]{1,12}", 1..50)) {
        let mut cache = BrowserCache::new(1_000);
        for u in &urls {
            let url = format!("http://x.com/{u}");
            cache.store(&url, &HttpResponse::ok(ContentType::Image, 42));
            prop_assert!(cache.lookup(&url).is_some());
        }
    }

    #[test]
    fn cache_stats_add_up(lookups in proptest::collection::vec(proptest::bool::ANY, 0..100)) {
        let mut cache = BrowserCache::new(64);
        cache.store("http://x.com/present", &HttpResponse::ok(ContentType::Image, 1));
        for hit in &lookups {
            if *hit {
                cache.lookup("http://x.com/present");
            } else {
                cache.lookup("http://x.com/absent");
            }
        }
        let (h, m) = cache.stats();
        prop_assert_eq!(h as usize, lookups.iter().filter(|b| **b).count());
        prop_assert_eq!(m as usize, lookups.iter().filter(|b| !**b).count());
    }
}
