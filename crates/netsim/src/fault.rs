//! Fault injection, in the smoltcp idiom.
//!
//! smoltcp's examples expose `--drop-chance`, `--corrupt-chance` and token
//! bucket rate limits on every device; we provide the same knobs as a
//! wrapper that the network consults for each operation. The Encore
//! experiments use this to (a) stress-test measurement soundness under
//! adverse conditions and (b) emulate the "high client system load,
//! transient DNS failure, WiFi unreliability" failure causes of §5.3.

use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng, SimTime};

/// What the injector decided about one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultDecision {
    /// Operation proceeds untouched.
    Pass,
    /// Operation's traffic is silently dropped (→ timeout).
    Drop,
    /// Operation's payload is corrupted (→ invalid body / parse error).
    Corrupt,
    /// Operation delayed by the given extra time, then proceeds.
    Delay(SimDuration),
}

/// Configurable fault injector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    /// Probability an operation is dropped.
    pub drop_chance: f64,
    /// Probability an operation's payload is corrupted.
    pub corrupt_chance: f64,
    /// Extra latency added to every operation.
    pub extra_latency: SimDuration,
    /// Token bucket: operations allowed per refill interval (`None`
    /// disables rate limiting).
    pub rate_limit: Option<u32>,
    /// Token bucket refill interval.
    pub shaping_interval: SimDuration,
    #[serde(skip)]
    tokens: u32,
    #[serde(skip)]
    last_refill: SimTime,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::none()
    }
}

impl FaultInjector {
    /// An injector that never interferes.
    pub fn none() -> FaultInjector {
        FaultInjector {
            drop_chance: 0.0,
            corrupt_chance: 0.0,
            extra_latency: SimDuration::ZERO,
            rate_limit: None,
            shaping_interval: SimDuration::from_millis(50),
            tokens: 0,
            last_refill: SimTime::ZERO,
        }
    }

    /// smoltcp's suggested stress configuration: 15% drop, 15% corrupt.
    pub fn stress() -> FaultInjector {
        FaultInjector {
            drop_chance: 0.15,
            corrupt_chance: 0.15,
            ..FaultInjector::none()
        }
    }

    /// Builder: set drop chance.
    pub fn with_drop_chance(mut self, p: f64) -> FaultInjector {
        self.drop_chance = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: set corrupt chance.
    pub fn with_corrupt_chance(mut self, p: f64) -> FaultInjector {
        self.corrupt_chance = p.clamp(0.0, 1.0);
        self
    }

    /// Builder: add fixed extra latency.
    pub fn with_extra_latency(mut self, d: SimDuration) -> FaultInjector {
        self.extra_latency = d;
        self
    }

    /// Builder: token-bucket rate limit of `ops` per `interval`.
    pub fn with_rate_limit(mut self, ops: u32, interval: SimDuration) -> FaultInjector {
        self.rate_limit = Some(ops);
        self.shaping_interval = interval;
        self.tokens = ops;
        self
    }

    /// Decide the fate of one operation at time `now`.
    pub fn decide(&mut self, now: SimTime, rng: &mut SimRng) -> FaultDecision {
        if let Some(limit) = self.rate_limit {
            if now.since(self.last_refill) >= self.shaping_interval {
                self.tokens = limit;
                self.last_refill = now;
            }
            if self.tokens == 0 {
                return FaultDecision::Drop;
            }
            self.tokens -= 1;
        }
        if rng.chance(self.drop_chance) {
            return FaultDecision::Drop;
        }
        if rng.chance(self.corrupt_chance) {
            return FaultDecision::Corrupt;
        }
        if self.extra_latency > SimDuration::ZERO {
            return FaultDecision::Delay(self.extra_latency);
        }
        FaultDecision::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_always_passes() {
        let mut f = FaultInjector::none();
        let mut rng = SimRng::new(1);
        for i in 0..100 {
            assert_eq!(
                f.decide(SimTime::from_millis(i), &mut rng),
                FaultDecision::Pass
            );
        }
    }

    #[test]
    fn full_drop_always_drops() {
        let mut f = FaultInjector::none().with_drop_chance(1.0);
        let mut rng = SimRng::new(1);
        assert_eq!(f.decide(SimTime::ZERO, &mut rng), FaultDecision::Drop);
    }

    #[test]
    fn corrupt_chance_applies_after_drop() {
        let mut f = FaultInjector::none().with_corrupt_chance(1.0);
        let mut rng = SimRng::new(1);
        assert_eq!(f.decide(SimTime::ZERO, &mut rng), FaultDecision::Corrupt);
    }

    #[test]
    fn extra_latency_reported_as_delay() {
        let mut f = FaultInjector::none().with_extra_latency(SimDuration::from_millis(30));
        let mut rng = SimRng::new(1);
        assert_eq!(
            f.decide(SimTime::ZERO, &mut rng),
            FaultDecision::Delay(SimDuration::from_millis(30))
        );
    }

    #[test]
    fn stress_rates_observed() {
        let mut f = FaultInjector::stress();
        let mut rng = SimRng::new(7);
        let mut drops = 0;
        let mut corrupts = 0;
        let n = 10_000;
        for i in 0..n {
            match f.decide(SimTime::from_millis(i), &mut rng) {
                FaultDecision::Drop => drops += 1,
                FaultDecision::Corrupt => corrupts += 1,
                _ => {}
            }
        }
        // Drop ~15%, corrupt ~12.75% (15% of the remaining 85%).
        assert!((1_300..1_700).contains(&drops), "drops = {drops}");
        assert!((1_050..1_500).contains(&corrupts), "corrupts = {corrupts}");
    }

    #[test]
    fn token_bucket_limits_burst() {
        let mut f = FaultInjector::none().with_rate_limit(4, SimDuration::from_millis(50));
        let mut rng = SimRng::new(3);
        let t = SimTime::from_millis(1);
        let mut passed = 0;
        for _ in 0..10 {
            if f.decide(t, &mut rng) == FaultDecision::Pass {
                passed += 1;
            }
        }
        assert_eq!(passed, 4);
        // After the shaping interval the bucket refills.
        let t2 = t + SimDuration::from_millis(50);
        assert_eq!(f.decide(t2, &mut rng), FaultDecision::Pass);
    }

    #[test]
    fn builders_clamp_probabilities() {
        let f = FaultInjector::none()
            .with_drop_chance(1.7)
            .with_corrupt_chance(-0.2);
        assert_eq!(f.drop_chance, 1.0);
        assert_eq!(f.corrupt_chance, 0.0);
    }
}
