//! Geography: countries, regions, and ISP classes.
//!
//! The paper reports measurements from 170 countries, with China, India,
//! the United Kingdom and Brazil contributing ≥1,000 measurements and
//! Egypt, South Korea, Iran, Pakistan, Turkey and Saudi Arabia ≥100 (§7).
//! The built-in [`World`] table names every country that matters to the
//! paper's analysis explicitly (with per-country network quality) and can
//! synthesise an arbitrary long tail of additional countries so that runs
//! reach the paper's 170-country diversity.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// ISO-3166-style two-letter country code (upper-case ASCII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CountryCode([u8; 2]);

// Hand-written codecs: a country code reads naturally as the string "US",
// both as a value and as a map key.
impl Serialize for CountryCode {
    fn write_json(&self, out: &mut String) {
        serde::json::push_string(out, self.as_str());
    }
    // Binary form: the two raw ASCII bytes (hot in streamed visit logs).
    fn write_bin(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

impl Deserialize for CountryCode {
    fn from_value(v: &serde::json::Value) -> Result<Self, serde::json::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::json::Error::new("expected country code string"))?;
        <Self as serde::JsonKey>::from_json_key(s)
    }
    fn read_bin(input: &mut serde::bin::Reader<'_>) -> Result<Self, serde::json::Error> {
        let bytes = input.take(2)?;
        if bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            Ok(CountryCode([bytes[0], bytes[1]]))
        } else {
            Err(serde::json::Error::new("bad country code bytes"))
        }
    }
}

impl serde::JsonKey for CountryCode {
    fn to_json_key(&self) -> String {
        self.as_str().to_string()
    }
    fn from_json_key(s: &str) -> Result<Self, serde::json::Error> {
        let bytes = s.as_bytes();
        if bytes.len() == 2 && bytes.iter().all(|b| b.is_ascii_alphabetic()) {
            Ok(CountryCode::new(s))
        } else {
            Err(serde::json::Error::new(format!("bad country code `{s}`")))
        }
    }
}

impl CountryCode {
    /// Construct from a two-letter code. Panics on malformed input —
    /// country codes are always compile-time or table-derived constants.
    pub fn new(code: &str) -> CountryCode {
        let bytes = code.as_bytes();
        assert!(
            bytes.len() == 2 && bytes.iter().all(|b| b.is_ascii_alphabetic()),
            "country code must be two ASCII letters, got {code:?}"
        );
        CountryCode([bytes[0].to_ascii_uppercase(), bytes[1].to_ascii_uppercase()])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        // Invariant: constructed from ASCII letters.
        std::str::from_utf8(&self.0).expect("country code is ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Coarse world regions used by the backbone-latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Region {
    /// North America.
    NorthAmerica,
    /// South and Central America.
    SouthAmerica,
    /// Europe.
    Europe,
    /// Middle East and North Africa.
    MiddleEast,
    /// Sub-Saharan Africa.
    Africa,
    /// South Asia.
    SouthAsia,
    /// East Asia.
    EastAsia,
    /// South-East Asia and Oceania.
    Oceania,
}

impl Region {
    /// All regions, in a fixed order.
    pub const ALL: [Region; 8] = [
        Region::NorthAmerica,
        Region::SouthAmerica,
        Region::Europe,
        Region::MiddleEast,
        Region::Africa,
        Region::SouthAsia,
        Region::EastAsia,
        Region::Oceania,
    ];

    /// Stable index of the region (used by the latency matrix).
    pub fn index(self) -> usize {
        Region::ALL
            .iter()
            .position(|r| *r == self)
            .expect("region present in ALL")
    }
}

/// Access-network class of a vantage point. The paper (§2) stresses that
/// residential and mobile networks "can face much different censorship
/// practices than academic and research networks" — censor policies and
/// network quality can differ per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum IspClass {
    /// Home broadband.
    Residential,
    /// Cellular data.
    Mobile,
    /// University / research network.
    Academic,
    /// Cloud or hosting provider (where servers live; also PlanetLab-style
    /// vantage points).
    Datacenter,
}

impl IspClass {
    /// All classes, in a fixed order.
    pub const ALL: [IspClass; 4] = [
        IspClass::Residential,
        IspClass::Mobile,
        IspClass::Academic,
        IspClass::Datacenter,
    ];
}

/// Static description of one country.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Country {
    /// Two-letter code.
    pub code: CountryCode,
    /// Human-readable name.
    pub name: String,
    /// World region (drives backbone latency).
    pub region: Region,
    /// Median last-mile latency contribution, milliseconds.
    pub access_latency_ms: f64,
    /// Probability that any single network operation transiently fails for
    /// reasons unrelated to censorship (the paper's India example: "a
    /// country with notoriously unreliable network connectivity,
    /// contributed to a 5% false positive rate").
    pub transient_failure_rate: f64,
    /// Relative share of the simulated client population (arbitrary
    /// weight; normalised by consumers).
    pub population_weight: f64,
    /// Whether the paper/world knowledge flags this country as practising
    /// some form of Web filtering (used only to *construct* interesting
    /// censor policies — the measurement pipeline never reads it).
    pub known_filtering: bool,
}

/// The world: a table of countries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct World {
    countries: BTreeMap<CountryCode, Country>,
}

/// Row format for the built-in table:
/// (code, name, region, access ms, transient failure, pop weight, filtering)
type CountryRow = (&'static str, &'static str, Region, f64, f64, f64, bool);

/// Countries named by the paper plus the rest of the top of the Internet
/// population, with rough but plausible network-quality parameters.
/// Transient-failure rates are calibrated so the §7.1 soundness experiment
/// reproduces the paper's "India contributed to a 5% false positive rate"
/// observation.
const BUILTIN: &[CountryRow] = &[
    (
        "US",
        "United States",
        Region::NorthAmerica,
        15.0,
        0.010,
        30.0,
        false,
    ),
    (
        "CA",
        "Canada",
        Region::NorthAmerica,
        18.0,
        0.010,
        3.0,
        false,
    ),
    (
        "MX",
        "Mexico",
        Region::NorthAmerica,
        35.0,
        0.030,
        3.0,
        false,
    ),
    (
        "BR",
        "Brazil",
        Region::SouthAmerica,
        40.0,
        0.030,
        6.0,
        false,
    ),
    (
        "AR",
        "Argentina",
        Region::SouthAmerica,
        45.0,
        0.030,
        2.0,
        false,
    ),
    (
        "CO",
        "Colombia",
        Region::SouthAmerica,
        48.0,
        0.035,
        1.5,
        false,
    ),
    (
        "GB",
        "United Kingdom",
        Region::Europe,
        14.0,
        0.008,
        6.0,
        true,
    ),
    ("DE", "Germany", Region::Europe, 13.0, 0.008, 5.0, false),
    ("FR", "France", Region::Europe, 14.0, 0.009, 4.0, false),
    ("NL", "Netherlands", Region::Europe, 10.0, 0.007, 2.0, false),
    ("IT", "Italy", Region::Europe, 20.0, 0.012, 3.0, false),
    ("ES", "Spain", Region::Europe, 18.0, 0.011, 3.0, false),
    ("PL", "Poland", Region::Europe, 20.0, 0.012, 2.0, false),
    ("SE", "Sweden", Region::Europe, 11.0, 0.007, 1.0, false),
    ("RU", "Russia", Region::Europe, 35.0, 0.025, 5.0, true),
    ("UA", "Ukraine", Region::Europe, 30.0, 0.022, 1.5, false),
    ("TR", "Turkey", Region::MiddleEast, 35.0, 0.025, 3.0, true),
    ("IR", "Iran", Region::MiddleEast, 60.0, 0.040, 3.0, true),
    (
        "SA",
        "Saudi Arabia",
        Region::MiddleEast,
        45.0,
        0.025,
        2.0,
        true,
    ),
    (
        "AE",
        "United Arab Emirates",
        Region::MiddleEast,
        35.0,
        0.018,
        1.0,
        true,
    ),
    ("EG", "Egypt", Region::MiddleEast, 55.0, 0.040, 3.0, true),
    ("IL", "Israel", Region::MiddleEast, 25.0, 0.012, 1.0, false),
    ("NG", "Nigeria", Region::Africa, 80.0, 0.070, 3.0, false),
    (
        "ZA",
        "South Africa",
        Region::Africa,
        60.0,
        0.040,
        1.5,
        false,
    ),
    ("KE", "Kenya", Region::Africa, 75.0, 0.060, 1.0, false),
    ("IN", "India", Region::SouthAsia, 65.0, 0.050, 18.0, true),
    ("PK", "Pakistan", Region::SouthAsia, 70.0, 0.045, 4.0, true),
    (
        "BD",
        "Bangladesh",
        Region::SouthAsia,
        75.0,
        0.055,
        3.0,
        true,
    ),
    (
        "LK",
        "Sri Lanka",
        Region::SouthAsia,
        60.0,
        0.040,
        0.5,
        false,
    ),
    ("CN", "China", Region::EastAsia, 50.0, 0.030, 20.0, true),
    ("JP", "Japan", Region::EastAsia, 12.0, 0.006, 5.0, false),
    (
        "KR",
        "South Korea",
        Region::EastAsia,
        10.0,
        0.006,
        3.0,
        true,
    ),
    ("TW", "Taiwan", Region::EastAsia, 15.0, 0.008, 1.5, false),
    ("HK", "Hong Kong", Region::EastAsia, 12.0, 0.008, 1.0, false),
    ("VN", "Vietnam", Region::Oceania, 55.0, 0.040, 3.0, true),
    ("TH", "Thailand", Region::Oceania, 45.0, 0.030, 2.5, true),
    ("ID", "Indonesia", Region::Oceania, 60.0, 0.045, 6.0, true),
    ("MY", "Malaysia", Region::Oceania, 40.0, 0.025, 1.5, true),
    (
        "PH",
        "Philippines",
        Region::Oceania,
        55.0,
        0.045,
        3.0,
        false,
    ),
    ("SG", "Singapore", Region::Oceania, 10.0, 0.005, 1.0, false),
    ("AU", "Australia", Region::Oceania, 25.0, 0.010, 2.0, false),
    (
        "NZ",
        "New Zealand",
        Region::Oceania,
        28.0,
        0.010,
        0.5,
        false,
    ),
];

impl World {
    /// The built-in table of explicitly modelled countries.
    pub fn builtin() -> World {
        let mut w = World::default();
        for &(code, name, region, lat, fail, pop, filt) in BUILTIN {
            w.insert(Country {
                code: CountryCode::new(code),
                name: name.to_string(),
                region,
                access_latency_ms: lat,
                transient_failure_rate: fail,
                population_weight: pop,
                known_filtering: filt,
            });
        }
        w
    }

    /// The built-in table extended with synthetic countries up to `total`
    /// (codes `X<letter><letter>`-style), so that large runs exhibit the
    /// paper's 170-country diversity. Synthetic countries get middling
    /// network quality and a small population weight.
    pub fn with_long_tail(total: usize) -> World {
        let mut w = World::builtin();
        let regions = Region::ALL;
        let mut i = 0usize;
        while w.len() < total {
            // Generate codes QA, QB, ..., avoiding collisions with builtins.
            let a = b'A' + (i / 26) as u8 % 26;
            let b = b'A' + (i % 26) as u8;
            i += 1;
            let code_str = format!("{}{}", a as char, b as char);
            let code = CountryCode::new(&code_str);
            if w.get(code).is_some() {
                continue;
            }
            let region = regions[i % regions.len()];
            w.insert(Country {
                code,
                name: format!("Synthetic-{code_str}"),
                region,
                access_latency_ms: 40.0 + (i % 7) as f64 * 10.0,
                transient_failure_rate: 0.02 + (i % 5) as f64 * 0.005,
                population_weight: 0.2,
                known_filtering: false,
            });
        }
        w
    }

    /// Insert (or replace) a country.
    pub fn insert(&mut self, c: Country) {
        self.countries.insert(c.code, c);
    }

    /// Look up a country by code.
    pub fn get(&self, code: CountryCode) -> Option<&Country> {
        self.countries.get(&code)
    }

    /// Iterate over all countries in code order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Country> {
        self.countries.values()
    }

    /// Number of countries.
    pub fn len(&self) -> usize {
        self.countries.len()
    }

    /// Whether the world is empty.
    pub fn is_empty(&self) -> bool {
        self.countries.is_empty()
    }

    /// Country codes in deterministic order.
    pub fn codes(&self) -> Vec<CountryCode> {
        self.countries.keys().copied().collect()
    }

    /// Countries flagged as practising filtering (used when *constructing*
    /// experiment scenarios; never read by the measurement pipeline).
    pub fn filtering_countries(&self) -> Vec<CountryCode> {
        self.countries
            .values()
            .filter(|c| c.known_filtering)
            .map(|c| c.code)
            .collect()
    }

    /// Population weights aligned with [`World::codes`] order.
    pub fn population_weights(&self) -> Vec<f64> {
        self.countries
            .values()
            .map(|c| c.population_weight)
            .collect()
    }
}

/// Convenience constructor: `country("PK")`.
pub fn country(code: &str) -> CountryCode {
    CountryCode::new(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn country_code_normalises_case() {
        assert_eq!(CountryCode::new("pk").as_str(), "PK");
        assert_eq!(CountryCode::new("Pk").to_string(), "PK");
    }

    #[test]
    #[should_panic(expected = "two ASCII letters")]
    fn country_code_rejects_length() {
        let _ = CountryCode::new("PAK");
    }

    #[test]
    #[should_panic(expected = "two ASCII letters")]
    fn country_code_rejects_digits() {
        let _ = CountryCode::new("P1");
    }

    #[test]
    fn builtin_world_has_paper_countries() {
        let w = World::builtin();
        for c in [
            "CN", "IN", "GB", "BR", "EG", "KR", "IR", "PK", "TR", "SA", "US",
        ] {
            assert!(w.get(country(c)).is_some(), "missing {c}");
        }
    }

    #[test]
    fn builtin_world_flags_filtering_countries() {
        let w = World::builtin();
        let f = w.filtering_countries();
        for c in ["CN", "IR", "PK", "TR", "SA", "EG", "KR"] {
            assert!(f.contains(&country(c)), "{c} should be flagged");
        }
        assert!(!f.contains(&country("US")));
        assert!(!f.contains(&country("DE")));
    }

    #[test]
    fn long_tail_reaches_170_countries() {
        let w = World::with_long_tail(170);
        assert!(w.len() >= 170, "got {}", w.len());
        // Builtins are preserved.
        assert_eq!(w.get(country("CN")).unwrap().name, "China");
    }

    #[test]
    fn long_tail_smaller_than_builtin_is_noop() {
        let w = World::with_long_tail(5);
        assert_eq!(w.len(), World::builtin().len());
    }

    #[test]
    fn india_has_elevated_failure_rate() {
        // Calibration hook for the paper's 5% India false-positive remark.
        let w = World::builtin();
        let india = w.get(country("IN")).unwrap();
        let us = w.get(country("US")).unwrap();
        assert!(india.transient_failure_rate >= 0.04);
        assert!(india.transient_failure_rate > 3.0 * us.transient_failure_rate);
    }

    #[test]
    fn iteration_is_sorted_by_code() {
        let w = World::builtin();
        let codes: Vec<_> = w.iter().map(|c| c.code).collect();
        let mut sorted = codes.clone();
        sorted.sort();
        assert_eq!(codes, sorted);
    }

    #[test]
    fn region_index_is_stable() {
        for (i, r) in Region::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn population_weights_align_with_codes() {
        let w = World::builtin();
        assert_eq!(w.population_weights().len(), w.codes().len());
        assert!(w.population_weights().iter().all(|&p| p > 0.0));
    }
}
