//! The composed network: hosts, servers, middleboxes, and the fetch
//! pipeline.
//!
//! [`Network::fetch`] is the single entry point the browser emulator uses
//! for every HTTP exchange. It walks the three stages of paper §3.1 — DNS,
//! TCP, HTTP — consulting every applicable [`Middlebox`] at each stage and
//! accumulating a timing breakdown. The returned [`FetchOutcome`] is
//! everything a browser can observe: either a response (possibly a censor's
//! block page — the *browser* decides whether that makes an `img` fire
//! `onerror`) or a failure with its stage and elapsed time.

use crate::dns::DnsSystem;
use crate::fault::FaultInjector;
use crate::geo::{Country, CountryCode, IspClass, World};
use crate::host::{Host, HostId};
use crate::http::{HttpRequest, HttpResponse};
use crate::ip::IpAllocator;
use crate::middlebox::Middlebox;
use crate::path::{PathModel, PathQuality};
use crate::session::{FetchSession, SessionConfig};
use crate::topology::{AsTopology, TransitDecision, HOP_MS};
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimRng, SimTime, Trace, TraceLevel};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Something that answers HTTP requests (sites, collectors, block-page
/// servers). Implemented by the `websim` and `encore` crates.
///
/// Handlers see the client's source address (`client_ip`), as a real
/// server would — Encore's collection server geolocates submissions from
/// exactly this information (paper §7: "We use a standard IP geolocation
/// database to determine client locations").
pub trait HttpHandler {
    /// Produce the response for `req` sent from `client_ip`.
    fn handle(&self, req: &HttpRequest, client_ip: Ipv4Addr, now: SimTime) -> HttpResponse;
}

/// A trivially constant handler, useful in tests.
pub struct ConstHandler(pub HttpResponse);

impl HttpHandler for ConstHandler {
    fn handle(&self, _req: &HttpRequest, _client_ip: Ipv4Addr, _now: SimTime) -> HttpResponse {
        self.0.clone()
    }
}

/// Stage at which a fetch failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureStage {
    /// During name resolution.
    Dns,
    /// During connection establishment.
    Tcp,
    /// After the connection, during the HTTP exchange.
    Http,
}

/// Why a fetch failed, as observable by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FetchError {
    /// URL could not be parsed.
    BadUrl,
    /// DNS said the name does not exist.
    DnsNxDomain,
    /// DNS query went unanswered.
    DnsTimeout,
    /// Connection reset during handshake or exchange.
    ConnectionReset,
    /// Connect attempt timed out (silent drops or unroutable address).
    ConnectTimeout,
    /// Established, but no response arrived in time.
    ResponseTimeout,
    /// Response arrived but was garbled in transit.
    CorruptResponse,
    /// Shed at a congested transit link, with a near-source congestion
    /// signal back along the path (see [`crate::topology`]). Fails fast
    /// during connection establishment — the signal is what lets
    /// measurement distinguish congestion collapse from censorship.
    Congested,
}

impl FetchError {
    /// The stage this error belongs to.
    pub fn stage(self) -> FailureStage {
        match self {
            FetchError::BadUrl | FetchError::DnsNxDomain | FetchError::DnsTimeout => {
                FailureStage::Dns
            }
            FetchError::ConnectTimeout => FailureStage::Tcp,
            FetchError::ConnectionReset => FailureStage::Tcp,
            FetchError::Congested => FailureStage::Tcp,
            FetchError::ResponseTimeout | FetchError::CorruptResponse => FailureStage::Http,
        }
    }
}

/// Timing breakdown of a fetch (all durations are cumulative elapsed wall
/// time in simulation units).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FetchTimings {
    /// Time spent on DNS.
    pub dns: SimDuration,
    /// Time spent establishing the connection.
    pub connect: SimDuration,
    /// Time from request sent to first byte of response.
    pub ttfb: SimDuration,
    /// Body transfer time.
    pub transfer: SimDuration,
}

impl FetchTimings {
    /// Total elapsed time.
    pub fn total(&self) -> SimDuration {
        self.dns + self.connect + self.ttfb + self.transfer
    }
}

/// Everything a client observes from one fetch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FetchOutcome {
    /// The response, or the failure.
    pub result: Result<HttpResponse, FetchError>,
    /// Timing breakdown (meaningful for failures too: a timeout's elapsed
    /// time is the timeout duration — that asymmetry between RST and drop
    /// censorship is measurable).
    pub timings: FetchTimings,
    /// The address the request was (or would have been) sent to.
    pub server_ip: Option<Ipv4Addr>,
}

impl FetchOutcome {
    pub(crate) fn fail(
        err: FetchError,
        timings: FetchTimings,
        server_ip: Option<Ipv4Addr>,
    ) -> FetchOutcome {
        FetchOutcome {
            result: Err(err),
            timings,
            server_ip,
        }
    }

    /// Whether the fetch produced any HTTP response at all.
    pub fn is_response(&self) -> bool {
        self.result.is_ok()
    }
}

struct ServerEntry {
    host: Host,
    handler: Box<dyn HttpHandler>,
}

/// Memoised [`Network::quality_between`] results. Path quality is a pure
/// function of (client country, client ISP class, server address) given
/// the path model, the server registry, the address plan, and the world
/// table — so the memo is validated against cheap fingerprints of all
/// four on every lookup and cleared when any of them moves. The
/// fingerprints are exact for every mutation the workspace performs
/// (`path_model` writes, `add_server`, address-block allocation, world
/// construction); the one unwatched edit — replacing an *existing*
/// country's record in a live network's world — is something no caller
/// does (worlds are built before the network).
#[derive(Default)]
struct QualityMemo {
    model: Option<PathModel>,
    servers_len: usize,
    alloc_blocks: usize,
    world_len: usize,
    /// Generation of the routed topology the memo was computed under (0
    /// when no topology is attached) — regeneration reroutes, which
    /// changes hop counts and therefore RTTs.
    topology_generation: u64,
    map: std::collections::HashMap<
        (CountryCode, IspClass, Ipv4Addr),
        PathQuality,
        sim_core::FxBuildHasher,
    >,
}

/// The simulated Internet: world, DNS, servers, middleboxes, path model.
pub struct Network {
    /// Country table.
    pub world: World,
    /// DNS database + resolver caches.
    pub dns: DnsSystem,
    /// Address allocator (ground truth for GeoIP).
    pub allocator: IpAllocator,
    /// Path quality model.
    pub path_model: PathModel,
    /// Global fault injector (applies to every fetch).
    pub fault: FaultInjector,
    /// Event trace.
    pub trace: Trace,
    servers: BTreeMap<Ipv4Addr, ServerEntry>,
    /// Memoised path qualities (see [`Network::quality_between`]).
    quality_memo: std::cell::RefCell<QualityMemo>,
    middleboxes: Vec<Box<dyn Middlebox>>,
    /// Bumped whenever the middlebox set changes, so sessions know when
    /// their compiled pipelines are stale. Starts at 1 (sessions start at
    /// 0) so a fresh session always compiles once.
    middlebox_generation: u64,
    /// Bumped whenever a control signal changes a middlebox's *behaviour*
    /// (coverage unchanged — see [`Network::signal_middlebox`]), so
    /// memoised per-host censor verdicts know to revalidate without the
    /// heavier pipeline rebuild a set change triggers. Starts at 1 to
    /// match the middlebox generation convention.
    behavior_generation: u64,
    /// Routed AS topology with congested transit links; `None` (the
    /// default) preserves the flat path model exactly — no extra RNG
    /// draws, no RTT changes, byte-identical worlds.
    topology: Option<AsTopology>,
    next_host_id: u64,
}

impl Network {
    /// A network over the built-in world with default models.
    pub fn new(world: World) -> Network {
        Network {
            world,
            dns: DnsSystem::new(),
            allocator: IpAllocator::new(),
            path_model: PathModel::default(),
            fault: FaultInjector::none(),
            trace: Trace::default(),
            servers: BTreeMap::new(),
            quality_memo: std::cell::RefCell::new(QualityMemo::default()),
            middleboxes: Vec::new(),
            middlebox_generation: 1,
            behavior_generation: 1,
            topology: None,
            next_host_id: 0,
        }
    }

    /// A network with no jitter/loss — exact timings for unit tests.
    pub fn ideal(world: World) -> Network {
        let mut n = Network::new(world);
        n.path_model = PathModel::ideal();
        n
    }

    /// A network drawing every address from the given allocator (e.g. a
    /// striped shard allocator). Installing it at construction — before
    /// any client or server can allocate — is what makes per-shard
    /// address disjointness structural rather than an ordering
    /// convention.
    pub fn with_allocator(world: World, allocator: IpAllocator) -> Network {
        let mut n = Network::new(world);
        n.allocator = allocator;
        n
    }

    fn next_id(&mut self) -> HostId {
        let id = HostId(self.next_host_id);
        self.next_host_id += 1;
        id
    }

    /// Attach a client host in `country` on the given access network.
    pub fn add_client(&mut self, country: CountryCode, isp: IspClass) -> Host {
        let ip = self.allocator.allocate(country);
        let id = self.next_id();
        Host::new(id, ip, country, isp)
    }

    /// Attach a server: allocates an address in `country`, registers
    /// `dns_name`, and installs the handler. Returns the server host.
    pub fn add_server(
        &mut self,
        dns_name: &str,
        country: CountryCode,
        handler: Box<dyn HttpHandler>,
    ) -> Host {
        let ip = self.allocator.allocate(country);
        let id = self.next_id();
        let host = Host::new(id, ip, country, IspClass::Datacenter);
        self.dns.register(dns_name, ip);
        self.servers.insert(
            ip,
            ServerEntry {
                host: host.clone(),
                handler,
            },
        );
        host
    }

    /// Install an additional DNS alias for an existing server address.
    pub fn add_dns_alias(&mut self, dns_name: &str, ip: Ipv4Addr) {
        self.dns.register(dns_name, ip);
    }

    /// Swap the HTTP handler of the server `dns_name` resolves to, keeping
    /// its address, host identity, and DNS record untouched. This is the
    /// hook benign-disruption events (origin outages, cert rotations, site
    /// redesigns) mutate a standing world through: unlike re-adding the
    /// server, no new address is allocated, so the IP allocator state —
    /// and with it shard determinism — is unaffected. Returns `false` and
    /// changes nothing if the name is unregistered.
    pub fn replace_server_handler(
        &mut self,
        dns_name: &str,
        handler: Box<dyn HttpHandler>,
    ) -> bool {
        let Some(answer) = self.dns.authoritative(dns_name) else {
            return false;
        };
        match self.servers.get_mut(&answer.ip) {
            Some(entry) => {
                entry.handler = handler;
                true
            }
            None => false,
        }
    }

    /// Install a middlebox. Order matters: earlier middleboxes are closer
    /// to the client and win ties.
    pub fn add_middlebox(&mut self, mb: Box<dyn Middlebox>) {
        self.middleboxes.push(mb);
        self.middlebox_generation += 1;
    }

    /// Remove all middleboxes (between experiment phases).
    pub fn clear_middleboxes(&mut self) {
        self.middleboxes.clear();
        self.middlebox_generation += 1;
    }

    /// Remove the first middlebox whose diagnostic name matches, returning
    /// whether one was removed. This is the hook live policy schedules
    /// (`censor::timeline`) mutate the world through: a removal bumps the
    /// middlebox generation counter, so every compiled
    /// [`crate::session::FetchSession`] pipeline re-matches before its
    /// next fetch instead of consulting stale indices.
    pub fn remove_middlebox(&mut self, name: &str) -> bool {
        match self.middleboxes.iter().position(|mb| mb.name() == name) {
            Some(idx) => {
                self.middleboxes.remove(idx);
                self.middlebox_generation += 1;
                true
            }
            None => false,
        }
    }

    /// Replace the first middlebox with the given name **in place**: the
    /// replacement inherits the old one's slot in the interception order
    /// (order encodes distance from the client, so a rewritten policy
    /// must not migrate to the far end of the chain). Bumps the
    /// generation counter on success; returns `false` and leaves the set
    /// untouched if no middlebox has that name.
    pub fn replace_middlebox(&mut self, name: &str, replacement: Box<dyn Middlebox>) -> bool {
        match self.middleboxes.iter().position(|mb| mb.name() == name) {
            Some(idx) => {
                self.middleboxes[idx] = replacement;
                self.middlebox_generation += 1;
                true
            }
            None => false,
        }
    }

    /// Whether a middlebox with this diagnostic name is installed.
    pub fn has_middlebox(&self, name: &str) -> bool {
        self.middleboxes.iter().any(|mb| mb.name() == name)
    }

    /// Deliver a control signal to the first middlebox with this name
    /// (see [`Middlebox::on_control`]). Returns whether a middlebox
    /// understood the signal and changed state. Control signals change
    /// *behaviour*, never coverage, so the generation counter is
    /// deliberately **not** bumped — compiled session pipelines stay
    /// valid and the signal is observable on the very next fetch.
    pub fn signal_middlebox(&mut self, name: &str, signal: &str, now: SimTime) -> bool {
        match self.middleboxes.iter().find(|mb| mb.name() == name) {
            Some(mb) => {
                let changed = mb.on_control(signal, now);
                if changed {
                    self.behavior_generation += 1;
                    self.trace.record(
                        now,
                        TraceLevel::Info,
                        "censor",
                        format!("{name} applied control signal {signal:?}"),
                    );
                }
                changed
            }
            None => false,
        }
    }

    /// The installed middleboxes, client-nearest first.
    pub fn middleboxes(&self) -> &[Box<dyn Middlebox>] {
        &self.middleboxes
    }

    /// Generation counter of the middlebox set (see
    /// [`crate::session::FetchSession`]'s pipeline compilation).
    pub fn middlebox_generation(&self) -> u64 {
        self.middlebox_generation
    }

    /// Generation counter of middlebox *behaviour*: bumped by control
    /// signals that change state ([`Network::signal_middlebox`]), so
    /// sessions invalidate memoised per-host verdicts without rebuilding
    /// their pipelines.
    pub fn behavior_generation(&self) -> u64 {
        self.behavior_generation
    }

    /// Attach a routed AS topology. Fetches now cross precomputed AS
    /// routes: hop counts lengthen RTTs, and congested hotspot links
    /// delay or shed traffic (see [`crate::topology`]).
    pub fn set_topology(&mut self, topology: AsTopology) {
        self.topology = Some(topology);
    }

    /// The attached topology, if any.
    pub fn topology(&self) -> Option<&AsTopology> {
        self.topology.as_ref()
    }

    /// Mutable access to the attached topology (brownout control events
    /// flip link background load through this).
    pub fn topology_mut(&mut self) -> Option<&mut AsTopology> {
        self.topology.as_mut()
    }

    /// Generation counter of the routed topology: 0 with no topology
    /// attached, otherwise the topology's own counter (starts at 1, so
    /// fresh sessions — which start at 0 — always revalidate once).
    pub fn topology_generation(&self) -> u64 {
        self.topology.as_ref().map_or(0, |t| t.generation())
    }

    /// The country a fetch to `server_ip` terminates in, resolved the
    /// same way path quality resolves it: the server registry first,
    /// then the address plan, then the client's own country.
    fn server_country(&self, client: &Host, server_ip: Ipv4Addr) -> CountryCode {
        self.servers
            .get(&server_ip)
            .map(|e| e.host.country)
            .or_else(|| self.allocator.country_of(server_ip))
            .unwrap_or(client.country)
    }

    /// Route one fetch across the topology's transit links and decide
    /// its fate. Without a topology this is a constant [`Pass`] and
    /// consumes no RNG draws; with one, it consumes at most a single
    /// draw, and zero while every link on the route is under threshold
    /// (see [`AsTopology::transit`]).
    ///
    /// [`Pass`]: TransitDecision::Pass
    pub(crate) fn transit_decision(
        &mut self,
        client: &Host,
        server_ip: Ipv4Addr,
        now: SimTime,
        rng: &mut SimRng,
    ) -> TransitDecision {
        match self.topology {
            None => TransitDecision::Pass,
            Some(_) => {
                let dst = self.server_country(client, server_ip);
                let src = client.country;
                self.topology
                    .as_mut()
                    .expect("checked above")
                    .transit(src, dst, now, rng)
            }
        }
    }

    /// Whether a server is listening at `ip`.
    pub fn has_server(&self, ip: Ipv4Addr) -> bool {
        self.servers.contains_key(&ip)
    }

    /// Dispatch a request to the server at `ip` (which must exist).
    pub(crate) fn handle_request(
        &self,
        ip: Ipv4Addr,
        req: &HttpRequest,
        client_ip: Ipv4Addr,
        now: SimTime,
    ) -> HttpResponse {
        self.servers
            .get(&ip)
            .expect("handle_request requires an existing server")
            .handler
            .handle(req, client_ip, now)
    }

    /// Number of registered servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The country record for a host (falls back to a default if the world
    /// table is missing the code — only possible with hand-built worlds).
    pub(crate) fn country_record(&self, code: CountryCode) -> Country {
        self.world.get(code).cloned().unwrap_or_else(|| Country {
            code,
            name: format!("Unknown-{code}"),
            region: crate::geo::Region::Europe,
            access_latency_ms: 50.0,
            transient_failure_rate: 0.02,
            population_weight: 0.1,
            known_filtering: false,
        })
    }

    /// A country's access latency without cloning the whole record (the
    /// session layer reads this once per fetch); the fallback matches
    /// [`Network::country_record`]'s default.
    pub(crate) fn access_latency_ms(&self, code: CountryCode) -> f64 {
        self.world.get(code).map_or(50.0, |c| c.access_latency_ms)
    }

    /// Path quality between a client and a server address (or a default
    /// long path when the address is not ours / unroutable).
    pub(crate) fn quality_between(&self, client: &Host, server_ip: Ipv4Addr) -> PathQuality {
        let mut memo = self.quality_memo.borrow_mut();
        if memo.model != Some(self.path_model)
            || memo.servers_len != self.servers.len()
            || memo.alloc_blocks != self.allocator.block_count()
            || memo.world_len != self.world.len()
            || memo.topology_generation != self.topology_generation()
        {
            memo.map.clear();
            memo.model = Some(self.path_model);
            memo.servers_len = self.servers.len();
            memo.alloc_blocks = self.allocator.block_count();
            memo.world_len = self.world.len();
            memo.topology_generation = self.topology_generation();
        }
        let key = (client.country, client.isp, server_ip);
        if let Some(&q) = memo.map.get(&key) {
            return q;
        }
        let q = self.quality_between_uncached(client, server_ip);
        memo.map.insert(key, q);
        q
    }

    /// The raw path-quality computation behind the memo.
    fn quality_between_uncached(&self, client: &Host, server_ip: Ipv4Addr) -> PathQuality {
        let server_country = self.server_country(client, server_ip);
        // Borrow the world records when present (the overwhelmingly common
        // case) instead of cloning them; fall back to the synthesised
        // default only for hand-built worlds missing a code.
        let mut q = match (
            self.world.get(client.country),
            self.world.get(server_country),
        ) {
            (Some(cc), Some(sc)) => self.path_model.quality(client, cc, sc),
            _ => {
                let cc = self.country_record(client.country);
                let sc = self.country_record(server_country);
                self.path_model.quality(client, &cc, &sc)
            }
        };
        // Routed paths pay per-AS-hop transit latency on top of the flat
        // model's access/backbone terms.
        if let Some(topo) = &self.topology {
            q.rtt_median_ms += HOP_MS * topo.hops_between(client.country, server_country) as f64;
        }
        q
    }

    /// Perform one HTTP fetch from `client` at time `now`.
    ///
    /// This is the legacy one-shot entry point, kept for tests and simple
    /// callers: it runs the full §3.1 pipeline through a throwaway
    /// cold [`FetchSession`], so every request pays DNS + TCP + HTTP from
    /// scratch. Callers issuing more than one request per client should
    /// hold a [`FetchSession`] (the browser emulator does) and fetch
    /// through it instead. The five failure timings matter:
    ///
    /// * forged NXDOMAIN — fast (1 local RTT);
    /// * dropped DNS — slow ([`crate::tcp::DNS_TIMEOUT`]);
    /// * RST — fast (1 RTT);
    /// * dropped SYN / unroutable sinkhole — slow ([`crate::tcp::CONNECT_TIMEOUT`]);
    /// * dropped HTTP — slow ([`crate::tcp::HTTP_TIMEOUT`]).
    pub fn fetch(
        &mut self,
        client: &Host,
        req: &HttpRequest,
        now: SimTime,
        rng: &mut SimRng,
    ) -> FetchOutcome {
        let mut session = FetchSession::with_config(client.clone(), SessionConfig::cold());
        session.fetch(self, req, now, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::country;
    use crate::http::ContentType;
    use crate::middlebox::{DnsAction, HttpAction, StageContext, TcpAction};
    use crate::tcp::{TcpAttempt, CONNECT_TIMEOUT};

    fn network() -> Network {
        Network::ideal(World::builtin())
    }

    fn img_handler(bytes: u64) -> Box<ConstHandler> {
        Box::new(ConstHandler(HttpResponse::ok(ContentType::Image, bytes)))
    }

    #[test]
    fn successful_fetch_returns_response_and_timings() {
        let mut n = network();
        n.add_server("example.com", country("US"), img_handler(400));
        let client = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &client,
            &HttpRequest::get("http://example.com/favicon.ico"),
            SimTime::ZERO,
            &mut rng,
        );
        let resp = out.result.expect("should succeed");
        assert_eq!(resp.status, StatusCode::OK);
        assert!(out.timings.dns > SimDuration::ZERO);
        assert!(out.timings.connect > SimDuration::ZERO);
        assert!(out.timings.total() < SimDuration::from_secs(2));
    }

    use crate::http::StatusCode;

    #[test]
    fn unknown_domain_is_nxdomain() {
        let mut n = network();
        let client = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &client,
            &HttpRequest::get("http://no-such-host.example/"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out.result, Err(FetchError::DnsNxDomain));
        assert_eq!(out.result.unwrap_err().stage(), FailureStage::Dns);
    }

    #[test]
    fn bad_url_fails_fast() {
        let mut n = network();
        let client = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &client,
            &HttpRequest::get("not a url"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out.result, Err(FetchError::BadUrl));
        assert_eq!(out.timings.total(), SimDuration::ZERO);
    }

    #[test]
    fn dns_cache_makes_second_fetch_faster() {
        let mut n = network();
        n.add_server("example.com", country("US"), img_handler(400));
        let client = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let req = HttpRequest::get("http://example.com/a.png");
        let t1 = n.fetch(&client, &req, SimTime::ZERO, &mut rng).timings.dns;
        let t2 = n
            .fetch(&client, &req, SimTime::from_secs(1), &mut rng)
            .timings
            .dns;
        assert!(t2 < t1);
    }

    #[test]
    fn dangling_dns_record_times_out_at_connect() {
        let mut n = network();
        // DNS resolves, but nothing listens at the address.
        n.add_dns_alias("ghost.example", Ipv4Addr::new(100, 99, 0, 1));
        let client = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &client,
            &HttpRequest::get("http://ghost.example/"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out.result, Err(FetchError::ConnectTimeout));
        assert_eq!(out.timings.connect, CONNECT_TIMEOUT);
    }

    struct DnsBlocker;
    impl Middlebox for DnsBlocker {
        fn name(&self) -> &str {
            "dns-blocker"
        }
        fn applies_to(&self, client: &Host) -> bool {
            client.country == country("PK")
        }
        fn on_dns(&self, name: &str, _ctx: &StageContext<'_>) -> DnsAction {
            if name == "censored.com" {
                DnsAction::NxDomain
            } else {
                DnsAction::Pass
            }
        }
    }

    #[test]
    fn middlebox_blocks_only_applicable_clients() {
        let mut n = network();
        n.add_server("censored.com", country("US"), img_handler(400));
        n.add_middlebox(Box::new(DnsBlocker));
        let pk = n.add_client(country("PK"), IspClass::Residential);
        let us = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let req = HttpRequest::get("http://censored.com/x.png");
        let blocked = n.fetch(&pk, &req, SimTime::ZERO, &mut rng);
        assert_eq!(blocked.result, Err(FetchError::DnsNxDomain));
        let ok = n.fetch(&us, &req, SimTime::ZERO, &mut rng);
        assert!(ok.result.is_ok());
    }

    #[test]
    fn middlebox_scope_is_per_domain() {
        let mut n = network();
        n.add_server("censored.com", country("US"), img_handler(400));
        n.add_server("fine.com", country("US"), img_handler(400));
        n.add_middlebox(Box::new(DnsBlocker));
        let pk = n.add_client(country("PK"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let ok = n.fetch(
            &pk,
            &HttpRequest::get("http://fine.com/y.png"),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(ok.result.is_ok());
    }

    struct RstInjector;
    impl Middlebox for RstInjector {
        fn name(&self) -> &str {
            "rst"
        }
        fn applies_to(&self, _c: &Host) -> bool {
            true
        }
        fn on_tcp(&self, _a: &TcpAttempt, _ctx: &StageContext<'_>) -> TcpAction {
            TcpAction::Reset
        }
    }

    struct SynDropper;
    impl Middlebox for SynDropper {
        fn name(&self) -> &str {
            "syndrop"
        }
        fn applies_to(&self, _c: &Host) -> bool {
            true
        }
        fn on_tcp(&self, _a: &TcpAttempt, _ctx: &StageContext<'_>) -> TcpAction {
            TcpAction::Drop
        }
    }

    #[test]
    fn rst_fails_fast_drop_fails_slow() {
        let mut rng = SimRng::new(1);
        let req = HttpRequest::get("http://example.com/");

        let mut n1 = network();
        n1.add_server("example.com", country("US"), img_handler(400));
        n1.add_middlebox(Box::new(RstInjector));
        let c1 = n1.add_client(country("US"), IspClass::Residential);
        let rst = n1.fetch(&c1, &req, SimTime::ZERO, &mut rng);

        let mut n2 = network();
        n2.add_server("example.com", country("US"), img_handler(400));
        n2.add_middlebox(Box::new(SynDropper));
        let c2 = n2.add_client(country("US"), IspClass::Residential);
        let drop = n2.fetch(&c2, &req, SimTime::ZERO, &mut rng);

        assert_eq!(rst.result, Err(FetchError::ConnectionReset));
        assert_eq!(drop.result, Err(FetchError::ConnectTimeout));
        // The observable asymmetry (paper: timing side channel).
        assert!(rst.timings.total() * 10 < drop.timings.total());
    }

    struct BlockPager;
    impl Middlebox for BlockPager {
        fn name(&self) -> &str {
            "blockpage"
        }
        fn applies_to(&self, _c: &Host) -> bool {
            true
        }
        fn on_http_request(&self, req: &HttpRequest, _ctx: &StageContext<'_>) -> HttpAction {
            if req.url.contains("banned") {
                HttpAction::BlockPage
            } else {
                HttpAction::Pass
            }
        }
    }

    #[test]
    fn block_page_replaces_response() {
        let mut n = network();
        n.add_server("example.com", country("US"), img_handler(400));
        n.add_middlebox(Box::new(BlockPager));
        let c = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &c,
            &HttpRequest::get("http://example.com/banned.png"),
            SimTime::ZERO,
            &mut rng,
        );
        let resp = out.result.unwrap();
        // A block page is an HTML 200 — NOT an image. The browser's img
        // loader will fire onerror on this.
        assert_eq!(resp.content_type, ContentType::Html);
        assert!(resp.keywords.contains(&"blocked".to_string()));
    }

    struct KeywordCensor;
    impl Middlebox for KeywordCensor {
        fn name(&self) -> &str {
            "keyword"
        }
        fn applies_to(&self, _c: &Host) -> bool {
            true
        }
        fn on_http_response(
            &self,
            _req: &HttpRequest,
            resp: &HttpResponse,
            _ctx: &StageContext<'_>,
        ) -> HttpAction {
            if resp.keywords.iter().any(|k| k == "forbidden-topic") {
                HttpAction::Reset
            } else {
                HttpAction::Pass
            }
        }
    }

    #[test]
    fn response_keyword_censorship_resets() {
        let mut n = network();
        let resp = HttpResponse::ok(ContentType::Html, 10_000)
            .with_keywords(vec!["forbidden-topic".to_string()]);
        n.add_server("news.example", country("US"), Box::new(ConstHandler(resp)));
        n.add_middlebox(Box::new(KeywordCensor));
        let c = n.add_client(country("CN"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &c,
            &HttpRequest::get("http://news.example/article"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out.result, Err(FetchError::ConnectionReset));
        assert_eq!(out.result.unwrap_err().stage(), FailureStage::Tcp);
    }

    #[test]
    fn dns_redirect_to_sinkhole_times_out() {
        struct Redirector;
        impl Middlebox for Redirector {
            fn name(&self) -> &str {
                "redir"
            }
            fn applies_to(&self, _c: &Host) -> bool {
                true
            }
            fn on_dns(&self, _n: &str, _ctx: &StageContext<'_>) -> DnsAction {
                DnsAction::Redirect(Ipv4Addr::new(100, 66, 6, 6))
            }
        }
        let mut n = network();
        n.add_server("example.com", country("US"), img_handler(400));
        n.add_middlebox(Box::new(Redirector));
        let c = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &c,
            &HttpRequest::get("http://example.com/"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out.result, Err(FetchError::ConnectTimeout));
        assert_eq!(out.server_ip, Some(Ipv4Addr::new(100, 66, 6, 6)));
    }

    #[test]
    fn fault_injector_drop_produces_timeout() {
        let mut n = network();
        n.fault = FaultInjector::none().with_drop_chance(1.0);
        n.add_server("example.com", country("US"), img_handler(400));
        let c = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &c,
            &HttpRequest::get("http://example.com/"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out.result, Err(FetchError::ConnectTimeout));
    }

    #[test]
    fn fault_injector_corrupt_invalidates_response() {
        let mut n = network();
        n.fault = FaultInjector::none().with_corrupt_chance(1.0);
        n.add_server("example.com", country("US"), img_handler(400));
        let c = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = n.fetch(
            &c,
            &HttpRequest::get("http://example.com/"),
            SimTime::ZERO,
            &mut rng,
        );
        assert_eq!(out.result, Err(FetchError::CorruptResponse));
    }

    #[test]
    fn larger_bodies_take_longer() {
        let mut n = network();
        n.add_server("small.example", country("US"), img_handler(500));
        n.add_server("large.example", country("US"), img_handler(500_000));
        let c = n.add_client(country("US"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let small = n
            .fetch(
                &c,
                &HttpRequest::get("http://small.example/"),
                SimTime::ZERO,
                &mut rng,
            )
            .timings
            .transfer;
        let large = n
            .fetch(
                &c,
                &HttpRequest::get("http://large.example/"),
                SimTime::ZERO,
                &mut rng,
            )
            .timings
            .transfer;
        assert!(large > small * 100);
    }

    #[test]
    fn fetch_is_deterministic_given_seed() {
        let run = || {
            let mut n = network();
            n.path_model = PathModel::default(); // jitter on
            n.add_server("example.com", country("BR"), img_handler(1_234));
            let c = n.add_client(country("JP"), IspClass::Mobile);
            let mut rng = SimRng::new(99);
            let out = n.fetch(
                &c,
                &HttpRequest::get("http://example.com/i.png"),
                SimTime::ZERO,
                &mut rng,
            );
            out.timings.total().as_micros()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn remove_middlebox_unblocks_and_bumps_generation() {
        let mut n = network();
        n.add_server("censored.com", country("US"), img_handler(400));
        n.add_middlebox(Box::new(DnsBlocker));
        let gen_installed = n.middlebox_generation();
        let pk = n.add_client(country("PK"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let req = HttpRequest::get("http://censored.com/x.png");
        assert!(n.fetch(&pk, &req, SimTime::ZERO, &mut rng).result.is_err());

        assert!(n.remove_middlebox("dns-blocker"));
        assert!(n.middlebox_generation() > gen_installed);
        assert!(n.fetch(&pk, &req, SimTime::ZERO, &mut rng).result.is_ok());
        // Removing a name that is no longer installed is a no-op.
        let gen_after = n.middlebox_generation();
        assert!(!n.remove_middlebox("dns-blocker"));
        assert_eq!(n.middlebox_generation(), gen_after);
    }

    #[test]
    fn remove_middlebox_invalidates_warm_session_pipelines() {
        let mut n = network();
        n.add_server("censored.com", country("US"), img_handler(400));
        n.add_middlebox(Box::new(DnsBlocker));
        let pk = n.add_client(country("PK"), IspClass::Residential);
        let mut session = FetchSession::new(pk);
        let mut rng = SimRng::new(2);
        let req = HttpRequest::get("http://censored.com/x.png");
        // Compile the pipeline with the blocker installed.
        assert!(session
            .fetch(&mut n, &req, SimTime::ZERO, &mut rng)
            .result
            .is_err());
        // Lift it: the warm session must re-match, not replay the block.
        n.remove_middlebox("dns-blocker");
        let out = session.fetch(&mut n, &req, SimTime::from_secs(1), &mut rng);
        assert!(out.result.is_ok(), "stale pipeline survived removal");
    }

    #[test]
    fn trace_records_censor_interference() {
        let mut n = network();
        n.add_server("censored.com", country("US"), img_handler(400));
        n.add_middlebox(Box::new(DnsBlocker));
        let pk = n.add_client(country("PK"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        n.fetch(
            &pk,
            &HttpRequest::get("http://censored.com/"),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(n.trace.contains("dns-blocker"));
    }
}
