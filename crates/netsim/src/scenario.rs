//! Declarative network scenarios — the recipe a parallel run is built
//! from.
//!
//! A [`Network`] is full of thread-local machinery (boxed handlers,
//! `Rc`-shared stores in the crates above), so it can never cross a
//! thread boundary. What *can* cross threads is the recipe: a
//! [`NetworkScenario`] is plain `Send + Sync` data describing the world
//! table, path model, fault injection, and constant-response servers, and
//! every shard of a multi-core run calls [`NetworkScenario::build_shard`]
//! on its own thread to materialise a private, fully independent network.
//!
//! Two properties make the per-shard networks safe to merge afterwards:
//!
//! 1. **Identical topology.** Every shard builds from the same spec in
//!    the same order, so DNS names, server placement, and path qualities
//!    agree across shards.
//! 2. **Disjoint addressing.** Each shard's [`IpAllocator`] is striped
//!    ([`IpAllocator::sharded`]): shard *i* of *N* only ever hands out
//!    /16 block indices ≡ *i* (mod *N*). Client addresses — and therefore
//!    GeoIP ground truth — from different shards can be unioned without
//!    collisions.

use crate::fault::FaultInjector;
use crate::geo::{CountryCode, World};
use crate::http::HttpResponse;
use crate::ip::IpAllocator;
use crate::middlebox::Middlebox;
use crate::network::{ConstHandler, Network};
use crate::path::PathModel;
use crate::topology::{AsTopology, TopologyConfig};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which world table to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorldSpec {
    /// The curated built-in table.
    Builtin,
    /// [`World::with_long_tail`] with the given total country count.
    LongTail(usize),
}

impl WorldSpec {
    /// Materialise the world table.
    pub fn build(&self) -> World {
        match *self {
            WorldSpec::Builtin => World::builtin(),
            WorldSpec::LongTail(n) => World::with_long_tail(n),
        }
    }
}

/// A constant-response server to install (the scenario analogue of
/// `net.add_server(..., ConstHandler(...))`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// DNS name.
    pub domain: String,
    /// Hosting country.
    pub country: CountryCode,
    /// The response served for every request.
    pub response: HttpResponse,
}

/// Plain-data recipe for a routed AS topology: the graph configuration
/// plus the country pairs whose routes must cross a congestible hotspot
/// link (so scenarios can guarantee a measurement path is exposed to
/// transit congestion regardless of where betweenness concentrated
/// under this seed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologySpec {
    /// Graph generation parameters (seed, size, degree exponent,
    /// hotspot count/capacity, shed threshold).
    pub config: TopologyConfig,
    /// Country pairs forced onto hotspot routes via
    /// [`AsTopology::ensure_hotspot_between`], in order.
    pub hotspot_pairs: Vec<(CountryCode, CountryCode)>,
}

impl TopologySpec {
    /// A spec with the default graph under `seed` and no forced pairs.
    pub fn with_seed(seed: u64) -> TopologySpec {
        TopologySpec {
            config: TopologyConfig::with_seed(seed),
            hotspot_pairs: Vec::new(),
        }
    }

    /// Builder: force the route between two countries across a hotspot.
    pub fn with_hotspot_between(mut self, a: CountryCode, b: CountryCode) -> TopologySpec {
        self.hotspot_pairs.push((a, b));
        self
    }

    /// Materialise the topology for shard `index` of `shards`: identical
    /// graph and routes on every shard, with hotspot capacities divided
    /// by the shard count so N shards each carrying 1/N of the offered
    /// load reproduce the serial run's utilisation.
    pub fn build_shard(&self, shards: usize) -> AsTopology {
        let mut topo = AsTopology::generate(self.config);
        for &(a, b) in &self.hotspot_pairs {
            topo.ensure_hotspot_between(a, b);
        }
        topo.scale_capacity(shards);
        topo
    }
}

/// A plain-data, thread-shareable recipe for building a [`Network`].
///
/// Richer deployments (stateful handlers, censor middleboxes, Encore
/// infrastructure) are layered on top by the caller after
/// [`build_shard`](NetworkScenario::build_shard) returns — those layers
/// live in crates above `netsim` and take `&mut Network` as usual.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkScenario {
    /// World table to build.
    pub world: WorldSpec,
    /// Use the jitter-free ideal path model instead of the default.
    pub ideal_paths: bool,
    /// Global fault injection applied to every fetch.
    pub fault: FaultInjector,
    /// Constant-response servers to install, in order.
    pub servers: Vec<ServerSpec>,
    /// Routed AS topology to attach; `None` (the default, and the value
    /// for every pre-topology scenario) keeps the flat path model with
    /// byte-identical behaviour.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub topology: Option<TopologySpec>,
}

impl NetworkScenario {
    /// A scenario over the given world with no servers, default paths,
    /// and no fault injection.
    pub fn new(world: WorldSpec) -> NetworkScenario {
        NetworkScenario {
            world,
            ideal_paths: false,
            fault: FaultInjector::none(),
            servers: Vec::new(),
            topology: None,
        }
    }

    /// Builder: attach a routed AS topology.
    pub fn with_topology(mut self, topology: TopologySpec) -> NetworkScenario {
        self.topology = Some(topology);
        self
    }

    /// Builder: switch to the jitter/loss-free path model.
    pub fn with_ideal_paths(mut self) -> NetworkScenario {
        self.ideal_paths = true;
        self
    }

    /// Builder: set the fault injector.
    pub fn with_fault(mut self, fault: FaultInjector) -> NetworkScenario {
        self.fault = fault;
        self
    }

    /// Builder: append a constant-response server.
    pub fn with_server(
        mut self,
        domain: impl Into<String>,
        country: CountryCode,
        response: HttpResponse,
    ) -> NetworkScenario {
        self.servers.push(ServerSpec {
            domain: domain.into(),
            country,
            response,
        });
        self
    }

    /// Build the serial network: identical to shard 0 of a 1-shard run.
    pub fn build(&self) -> Network {
        self.build_shard(0, 1)
    }

    /// Build shard `index` of `shards`: the same topology as every
    /// sibling, over a striped allocator whose address space is disjoint
    /// from every sibling's.
    pub fn build_shard(&self, index: usize, shards: usize) -> Network {
        let mut net = Network::with_allocator(
            self.world.build(),
            IpAllocator::sharded(index as u32, shards as u32),
        );
        if self.ideal_paths {
            net.path_model = PathModel::ideal();
        }
        net.fault = self.fault.clone();
        for s in &self.servers {
            net.add_server(
                &s.domain,
                s.country,
                Box::new(ConstHandler(s.response.clone())),
            );
        }
        if let Some(spec) = &self.topology {
            net.set_topology(spec.build_shard(shards));
        }
        net
    }
}

/// A thread-shareable recipe for one middlebox — the missing piece that
/// lets *censored* (and otherwise intercepted) worlds ride inside a
/// shard-shared scenario. A boxed [`Middlebox`] itself can never cross a
/// thread boundary, but a factory of plain data can: each shard thread
/// calls [`MiddleboxFactory::build`] against its own freshly built
/// network (so factories that compile rules against the network's DNS —
/// e.g. a firewall resolving its IP blacklist — see an identical
/// topology on every shard and compile identical rules).
///
/// `censor::timeline::CensorSpec` implements this trait, so national
/// censors drop straight into a [`WorldScenario`].
pub trait MiddleboxFactory: Send + Sync {
    /// Materialise the middlebox against a concrete network.
    fn build_middlebox(&self, net: &Network) -> Box<dyn Middlebox>;
}

/// A [`NetworkScenario`] plus deferred middlebox installation — the full
/// recipe for per-shard worlds whose middlebox set can also *mutate*
/// mid-run (policy timelines install/lift/rewrite through the network's
/// middlebox generation counter, and every shard replays the same
/// control schedule against the same starting set).
///
/// Installation order is the factory insertion order on every shard, so
/// the interception order — and therefore the middlebox generation
/// counter sequence under later mutations — is identical across shards.
#[derive(Clone)]
pub struct WorldScenario {
    /// The plain-data substrate recipe.
    pub base: NetworkScenario,
    factories: Vec<Arc<dyn MiddleboxFactory>>,
}

impl std::fmt::Debug for WorldScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorldScenario")
            .field("base", &self.base)
            .field("middlebox_factories", &self.factories.len())
            .finish()
    }
}

impl WorldScenario {
    /// Wrap a plain scenario with no middleboxes.
    pub fn new(base: NetworkScenario) -> WorldScenario {
        WorldScenario {
            base,
            factories: Vec::new(),
        }
    }

    /// Builder: append a middlebox factory (installed after all servers,
    /// in insertion order).
    pub fn with_middlebox(mut self, factory: Arc<dyn MiddleboxFactory>) -> WorldScenario {
        self.factories.push(factory);
        self
    }

    /// Number of middlebox factories installed at build time.
    pub fn middlebox_count(&self) -> usize {
        self.factories.len()
    }

    /// Build the serial network: identical to shard 0 of a 1-shard run.
    pub fn build(&self) -> Network {
        self.build_shard(0, 1)
    }

    /// Build shard `index` of `shards`: the base scenario's striped
    /// network with every middlebox installed on top, in order.
    pub fn build_shard(&self, index: usize, shards: usize) -> Network {
        let mut net = self.base.build_shard(index, shards);
        for factory in &self.factories {
            let mb = factory.build_middlebox(&net);
            net.add_middlebox(mb);
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{country, IspClass};
    use crate::http::{ContentType, HttpRequest};
    use sim_core::{SimRng, SimTime};

    fn scenario() -> NetworkScenario {
        NetworkScenario::new(WorldSpec::Builtin)
            .with_ideal_paths()
            .with_server(
                "target.example",
                country("US"),
                HttpResponse::ok(ContentType::Image, 400),
            )
    }

    #[test]
    fn scenario_is_send_and_sync() {
        fn check<T: Send + Sync + Clone>() {}
        check::<NetworkScenario>();
    }

    #[test]
    fn built_network_serves_the_spec() {
        let mut net = scenario().build();
        let client = net.add_client(country("DE"), IspClass::Residential);
        let mut rng = SimRng::new(1);
        let out = net.fetch(
            &client,
            &HttpRequest::get("http://target.example/favicon.ico"),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(out.result.is_ok());
    }

    #[test]
    fn shards_share_topology_but_not_addresses() {
        let spec = scenario();
        let mut a = spec.build_shard(0, 2);
        let mut b = spec.build_shard(1, 2);
        assert_eq!(a.server_count(), b.server_count());
        let ca = a.add_client(country("PK"), IspClass::Residential);
        let cb = b.add_client(country("PK"), IspClass::Residential);
        assert_ne!(ca.ip, cb.ip, "shards must draw from disjoint space");
        assert_eq!(a.allocator.country_of(ca.ip), Some(country("PK")));
        assert_eq!(b.allocator.country_of(cb.ip), Some(country("PK")));
        // Cross-shard ground truth never conflicts: a's allocator simply
        // doesn't know b's ranges.
        assert_eq!(a.allocator.country_of(cb.ip), None);
    }

    struct NxFactory;
    impl MiddleboxFactory for NxFactory {
        fn build_middlebox(&self, _net: &Network) -> Box<dyn crate::middlebox::Middlebox> {
            struct Nx;
            impl crate::middlebox::Middlebox for Nx {
                fn name(&self) -> &str {
                    "nx-all"
                }
                fn applies_to(&self, _client: &crate::host::Host) -> bool {
                    true
                }
                fn on_dns(
                    &self,
                    _name: &str,
                    _ctx: &crate::middlebox::StageContext<'_>,
                ) -> crate::middlebox::DnsAction {
                    crate::middlebox::DnsAction::NxDomain
                }
            }
            Box::new(Nx)
        }
    }

    #[test]
    fn world_scenario_installs_middleboxes_on_every_shard() {
        let spec = WorldScenario::new(scenario()).with_middlebox(Arc::new(NxFactory));
        assert_eq!(spec.middlebox_count(), 1);
        for (i, n) in [(0usize, 2usize), (1, 2)] {
            let mut net = spec.build_shard(i, n);
            assert_eq!(net.middleboxes().len(), 1);
            assert_eq!(net.middleboxes()[0].name(), "nx-all");
            let client = net.add_client(country("DE"), IspClass::Residential);
            let mut rng = SimRng::new(1);
            let out = net.fetch(
                &client,
                &HttpRequest::get("http://target.example/favicon.ico"),
                SimTime::ZERO,
                &mut rng,
            );
            assert!(out.result.is_err(), "factory censor must bite on shard {i}");
        }
        // The scenario itself stays thread-shareable.
        fn check<T: Send + Sync + Clone>() {}
        check::<WorldScenario>();
    }

    #[test]
    fn one_shard_build_equals_serial_build() {
        let spec = scenario();
        let mut serial = spec.build();
        let mut one = spec.build_shard(0, 1);
        let cs = serial.add_client(country("IR"), IspClass::Mobile);
        let co = one.add_client(country("IR"), IspClass::Mobile);
        assert_eq!(cs.ip, co.ip);
    }
}
