//! # netsim — simulated Internet substrate for the Encore reproduction
//!
//! Encore (SIGCOMM 2015) measures Web filtering from real browsers across
//! the real Internet. This crate is the simulated stand-in: a deterministic
//! model of geography, addressing, DNS, TCP, HTTP, and path quality, with
//! explicit interception points where censor middleboxes (the `censor`
//! crate) can reject, drop, redirect, or rewrite traffic — exactly the
//! threat model of paper §3.1:
//!
//! > "Web filtering typically takes place when the client performs an
//! > initial DNS lookup …, when the client attempts to establish a TCP
//! > connection …, or in response to a specific HTTP request or response."
//!
//! The crate therefore models precisely those three stages. A fetch walks
//! DNS → TCP → HTTP, consulting every applicable [`Middlebox`] at each
//! stage and accumulating a timing breakdown that the browser emulator
//! turns into `onload`/`onerror` timing (Figure 7 depends on this detail).
//!
//! The pipeline lives in the session layer: a [`FetchSession`] owns a
//! compiled per-client middlebox pipeline, a TTL-honouring DNS host cache,
//! and a keep-alive connection pool, so repeat fetches amortise everything
//! a real browser amortises. [`Network::fetch`] remains as the one-shot
//! (always-cold) convenience entry point.
//!
//! ## Module map
//!
//! * [`geo`] — countries, regions, ISP classes, the built-in world table.
//! * [`ip`] — deterministic per-country IPv4 allocation.
//! * [`host`] — simulated hosts (clients and servers).
//! * [`dns`] — the DNS system: zones, resolution, caching resolver.
//! * [`tcp`] — TCP connection attempt outcomes.
//! * [`http`] — HTTP request/response/header model.
//! * [`path`] — RTT/loss/bandwidth between hosts.
//! * [`fault`] — fault injection in the smoltcp idiom.
//! * [`middlebox`] — the interception trait implemented by censors.
//! * [`network`] — the composed network (hosts, servers, middleboxes).
//! * [`session`] — the session-layer fetch engine (pipeline, caches,
//!   keep-alive) that all traffic flows through.
//! * [`topology`] — seeded scale-free AS graph, deterministic routing,
//!   and congested transit links (betweenness hotspots that delay or
//!   shed under load with near-source signaling).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod dns;
pub mod fault;
pub mod geo;
pub mod host;
pub mod http;
pub mod ip;
pub mod middlebox;
pub mod network;
pub mod path;
pub mod scenario;
pub mod session;
pub mod tcp;
pub mod topology;

pub use dns::{DnsAnswer, DnsOutcome, DnsSystem};
pub use fault::FaultInjector;
pub use geo::{Country, CountryCode, IspClass, Region, World};
pub use host::{Host, HostId};
pub use http::{ContentType, EmbedKind, Embedded, HttpRequest, HttpResponse, Method, StatusCode};
pub use ip::{IpAllocator, Ipv4Net};
pub use middlebox::{DnsAction, HttpAction, Middlebox, StageContext, TcpAction};
pub use network::{FailureStage, FetchError, FetchOutcome, FetchTimings, HttpHandler, Network};
pub use path::{PathModel, PathQuality};
pub use scenario::TopologySpec;
pub use scenario::{MiddleboxFactory, NetworkScenario, ServerSpec, WorldScenario, WorldSpec};
pub use session::{FetchSession, SessionConfig, SessionStats};
pub use tcp::{TcpAttempt, TcpOutcome};
pub use topology::{AsTopology, TopologyConfig, TransitDecision};
