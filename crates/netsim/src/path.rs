//! Path quality: RTT, loss, and bandwidth between hosts.
//!
//! RTT = client access latency + backbone latency between regions + server
//! access latency, with multiplicative log-normal jitter per operation.
//! Bandwidth determines transfer time for response bodies; loss contributes
//! to transient failures alongside each country's baseline unreliability.
//! Figure 7's cached-vs-uncached gap ("most clients take at least 50 ms
//! longer to load the same image uncached") emerges directly from this
//! model: a cached load skips the network entirely and costs only render
//! time, while an uncached load pays DNS + TCP + HTTP round trips.

use crate::geo::{Country, IspClass, Region};
use crate::host::Host;
use serde::{Deserialize, Serialize};
use sim_core::dist::{LogNormal, Sample};
use sim_core::{SimDuration, SimRng};

/// Inter-region one-way backbone latency in milliseconds. Symmetric.
/// Indexed by [`Region::index`]. Values are rough great-circle/backbone
/// figures; the experiments only depend on them being plausible and
/// heterogeneous.
const BACKBONE_MS: [[f64; 8]; 8] = [
    // NA     SA     EU     ME     AF     SAs    EAs    Oc
    [5.0, 75.0, 45.0, 70.0, 90.0, 110.0, 75.0, 90.0], // NorthAmerica
    [75.0, 10.0, 95.0, 120.0, 120.0, 160.0, 140.0, 150.0], // SouthAmerica
    [45.0, 95.0, 5.0, 30.0, 50.0, 65.0, 110.0, 120.0], // Europe
    [70.0, 120.0, 30.0, 8.0, 45.0, 40.0, 85.0, 95.0], // MiddleEast
    [90.0, 120.0, 50.0, 45.0, 15.0, 70.0, 120.0, 130.0], // Africa
    [110.0, 160.0, 65.0, 40.0, 70.0, 10.0, 55.0, 60.0], // SouthAsia
    [75.0, 140.0, 110.0, 85.0, 120.0, 55.0, 8.0, 40.0], // EastAsia
    [90.0, 150.0, 120.0, 95.0, 130.0, 60.0, 40.0, 12.0], // Oceania
];

/// Per-ISP-class multipliers on access latency and failure rate.
fn isp_factors(isp: IspClass) -> (f64, f64) {
    match isp {
        IspClass::Residential => (1.0, 1.0),
        IspClass::Mobile => (1.8, 1.6),
        IspClass::Academic => (0.6, 0.4),
        IspClass::Datacenter => (0.3, 0.2),
    }
}

/// Static quality of the path between two specific hosts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathQuality {
    /// Median round-trip time.
    pub rtt_median_ms: f64,
    /// Probability that one network operation (one request/response
    /// exchange) transiently fails.
    pub failure_rate: f64,
    /// Effective downstream bandwidth in bytes per second.
    pub bandwidth_bps: f64,
}

/// Configuration of the path model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathModel {
    /// Sigma of the log-normal RTT jitter (0 disables jitter).
    pub jitter_sigma: f64,
    /// Baseline downstream bandwidth for a residential client, bytes/s.
    pub base_bandwidth_bps: f64,
    /// Global multiplier on country failure rates (1.0 = calibrated).
    pub failure_scale: f64,
}

impl Default for PathModel {
    fn default() -> Self {
        PathModel {
            jitter_sigma: 0.25,
            // ~8 Mbit/s median residential downstream, 2014-era.
            base_bandwidth_bps: 1_000_000.0,
            failure_scale: 1.0,
        }
    }
}

impl PathModel {
    /// A lossless, jitter-free model for tests that need exact timings.
    pub fn ideal() -> PathModel {
        PathModel {
            jitter_sigma: 0.0,
            base_bandwidth_bps: 1_000_000.0,
            failure_scale: 0.0,
        }
    }

    /// Static path quality between `client` (in `client_country`) and a
    /// server (in `server_country`).
    pub fn quality(
        &self,
        client: &Host,
        client_country: &Country,
        server_country: &Country,
    ) -> PathQuality {
        let (lat_f, fail_f) = isp_factors(client.isp);
        let backbone = backbone_ms(client_country.region, server_country.region);
        let rtt = client_country.access_latency_ms * lat_f
            + 2.0 * backbone
            + server_country.access_latency_ms * 0.3; // Servers are well-connected.
        let failure =
            (client_country.transient_failure_rate * fail_f * self.failure_scale).clamp(0.0, 1.0);
        PathQuality {
            rtt_median_ms: rtt,
            failure_rate: failure,
            bandwidth_bps: self.base_bandwidth_bps / lat_f.max(0.2),
        }
    }

    /// Sample one round-trip time with jitter.
    pub fn sample_rtt(&self, q: &PathQuality, rng: &mut SimRng) -> SimDuration {
        let jitter = if self.jitter_sigma > 0.0 {
            LogNormal::new(0.0, self.jitter_sigma).sample(rng)
        } else {
            1.0
        };
        SimDuration::from_millis_f64(q.rtt_median_ms * jitter)
    }

    /// Transfer time for `bytes` of body at the path's bandwidth (plus the
    /// serialisation already covered by the RTT term).
    pub fn transfer_time(&self, q: &PathQuality, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_millis_f64(bytes as f64 / q.bandwidth_bps * 1_000.0)
    }

    /// Bernoulli transient-failure draw for one operation on this path.
    pub fn operation_fails(&self, q: &PathQuality, rng: &mut SimRng) -> bool {
        rng.chance(q.failure_rate)
    }

    /// Per-stage failure probability such that a three-stage fetch
    /// (DNS → TCP → HTTP) fails with overall probability
    /// `q.failure_rate`. The calibrated country rates describe *fetch*
    /// failure (that is what the paper's false-positive rates measure),
    /// so each stage must draw at a correspondingly lower rate.
    pub fn stage_failure_probability(&self, q: &PathQuality) -> f64 {
        1.0 - (1.0 - q.failure_rate.clamp(0.0, 1.0)).powf(1.0 / 3.0)
    }

    /// Bernoulli transient-failure draw for one *stage* of a fetch.
    pub fn stage_fails(&self, q: &PathQuality, rng: &mut SimRng) -> bool {
        rng.chance(self.stage_failure_probability(q))
    }
}

/// Symmetric backbone latency between two regions, in ms (one way).
pub fn backbone_ms(a: Region, b: Region) -> f64 {
    BACKBONE_MS[a.index()][b.index()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{country, World};
    use crate::host::HostId;
    use std::net::Ipv4Addr;

    fn host(c: &str, isp: IspClass) -> Host {
        Host::new(HostId(0), Ipv4Addr::new(100, 0, 0, 2), country(c), isp)
    }

    fn world_pair(client: &str, server: &str) -> (Country, Country) {
        let w = World::builtin();
        (
            w.get(country(client)).unwrap().clone(),
            w.get(country(server)).unwrap().clone(),
        )
    }

    #[test]
    fn backbone_is_symmetric() {
        for a in Region::ALL {
            for b in Region::ALL {
                assert_eq!(backbone_ms(a, b), backbone_ms(b, a), "{a:?}/{b:?}");
            }
        }
    }

    #[test]
    fn intra_region_faster_than_inter() {
        assert!(
            backbone_ms(Region::Europe, Region::Europe)
                < backbone_ms(Region::Europe, Region::EastAsia)
        );
    }

    #[test]
    fn pakistan_to_us_slower_than_us_to_us() {
        let m = PathModel::default();
        let (pk, us) = world_pair("PK", "US");
        let (us_c, _) = world_pair("US", "US");
        let q_pk = m.quality(&host("PK", IspClass::Residential), &pk, &us);
        let q_us = m.quality(&host("US", IspClass::Residential), &us_c, &us);
        assert!(q_pk.rtt_median_ms > q_us.rtt_median_ms + 50.0);
    }

    #[test]
    fn academic_isp_faster_and_more_reliable_than_mobile() {
        let m = PathModel::default();
        let (ind, us) = world_pair("IN", "US");
        let q_ac = m.quality(&host("IN", IspClass::Academic), &ind, &us);
        let q_mo = m.quality(&host("IN", IspClass::Mobile), &ind, &us);
        assert!(q_ac.rtt_median_ms < q_mo.rtt_median_ms);
        assert!(q_ac.failure_rate < q_mo.failure_rate);
    }

    #[test]
    fn ideal_model_is_deterministic_and_lossless() {
        let m = PathModel::ideal();
        let (us, us2) = world_pair("US", "US");
        let q = m.quality(&host("US", IspClass::Residential), &us, &us2);
        assert_eq!(q.failure_rate, 0.0);
        let mut rng = SimRng::new(1);
        let a = m.sample_rtt(&q, &mut rng);
        let b = m.sample_rtt(&q, &mut rng);
        assert_eq!(a, b, "no jitter in ideal model");
        assert!(!m.operation_fails(&q, &mut rng));
    }

    #[test]
    fn rtt_jitter_varies_but_stays_positive() {
        let m = PathModel::default();
        let (us, us2) = world_pair("US", "US");
        let q = m.quality(&host("US", IspClass::Residential), &us, &us2);
        let mut rng = SimRng::new(2);
        let samples: Vec<_> = (0..100).map(|_| m.sample_rtt(&q, &mut rng)).collect();
        assert!(samples.iter().any(|a| *a != samples[0]));
        assert!(samples.iter().all(|a| a.as_micros() > 0));
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let m = PathModel::default();
        let (us, us2) = world_pair("US", "US");
        let q = m.quality(&host("US", IspClass::Residential), &us, &us2);
        let t1 = m.transfer_time(&q, 1_000);
        let t2 = m.transfer_time(&q, 100_000);
        assert!(t2 > t1 * 50);
        assert_eq!(m.transfer_time(&q, 0), SimDuration::ZERO);
    }

    #[test]
    fn failure_scale_zero_disables_failures() {
        let m = PathModel {
            failure_scale: 0.0,
            ..PathModel::default()
        };
        let (ind, us) = world_pair("IN", "US");
        let q = m.quality(&host("IN", IspClass::Mobile), &ind, &us);
        assert_eq!(q.failure_rate, 0.0);
    }

    #[test]
    fn stage_failure_composes_to_fetch_failure() {
        let m = PathModel::default();
        let q = PathQuality {
            rtt_median_ms: 100.0,
            failure_rate: 0.05,
            bandwidth_bps: 1e6,
        };
        let p_stage = m.stage_failure_probability(&q);
        let composed = 1.0 - (1.0 - p_stage).powi(3);
        assert!((composed - 0.05).abs() < 1e-9, "composed = {composed}");
        assert!(p_stage < 0.05);
    }

    #[test]
    fn india_residential_failure_rate_near_five_percent() {
        // The §7.1 calibration: India's image-task false-positive rate was
        // about 5% in the paper.
        let m = PathModel::default();
        let (ind, us) = world_pair("IN", "US");
        let q = m.quality(&host("IN", IspClass::Residential), &ind, &us);
        assert!(
            (0.03..0.08).contains(&q.failure_rate),
            "failure = {}",
            q.failure_rate
        );
    }
}
