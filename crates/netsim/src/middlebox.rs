//! Interception points for on-path middleboxes (censors).
//!
//! Paper §3.1's threat model gives the adversary three hooks: the DNS
//! lookup, the TCP handshake, and the HTTP exchange. A [`Middlebox`]
//! implements any subset of those hooks; the [`crate::Network`] consults
//! every applicable middlebox at each stage of a fetch and the first
//! non-`Pass` action wins (middleboxes closer to the head of the list are
//! "closer to the client").
//!
//! The `censor` crate provides the actual censorship policies; this module
//! only defines the mechanism, keeping the network substrate ignorant of
//! censorship semantics.

use crate::host::Host;
use crate::http::{HttpRequest, HttpResponse};
use crate::tcp::TcpAttempt;
use sim_core::{SimDuration, SimTime};
use std::net::Ipv4Addr;

/// Context handed to every interception hook.
#[derive(Debug, Clone, Copy)]
pub struct StageContext<'a> {
    /// The client whose traffic is being inspected.
    pub client: &'a Host,
    /// Current simulation time.
    pub now: SimTime,
}

/// Decision at the DNS stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnsAction {
    /// No interference.
    Pass,
    /// Forge an authoritative NXDOMAIN.
    NxDomain,
    /// Forge an answer pointing at `0` — e.g. a block-page server or an
    /// unroutable sinkhole address.
    Redirect(Ipv4Addr),
    /// Forge an answer **with a lying TTL**: like [`DnsAction::Redirect`]
    /// but the censor also chooses how long resolvers and browsers cache
    /// the lie. A long TTL makes the poisoning outlive the block itself
    /// (returning clients keep hitting the sinkhole after the censor
    /// stands down); a short one makes it evaporate quickly.
    Poison {
        /// The forged address.
        ip: Ipv4Addr,
        /// The TTL the forged answer carries.
        ttl: SimDuration,
    },
    /// Silently drop the query (client times out).
    Drop,
}

/// Decision at the TCP stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpAction {
    /// No interference.
    Pass,
    /// Inject a RST (fast, observable failure).
    Reset,
    /// Silently drop SYNs (slow timeout).
    Drop,
}

/// Decision at the HTTP request or response stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpAction {
    /// No interference.
    Pass,
    /// Silently drop the request/response (client times out).
    Drop,
    /// Reset the connection.
    Reset,
    /// Serve a block page in place of the real response.
    BlockPage,
    /// 302-redirect the client to a block-page URL.
    RedirectTo(String),
}

/// An on-path middlebox. All hooks default to `Pass`, so implementations
/// override only the stages they interfere with.
pub trait Middlebox {
    /// Diagnostic name (appears in traces).
    fn name(&self) -> &str;

    /// Whether this middlebox sits on `client`'s path (e.g. a national
    /// censor applies to clients in its country).
    ///
    /// **Stability contract:** for a given `client`, the answer must stay
    /// constant for as long as this middlebox is installed. The session
    /// layer ([`crate::session::FetchSession`]) matches middleboxes once
    /// per client and caches the result until the network's middlebox
    /// *set* changes — an implementation whose answer varies with time or
    /// internal state would be consulted against a stale pipeline.
    /// Per-request variability belongs in the `on_*` hooks, which run on
    /// every fetch.
    fn applies_to(&self, client: &Host) -> bool;

    /// Inspect a DNS query for `name`.
    fn on_dns(&self, _name: &str, _ctx: &StageContext<'_>) -> DnsAction {
        DnsAction::Pass
    }

    /// Whether [`Middlebox::on_dns`]'s verdict is **pure**: for a fixed
    /// (client, name) it returns the same action regardless of `ctx.now`
    /// and of any internal state that changes outside
    /// [`Middlebox::on_control`]. Sessions memoise the DNS verdict per
    /// host for pipelines made entirely of pure middleboxes, invalidating
    /// on middlebox-set and behaviour-generation bumps — so a middlebox
    /// with a time-windowed or self-mutating DNS hook must keep the
    /// conservative default (`false`).
    fn dns_verdict_is_pure(&self) -> bool {
        false
    }

    /// Inspect a TCP connection attempt.
    fn on_tcp(&self, _attempt: &TcpAttempt, _ctx: &StageContext<'_>) -> TcpAction {
        TcpAction::Pass
    }

    /// Inspect an outgoing HTTP request.
    fn on_http_request(&self, _req: &HttpRequest, _ctx: &StageContext<'_>) -> HttpAction {
        HttpAction::Pass
    }

    /// Inspect an HTTP response on its way back to the client. Keyword
    /// censors look at `resp.keywords` here.
    fn on_http_response(
        &self,
        _req: &HttpRequest,
        _resp: &HttpResponse,
        _ctx: &StageContext<'_>,
    ) -> HttpAction {
        HttpAction::Pass
    }

    /// Deliver an out-of-band control signal to a *stateful* middlebox —
    /// the hook the world engine's censor-reaction events use to drive
    /// strategy changes (escalate, stand down, jump to a stage) on a
    /// live middlebox without reinstalling it. The signal vocabulary is
    /// defined by the implementation (`censor::adaptive` documents its
    /// own); the substrate stays ignorant of censorship semantics.
    ///
    /// Returns whether the signal was understood and changed state.
    /// Implementations must keep [`Middlebox::applies_to`] stable across
    /// control signals (per its contract): a signal may change *what the
    /// hooks do*, never *which clients the box sits in front of* — so
    /// compiled session pipelines stay valid and no generation bump is
    /// needed.
    fn on_control(&self, _signal: &str, _now: SimTime) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::{country, IspClass};
    use crate::host::HostId;

    struct Noop;
    impl Middlebox for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn applies_to(&self, _client: &Host) -> bool {
            true
        }
    }

    #[test]
    fn default_hooks_pass() {
        let mb = Noop;
        let client = Host::new(
            HostId(0),
            Ipv4Addr::new(100, 0, 0, 2),
            country("US"),
            IspClass::Residential,
        );
        let ctx = StageContext {
            client: &client,
            now: SimTime::ZERO,
        };
        assert_eq!(mb.on_dns("example.com", &ctx), DnsAction::Pass);
        assert_eq!(
            mb.on_tcp(&TcpAttempt::http(Ipv4Addr::new(1, 1, 1, 1)), &ctx),
            TcpAction::Pass
        );
        let req = HttpRequest::get("http://example.com/");
        assert_eq!(mb.on_http_request(&req, &ctx), HttpAction::Pass);
        let resp = HttpResponse::ok(crate::http::ContentType::Html, 10);
        assert_eq!(mb.on_http_response(&req, &resp, &ctx), HttpAction::Pass);
        assert!(
            !mb.on_control("escalate", SimTime::ZERO),
            "stateless middleboxes ignore control signals"
        );
    }
}
