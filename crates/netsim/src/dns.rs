//! The DNS subsystem.
//!
//! Zones map DNS names to addresses; clients resolve through a caching
//! resolver in their own country (which is where DNS-based censorship
//! interposes — paper §3.1: "the DNS request may result in blocking or
//! redirection").

use crate::geo::CountryCode;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Result payload of a successful resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsAnswer {
    /// Resolved address.
    pub ip: Ipv4Addr,
    /// Time-to-live for caching.
    pub ttl: SimDuration,
}

/// Outcome of a resolution attempt as observed by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsOutcome {
    /// Name resolved.
    Resolved(DnsAnswer),
    /// Authoritative "no such domain".
    NxDomain,
    /// The query or its answer was dropped; the client times out.
    Timeout,
}

/// Default TTL for records without an explicit one.
pub const DEFAULT_TTL: SimDuration = SimDuration::from_secs(300);

/// The global DNS database plus per-country resolver caches.
///
/// The cache model matters for Encore: a client that has already resolved
/// `censored.com` recently will skip the DNS stage, so DNS-level censorship
/// is only observable on a cold cache. We model one shared cache per
/// (country, name) — a reasonable stand-in for ISP resolver caches.
#[derive(Debug, Default)]
pub struct DnsSystem {
    records: BTreeMap<String, DnsAnswer>,
    /// (country, name) → (answer, expires-at).
    cache: BTreeMap<(CountryCode, String), (DnsAnswer, SimTime)>,
    /// Statistics: total queries and cache hits.
    queries: u64,
    cache_hits: u64,
}

impl DnsSystem {
    /// Empty DNS database.
    pub fn new() -> DnsSystem {
        DnsSystem::default()
    }

    /// Register (or replace) an A record with the default TTL.
    pub fn register(&mut self, name: &str, ip: Ipv4Addr) {
        self.register_with_ttl(name, ip, DEFAULT_TTL);
    }

    /// Register (or replace) an A record with an explicit TTL.
    pub fn register_with_ttl(&mut self, name: &str, ip: Ipv4Addr, ttl: SimDuration) {
        self.records
            .insert(name.to_ascii_lowercase(), DnsAnswer { ip, ttl });
    }

    /// Remove a record (site going offline — §7.2 lists this among
    /// non-censorship failure causes).
    pub fn unregister(&mut self, name: &str) {
        self.records.remove(&name.to_ascii_lowercase());
    }

    /// Authoritative lookup, bypassing caches (used by middleboxes that
    /// need ground truth, and by tests).
    pub fn authoritative(&self, name: &str) -> Option<DnsAnswer> {
        self.records.get(&name.to_ascii_lowercase()).copied()
    }

    /// Resolve `name` from `country`'s resolver at time `now`, consulting
    /// the resolver cache. Returns the outcome and whether it was served
    /// from cache.
    pub fn resolve(
        &mut self,
        country: CountryCode,
        name: &str,
        now: SimTime,
    ) -> (DnsOutcome, bool) {
        self.queries += 1;
        let key = (country, name.to_ascii_lowercase());
        if let Some(&(answer, expires)) = self.cache.get(&key) {
            if now < expires {
                self.cache_hits += 1;
                return (DnsOutcome::Resolved(answer), true);
            }
        }
        match self.records.get(&key.1) {
            Some(&answer) => {
                self.cache.insert(key, (answer, now + answer.ttl));
                (DnsOutcome::Resolved(answer), false)
            }
            None => (DnsOutcome::NxDomain, false),
        }
    }

    /// Insert a (possibly forged) answer into a country's resolver cache —
    /// this is how DNS-poisoning censorship persists (e.g. the Great
    /// Firewall's forged answers get cached by local resolvers).
    pub fn poison_cache(
        &mut self,
        country: CountryCode,
        name: &str,
        answer: DnsAnswer,
        now: SimTime,
    ) {
        self.cache.insert(
            (country, name.to_ascii_lowercase()),
            (answer, now + answer.ttl),
        );
    }

    /// Drop all cached entries (e.g. between experiment repetitions).
    pub fn flush_caches(&mut self) {
        self.cache.clear();
    }

    /// `(total queries, cache hits)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.queries, self.cache_hits)
    }

    /// Number of registered records.
    pub fn record_count(&self) -> usize {
        self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::country;

    fn ip(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(100, 0, 0, n)
    }

    #[test]
    fn resolves_registered_name() {
        let mut d = DnsSystem::new();
        d.register("example.com", ip(1));
        let (o, cached) = d.resolve(country("US"), "example.com", SimTime::ZERO);
        assert!(!cached);
        match o {
            DnsOutcome::Resolved(a) => assert_eq!(a.ip, ip(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_name_is_nxdomain() {
        let mut d = DnsSystem::new();
        let (o, _) = d.resolve(country("US"), "nope.invalid", SimTime::ZERO);
        assert_eq!(o, DnsOutcome::NxDomain);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let mut d = DnsSystem::new();
        d.register("Example.COM", ip(1));
        let (o, _) = d.resolve(country("US"), "EXAMPLE.com", SimTime::ZERO);
        assert!(matches!(o, DnsOutcome::Resolved(_)));
    }

    #[test]
    fn second_resolution_hits_cache() {
        let mut d = DnsSystem::new();
        d.register("example.com", ip(1));
        let t = SimTime::ZERO;
        let (_, c1) = d.resolve(country("US"), "example.com", t);
        let (_, c2) = d.resolve(country("US"), "example.com", t + SimDuration::from_secs(1));
        assert!(!c1);
        assert!(c2);
        assert_eq!(d.stats(), (2, 1));
    }

    #[test]
    fn cache_expires_after_ttl() {
        let mut d = DnsSystem::new();
        d.register_with_ttl("example.com", ip(1), SimDuration::from_secs(10));
        d.resolve(country("US"), "example.com", SimTime::ZERO);
        let (_, cached) = d.resolve(country("US"), "example.com", SimTime::from_secs(11));
        assert!(!cached);
    }

    #[test]
    fn caches_are_per_country() {
        let mut d = DnsSystem::new();
        d.register("example.com", ip(1));
        d.resolve(country("US"), "example.com", SimTime::ZERO);
        let (_, cached) = d.resolve(country("CN"), "example.com", SimTime::ZERO);
        assert!(!cached, "CN must not share US's cache");
    }

    #[test]
    fn poisoned_cache_overrides_until_ttl() {
        let mut d = DnsSystem::new();
        d.register("example.com", ip(1));
        let forged = DnsAnswer {
            ip: ip(99),
            ttl: SimDuration::from_secs(60),
        };
        d.poison_cache(country("CN"), "example.com", forged, SimTime::ZERO);
        let (o, cached) = d.resolve(country("CN"), "example.com", SimTime::from_secs(1));
        assert!(cached);
        assert_eq!(o, DnsOutcome::Resolved(forged));
        // After expiry the true record reappears.
        let (o2, _) = d.resolve(country("CN"), "example.com", SimTime::from_secs(120));
        match o2 {
            DnsOutcome::Resolved(a) => assert_eq!(a.ip, ip(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unregister_makes_nxdomain_after_cache_expiry() {
        let mut d = DnsSystem::new();
        d.register_with_ttl("gone.com", ip(1), SimDuration::from_secs(5));
        d.resolve(country("US"), "gone.com", SimTime::ZERO);
        d.unregister("gone.com");
        // Still cached.
        let (o, _) = d.resolve(country("US"), "gone.com", SimTime::from_secs(1));
        assert!(matches!(o, DnsOutcome::Resolved(_)));
        // Expired: now NXDOMAIN.
        let (o, _) = d.resolve(country("US"), "gone.com", SimTime::from_secs(10));
        assert_eq!(o, DnsOutcome::NxDomain);
    }

    #[test]
    fn flush_caches_forces_fresh_lookup() {
        let mut d = DnsSystem::new();
        d.register("example.com", ip(1));
        d.resolve(country("US"), "example.com", SimTime::ZERO);
        d.flush_caches();
        let (_, cached) = d.resolve(country("US"), "example.com", SimTime::ZERO);
        assert!(!cached);
    }
}
