//! The DNS subsystem.
//!
//! Zones map DNS names to addresses; clients resolve through a caching
//! resolver in their own country (which is where DNS-based censorship
//! interposes — paper §3.1: "the DNS request may result in blocking or
//! redirection").
//!
//! ## Data-oriented layout
//!
//! Every distinct (case-folded) name is interned to a dense [`NameId`]
//! once; the record table and the per-country resolver caches are flat
//! vectors indexed by that id. The name-based API (`register`, `resolve`,
//! …) is unchanged — it interns and delegates — while hot-path callers
//! (the session layer) hold a [`NameId`] and hit [`DnsSystem::resolve_id`]
//! with no hashing or allocation at all. Ids are assigned in first-seen
//! order, so they are deterministic for a deterministic workload.

use crate::geo::CountryCode;
use serde::{Deserialize, Serialize};
use sim_core::{Interner, SimDuration, SimTime, Sym};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Result payload of a successful resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DnsAnswer {
    /// Resolved address.
    pub ip: Ipv4Addr,
    /// Time-to-live for caching.
    pub ttl: SimDuration,
}

/// Outcome of a resolution attempt as observed by the client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsOutcome {
    /// Name resolved.
    Resolved(DnsAnswer),
    /// Authoritative "no such domain".
    NxDomain,
    /// The query or its answer was dropped; the client times out.
    Timeout,
}

/// Default TTL for records without an explicit one.
pub const DEFAULT_TTL: SimDuration = SimDuration::from_secs(300);

/// Dense identifier for an interned, case-folded DNS name. The id is an
/// index into the [`DnsSystem`]'s tables (and into any id-indexed cache a
/// session keeps), assigned in first-seen order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NameId(Sym);

impl NameId {
    /// The id as a table index.
    #[inline]
    pub fn index(self) -> usize {
        self.0.index()
    }
}

/// Case-fold a DNS name without allocating when it is already lowercase
/// (the common case: every URL in the simulation is lowercase).
fn fold(name: &str) -> Cow<'_, str> {
    if name.bytes().any(|b| b.is_ascii_uppercase()) {
        Cow::Owned(name.to_ascii_lowercase())
    } else {
        Cow::Borrowed(name)
    }
}

/// The global DNS database plus per-country resolver caches.
///
/// The cache model matters for Encore: a client that has already resolved
/// `censored.com` recently will skip the DNS stage, so DNS-level censorship
/// is only observable on a cold cache. We model one shared cache per
/// (country, name) — a reasonable stand-in for ISP resolver caches.
#[derive(Debug, Default)]
pub struct DnsSystem {
    /// Case-folded name ↔ dense id.
    names: Interner,
    /// `NameId`-indexed A records (`None` = not registered).
    records: Vec<Option<DnsAnswer>>,
    /// Registered-record count (`records` keeps tombstones).
    registered: usize,
    /// Per-country resolver cache, `NameId`-indexed: (answer, expires-at).
    cache: BTreeMap<CountryCode, Vec<Option<(DnsAnswer, SimTime)>>>,
    /// Statistics: total queries and cache hits.
    queries: u64,
    cache_hits: u64,
}

impl DnsSystem {
    /// Empty DNS database.
    pub fn new() -> DnsSystem {
        DnsSystem::default()
    }

    /// Intern `name` (case-folded), returning its dense id. Idempotent;
    /// allocation-free for names already interned in lowercase form.
    pub fn intern(&mut self, name: &str) -> NameId {
        NameId(self.names.intern(&fold(name)))
    }

    /// Look up the id of an already-interned name without interning.
    pub fn name_id(&self, name: &str) -> Option<NameId> {
        self.names.get(&fold(name)).map(NameId)
    }

    /// Resolve an id back to its (case-folded) name — reports use this to
    /// serialise real hostnames, keeping output formats id-free.
    pub fn name_of(&self, id: NameId) -> &str {
        self.names.resolve(id.0)
    }

    /// Register (or replace) an A record with the default TTL.
    pub fn register(&mut self, name: &str, ip: Ipv4Addr) {
        self.register_with_ttl(name, ip, DEFAULT_TTL);
    }

    /// Register (or replace) an A record with an explicit TTL.
    pub fn register_with_ttl(&mut self, name: &str, ip: Ipv4Addr, ttl: SimDuration) {
        let idx = self.intern(name).index();
        if self.records.len() <= idx {
            self.records.resize(idx + 1, None);
        }
        if self.records[idx].replace(DnsAnswer { ip, ttl }).is_none() {
            self.registered += 1;
        }
    }

    /// Remove a record (site going offline — §7.2 lists this among
    /// non-censorship failure causes).
    pub fn unregister(&mut self, name: &str) {
        if let Some(id) = self.name_id(name) {
            if let Some(slot) = self.records.get_mut(id.index()) {
                if slot.take().is_some() {
                    self.registered -= 1;
                }
            }
        }
    }

    /// Authoritative lookup, bypassing caches (used by middleboxes that
    /// need ground truth, and by tests).
    pub fn authoritative(&self, name: &str) -> Option<DnsAnswer> {
        let id = self.name_id(name)?;
        self.records.get(id.index()).copied().flatten()
    }

    /// Resolve `name` from `country`'s resolver at time `now`, consulting
    /// the resolver cache. Returns the outcome and whether it was served
    /// from cache.
    pub fn resolve(
        &mut self,
        country: CountryCode,
        name: &str,
        now: SimTime,
    ) -> (DnsOutcome, bool) {
        let id = self.intern(name);
        self.resolve_id(country, id, now)
    }

    /// [`DnsSystem::resolve`] for a pre-interned name: the hot path. Two
    /// vector indexes, no hashing, no allocation (beyond one-time cache
    /// growth per country).
    pub fn resolve_id(
        &mut self,
        country: CountryCode,
        id: NameId,
        now: SimTime,
    ) -> (DnsOutcome, bool) {
        self.queries += 1;
        let idx = id.index();
        if let Some(Some((answer, expires))) = self.cache.get(&country).and_then(|c| c.get(idx)) {
            if now < *expires {
                self.cache_hits += 1;
                return (DnsOutcome::Resolved(*answer), true);
            }
        }
        match self.records.get(idx).copied().flatten() {
            Some(answer) => {
                Self::cache_insert(self.cache.entry(country).or_default(), idx, answer, now);
                (DnsOutcome::Resolved(answer), false)
            }
            None => (DnsOutcome::NxDomain, false),
        }
    }

    fn cache_insert(
        country_cache: &mut Vec<Option<(DnsAnswer, SimTime)>>,
        idx: usize,
        answer: DnsAnswer,
        now: SimTime,
    ) {
        if country_cache.len() <= idx {
            country_cache.resize(idx + 1, None);
        }
        country_cache[idx] = Some((answer, now + answer.ttl));
    }

    /// Insert a (possibly forged) answer into a country's resolver cache —
    /// this is how DNS-poisoning censorship persists (e.g. the Great
    /// Firewall's forged answers get cached by local resolvers).
    pub fn poison_cache(
        &mut self,
        country: CountryCode,
        name: &str,
        answer: DnsAnswer,
        now: SimTime,
    ) {
        let idx = self.intern(name).index();
        Self::cache_insert(self.cache.entry(country).or_default(), idx, answer, now);
    }

    /// Drop all cached entries (e.g. between experiment repetitions).
    pub fn flush_caches(&mut self) {
        self.cache.clear();
    }

    /// `(total queries, cache hits)` since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.queries, self.cache_hits)
    }

    /// Number of registered records.
    pub fn record_count(&self) -> usize {
        self.registered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::country;

    fn ip(n: u8) -> Ipv4Addr {
        Ipv4Addr::new(100, 0, 0, n)
    }

    #[test]
    fn resolves_registered_name() {
        let mut d = DnsSystem::new();
        d.register("example.com", ip(1));
        let (o, cached) = d.resolve(country("US"), "example.com", SimTime::ZERO);
        assert!(!cached);
        match o {
            DnsOutcome::Resolved(a) => assert_eq!(a.ip, ip(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_name_is_nxdomain() {
        let mut d = DnsSystem::new();
        let (o, _) = d.resolve(country("US"), "nope.invalid", SimTime::ZERO);
        assert_eq!(o, DnsOutcome::NxDomain);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let mut d = DnsSystem::new();
        d.register("Example.COM", ip(1));
        let (o, _) = d.resolve(country("US"), "EXAMPLE.com", SimTime::ZERO);
        assert!(matches!(o, DnsOutcome::Resolved(_)));
    }

    #[test]
    fn second_resolution_hits_cache() {
        let mut d = DnsSystem::new();
        d.register("example.com", ip(1));
        let t = SimTime::ZERO;
        let (_, c1) = d.resolve(country("US"), "example.com", t);
        let (_, c2) = d.resolve(country("US"), "example.com", t + SimDuration::from_secs(1));
        assert!(!c1);
        assert!(c2);
        assert_eq!(d.stats(), (2, 1));
    }

    #[test]
    fn cache_expires_after_ttl() {
        let mut d = DnsSystem::new();
        d.register_with_ttl("example.com", ip(1), SimDuration::from_secs(10));
        d.resolve(country("US"), "example.com", SimTime::ZERO);
        let (_, cached) = d.resolve(country("US"), "example.com", SimTime::from_secs(11));
        assert!(!cached);
    }

    #[test]
    fn caches_are_per_country() {
        let mut d = DnsSystem::new();
        d.register("example.com", ip(1));
        d.resolve(country("US"), "example.com", SimTime::ZERO);
        let (_, cached) = d.resolve(country("CN"), "example.com", SimTime::ZERO);
        assert!(!cached, "CN must not share US's cache");
    }

    #[test]
    fn poisoned_cache_overrides_until_ttl() {
        let mut d = DnsSystem::new();
        d.register("example.com", ip(1));
        let forged = DnsAnswer {
            ip: ip(99),
            ttl: SimDuration::from_secs(60),
        };
        d.poison_cache(country("CN"), "example.com", forged, SimTime::ZERO);
        let (o, cached) = d.resolve(country("CN"), "example.com", SimTime::from_secs(1));
        assert!(cached);
        assert_eq!(o, DnsOutcome::Resolved(forged));
        // After expiry the true record reappears.
        let (o2, _) = d.resolve(country("CN"), "example.com", SimTime::from_secs(120));
        match o2 {
            DnsOutcome::Resolved(a) => assert_eq!(a.ip, ip(1)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unregister_makes_nxdomain_after_cache_expiry() {
        let mut d = DnsSystem::new();
        d.register_with_ttl("gone.com", ip(1), SimDuration::from_secs(5));
        d.resolve(country("US"), "gone.com", SimTime::ZERO);
        d.unregister("gone.com");
        // Still cached.
        let (o, _) = d.resolve(country("US"), "gone.com", SimTime::from_secs(1));
        assert!(matches!(o, DnsOutcome::Resolved(_)));
        // Expired: now NXDOMAIN.
        let (o, _) = d.resolve(country("US"), "gone.com", SimTime::from_secs(10));
        assert_eq!(o, DnsOutcome::NxDomain);
    }

    #[test]
    fn flush_caches_forces_fresh_lookup() {
        let mut d = DnsSystem::new();
        d.register("example.com", ip(1));
        d.resolve(country("US"), "example.com", SimTime::ZERO);
        d.flush_caches();
        let (_, cached) = d.resolve(country("US"), "example.com", SimTime::ZERO);
        assert!(!cached);
    }

    #[test]
    fn name_ids_are_dense_case_folded_and_resolve_back() {
        let mut d = DnsSystem::new();
        let a = d.intern("Facebook.COM");
        let b = d.intern("youtube.com");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        // Case variants collapse to one id.
        assert_eq!(d.intern("facebook.com"), a);
        assert_eq!(d.name_id("FACEBOOK.com"), Some(a));
        assert_eq!(d.name_of(a), "facebook.com");
        assert_eq!(d.name_id("never-seen.example"), None);
        // Registration and id-based resolution agree with the name API.
        d.register("facebook.com", ip(7));
        let (o, _) = d.resolve_id(country("US"), a, SimTime::ZERO);
        assert_eq!(
            o,
            DnsOutcome::Resolved(DnsAnswer {
                ip: ip(7),
                ttl: DEFAULT_TTL
            })
        );
    }

    #[test]
    fn record_count_tracks_register_and_unregister() {
        let mut d = DnsSystem::new();
        d.register("a.example", ip(1));
        d.register("b.example", ip(2));
        assert_eq!(d.record_count(), 2);
        // Replacing is not a new record.
        d.register("a.example", ip(3));
        assert_eq!(d.record_count(), 2);
        d.unregister("a.example");
        assert_eq!(d.record_count(), 1);
        // Unregistering an unknown or already-gone name is a no-op.
        d.unregister("a.example");
        d.unregister("never.example");
        assert_eq!(d.record_count(), 1);
    }
}
